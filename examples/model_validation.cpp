// Model validation walkthrough: build a custom network directly from
// stations and routing (not via the cluster builders), then confirm the
// three independent engines agree —
//   1. the LAQT transient solver (this paper's contribution),
//   2. Buzen's product-form convolution (steady state, exponential),
//   3. the discrete-event simulator (any distribution, with CIs).
// This is the recipe for trusting the model on *your* system.

#include <cstdio>

#include "core/transient_solver.h"
#include "pf/product_form.h"
#include "ph/fitting.h"
#include "sim/simulator.h"

int main() {
  using namespace finwork;

  // A three-tier service: app servers (dedicated), a shared cache and a
  // shared database; 10% of requests leave after the cache.
  const std::size_t k = 6;  // concurrent requests in the system
  std::vector<net::Station> stations;
  stations.push_back({"App", ph::PhaseType::erlang(2, 1.0), k});
  stations.push_back({"Cache", ph::PhaseType::exponential(1.0 / 0.2), 1});
  stations.push_back({"DB", ph::hyperexponential_balanced(0.8, 6.0), 1});

  la::Vector entry{1.0, 0.0, 0.0};
  la::Matrix routing(3, 3, 0.0);
  routing(0, 1) = 1.0;   // app -> cache
  routing(1, 2) = 0.9;   // cache miss -> DB
  routing(2, 0) = 0.5;   // DB -> app for post-processing
  la::Vector exit{0.0, 0.1, 0.5};
  const net::NetworkSpec spec(std::move(stations), std::move(entry),
                              std::move(routing), std::move(exit));

  const auto view = spec.single_customer();
  std::printf("single request (no contention): %.3f time units\n",
              view.mean_task_time);
  std::printf("phase-level state count: %zu phases\n", view.p.size());

  const std::size_t n = 60;  // finite workload: 60 requests
  const core::TransientSolver solver(spec, k);
  const core::DepartureTimeline tl = solver.solve(n);
  std::printf("\n[transient solver]   E(T; N=%zu) = %.3f, t_ss = %.4f\n", n,
              tl.makespan, solver.steady_state().interdeparture);

  // Product form applies only to the exponentialized network; for the real
  // (H2 DB) network it is the approximation whose error we quantify.
  const auto expo = spec.exponentialized();
  const core::TransientSolver expo_solver(expo, k);
  const double pf_cycle = pf::convolution(expo, k).cycle_time;
  std::printf("[product form]       exponentialized t_ss = %.4f "
              "(transient solver on same: %.4f)\n",
              pf_cycle, expo_solver.steady_state().interdeparture);
  std::printf("[exp assumption]     E(T) = %.3f  -> error %.1f%%\n",
              expo_solver.makespan(n),
              100.0 * (tl.makespan - expo_solver.makespan(n)) / tl.makespan);

  // Independent check: discrete-event simulation with 95% CIs.
  const sim::NetworkSimulator simulator(spec, k);
  sim::SimulationOptions opts;
  opts.replications = 4000;
  const sim::SimulationResult sr = simulator.run(n, opts);
  std::printf("[simulation]         E(T) = %.3f +- %.3f (95%% CI, %zu reps)\n",
              sr.makespan.mean(), sr.makespan.ci_half_width(),
              opts.replications);
  const double z = (sr.makespan.mean() - tl.makespan) /
                   std::max(sr.makespan.std_error(), 1e-12);
  std::printf("agreement z-score: %.2f %s\n", z,
              std::abs(z) < 3.0 ? "(model confirmed)" : "(MISMATCH!)");
  return 0;
}
