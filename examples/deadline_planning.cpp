// Deadline planning with the full makespan distribution: instead of sizing
// a cluster by mean completion time (and padding by gut feeling), compute
// P(T <= deadline) exactly for each candidate configuration and pick the
// cheapest one meeting the required service level.
//
// This uses two extensions beyond the paper: makespan_moments (variance via
// the absorbing chain) and makespan_cdf (uniformization over the layered
// chain).

#include <cstdio>

#include "cluster/experiments.h"
#include "core/transient_solver.h"

namespace {

using namespace finwork;

struct Plan {
  std::size_t workstations;
  double mean;
  double std_dev;
  double p_meet;  // P(T <= deadline)
};

Plan evaluate(std::size_t k, std::size_t tasks, double deadline,
              double storage_scv) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = k;
  cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(storage_scv);
  const core::TransientSolver solver(cluster::build_cluster(cfg), k);
  const core::MakespanMoments mm = solver.makespan_moments(tasks);
  return {k, mm.mean, mm.std_dev, solver.makespan_cdf(tasks, deadline)};
}

}  // namespace

int main() {
  const std::size_t tasks = 60;
  const double deadline = 160.0;
  const double storage_scv = 12.0;  // measured burstiness of shared storage
  const double required = 0.95;     // service level objective

  std::printf("batch of %zu tasks, deadline %.0f, storage C^2 = %.0f,\n"
              "required P(meet) >= %.0f%%\n\n",
              tasks, deadline, storage_scv, 100.0 * required);
  std::printf("%-4s %-10s %-10s %-14s %-8s\n", "K", "E(T)", "sigma(T)",
              "P(T<=deadline)", "verdict");

  std::size_t chosen = 0;
  for (std::size_t k = 2; k <= 10; ++k) {
    const Plan plan = evaluate(k, tasks, deadline, storage_scv);
    const bool meets = plan.p_meet >= required;
    std::printf("%-4zu %-10.1f %-10.1f %-14.4f %-8s\n", plan.workstations,
                plan.mean, plan.std_dev, plan.p_meet,
                meets ? "OK" : "miss");
    if (meets && chosen == 0) chosen = k;
  }

  if (chosen == 0) {
    std::printf("\nno cluster size meets the SLO — the storage saturates; "
                "reduce C^2 or distribute the data\n");
    return 0;
  }
  std::printf("\nsmallest adequate cluster: K = %zu\n", chosen);

  // Show the trap: sizing by mean alone.
  for (std::size_t k = 2; k < chosen; ++k) {
    const Plan plan = evaluate(k, tasks, deadline, storage_scv);
    if (plan.mean <= deadline) {
      std::printf("note: K = %zu already satisfies the deadline \"on "
                  "average\" (E(T) = %.1f) yet misses it with probability "
                  "%.1f%% — the mean is not a plan.\n",
                  k, plan.mean, 100.0 * (1.0 - plan.p_meet));
      break;
    }
  }

  // Risk curve for the chosen configuration.
  const Plan final_plan = evaluate(chosen, tasks, deadline, storage_scv);
  cluster::ExperimentConfig cfg;
  cfg.workstations = chosen;
  cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(storage_scv);
  const core::TransientSolver solver(cluster::build_cluster(cfg), chosen);
  std::printf("\ncompletion-time profile at K = %zu:\n", chosen);
  for (double frac : {0.8, 0.9, 1.0, 1.1, 1.2, 1.4}) {
    const double t = frac * final_plan.mean;
    std::printf("  P(T <= %6.1f) = %.4f\n", t,
                solver.makespan_cdf(tasks, t));
  }
  return 0;
}
