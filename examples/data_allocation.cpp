// Data allocation on a distributed-storage cluster: the use case the
// authors built on top of this model (their earlier data-allocation work).
// Shared data is spread over the K per-node disks; the routing weight of
// each disk follows where the data lives.  We compare allocations and do a
// simple greedy rebalance from a skewed start.
//
// The key effect: the *mean* time a lone task spends on remote I/O is
// allocation-invariant, but contention is not — skew creates a hot disk and
// inflates the makespan, and the transient model quantifies by how much.

#include <cstdio>
#include <vector>

#include "cluster/builders.h"
#include "core/transient_solver.h"

namespace {

using namespace finwork;

double makespan(const std::vector<double>& allocation, std::size_t k,
                std::size_t tasks, double disk_scv) {
  cluster::ApplicationModel app;
  cluster::ClusterShapes shapes;
  if (disk_scv != 1.0) {
    shapes.remote_disk = cluster::ServiceShape::from_scv(disk_scv);
  }
  const net::NetworkSpec spec =
      cluster::distributed_cluster(k, app, shapes, allocation);
  const core::TransientSolver solver(spec, k);
  return solver.makespan(tasks);
}

void report(const char* label, const std::vector<double>& alloc,
            std::size_t k, std::size_t tasks, double scv) {
  std::printf("%-28s [", label);
  for (std::size_t i = 0; i < alloc.size(); ++i) {
    std::printf("%s%.2f", i ? " " : "", alloc[i]);
  }
  std::printf("]  E(T) = %.2f\n", makespan(alloc, k, tasks, scv));
}

}  // namespace

int main() {
  const std::size_t k = 4;
  const std::size_t tasks = 40;
  const double disk_scv = 4.0;  // moderately bursty disks

  std::printf("distributed cluster, K=%zu, N=%zu tasks, disk C^2=%.0f\n\n", k,
              tasks, disk_scv);

  const std::vector<double> uniform(k, 1.0 / static_cast<double>(k));
  const std::vector<double> skewed{0.70, 0.10, 0.10, 0.10};
  const std::vector<double> mild{0.40, 0.20, 0.20, 0.20};
  report("uniform allocation", uniform, k, tasks, disk_scv);
  report("mildly skewed (hot node)", mild, k, tasks, disk_scv);
  report("heavily skewed", skewed, k, tasks, disk_scv);

  // Greedy rebalance: repeatedly move 5% of the hottest disk's share to the
  // coldest disk while the makespan improves.
  std::printf("\ngreedy rebalance from the heavily skewed allocation:\n");
  std::vector<double> alloc = skewed;
  double best = makespan(alloc, k, tasks, disk_scv);
  for (int step = 0; step < 40; ++step) {
    std::size_t hot = 0, cold = 0;
    for (std::size_t i = 1; i < k; ++i) {
      if (alloc[i] > alloc[hot]) hot = i;
      if (alloc[i] < alloc[cold]) cold = i;
    }
    if (alloc[hot] - alloc[cold] < 0.05) break;
    std::vector<double> trial = alloc;
    trial[hot] -= 0.05;
    trial[cold] += 0.05;
    const double m = makespan(trial, k, tasks, disk_scv);
    if (m >= best) break;
    alloc = trial;
    best = m;
    std::printf("  step %2d: moved 5%% disk %zu -> %zu, E(T) = %.2f\n",
                step + 1, hot + 1, cold + 1, best);
  }
  report("\nfinal allocation", alloc, k, tasks, disk_scv);

  // Compare against the central architecture at the same workload.
  cluster::ApplicationModel app;
  cluster::ClusterShapes shapes;
  shapes.remote_disk = cluster::ServiceShape::from_scv(disk_scv);
  const core::TransientSolver central(
      cluster::central_cluster(k, app, shapes), k);
  std::printf("\ncentral storage for reference: E(T) = %.2f\n",
              central.makespan(tasks));
  return 0;
}
