// Quickstart: model a 30-task parallel job on a 5-workstation central
// cluster, inspect the three performance regions, and compare the true
// hyperexponential behavior with the exponential approximation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cluster/experiments.h"
#include "core/metrics.h"
#include "core/transient_solver.h"

int main() {
  using namespace finwork;

  // 1. Describe the application: mean task time 12 (8 local + 4 remote
  //    incl. communication), 20 compute cycles, 40% of cycles go remote.
  cluster::ApplicationModel app;  // the paper's defaults
  std::printf("application: E(T) per task = %.1f time units\n",
              app.task_mean_time());

  // 2. Describe the cluster: 5 workstations, central shared storage whose
  //    service times are bursty (hyperexponential, C^2 = 10).
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);

  // 3. Solve the transient model for a 30-task workload.
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, cfg.workstations);
  const core::DepartureTimeline tl = solver.solve(30);
  const core::SteadyStateResult& ss = solver.steady_state();

  std::printf("\nreduced-product state space: %zu states at level K\n",
              solver.space().dimension(cfg.workstations));
  std::printf("steady-state inter-departure time t_ss = %.4f\n",
              ss.interdeparture);
  std::printf("makespan E(T) for N=30: %.2f  (ideal lower bound %.2f)\n",
              tl.makespan, 30.0 * app.task_mean_time() / 5.0);

  // 4. Classify the operating regions (the paper's Figure 3 structure).
  const core::RegionAnalysis ra =
      core::classify_regions(tl, ss.interdeparture);
  std::printf("\nregions: transient epochs [0, %zu), steady [%zu, %zu), "
              "draining [%zu, 30)\n",
              ra.steady_begin, ra.steady_begin, ra.drain_begin,
              ra.drain_begin);
  std::printf("time share: %.0f%% transient, %.0f%% steady, %.0f%% draining\n",
              100.0 * ra.transient_fraction, 100.0 * ra.steady_fraction,
              100.0 * ra.draining_fraction);

  std::printf("\n%-6s %-12s %-10s\n", "epoch", "E[gap]", "population");
  for (std::size_t i = 0; i < tl.epoch_times.size(); i += 5) {
    std::printf("%-6zu %-12.4f %-10zu\n", i + 1, tl.epoch_times[i],
                tl.population[i]);
  }

  // 5. Quantify the exponential assumption's error (the paper's E%).
  const double err = cluster::cluster_prediction_error(cfg, 30);
  std::printf("\nexponential-assumption error at C^2=10: %.1f%%\n", err);
  std::printf("speedup: %.2f of an ideal %zu\n",
              cluster::cluster_speedup(cfg, 30), cfg.workstations);
  return 0;
}
