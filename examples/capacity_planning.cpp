// Capacity planning: how many workstations does a job need to meet a
// deadline — and how wrong is the answer if the planner assumes exponential
// service while the real workload is bursty?
//
// Scenario: a nightly batch of 120 analysis tasks (mean 12 time units each)
// must finish within a 300-time-unit window.  The shared storage's measured
// C^2 is 20.  We size the cluster under both assumptions and show the
// exponential model under-provisions.

#include <cstdio>

#include "cluster/experiments.h"
#include "core/transient_solver.h"

namespace {

using namespace finwork;

double makespan_for(std::size_t k, double remote_scv, std::size_t tasks) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = k;
  if (remote_scv != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(remote_scv);
  }
  return cluster::cluster_makespan(cfg, tasks);
}

std::size_t size_cluster(double remote_scv, std::size_t tasks,
                         double deadline) {
  for (std::size_t k = 1; k <= 32; ++k) {
    if (makespan_for(k, remote_scv, tasks) <= deadline) return k;
  }
  return 0;  // not attainable: the shared device saturates
}

}  // namespace

int main() {
  const std::size_t tasks = 120;
  const double deadline = 300.0;
  const double measured_scv = 20.0;

  std::printf("batch: %zu tasks, deadline %.0f time units, storage C^2=%.0f\n\n",
              tasks, deadline, measured_scv);
  std::printf("%-4s %-22s %-22s\n", "K", "E(T) exponential", "E(T) actual(C2=20)");
  for (std::size_t k = 2; k <= 12; k += 2) {
    std::printf("%-4zu %-22.1f %-22.1f\n", k, makespan_for(k, 1.0, tasks),
                makespan_for(k, measured_scv, tasks));
  }

  const std::size_t k_exp = size_cluster(1.0, tasks, deadline);
  const std::size_t k_act = size_cluster(measured_scv, tasks, deadline);
  std::printf("\nexponential planner buys K = %zu workstations\n", k_exp);
  if (k_act == 0) {
    std::printf("true workload: deadline unreachable at any K — the shared\n"
                "storage saturates; storage must be upgraded or distributed\n");
  } else {
    std::printf("true workload needs K = %zu\n", k_act);
  }
  if (k_exp != 0) {
    const double slipped = makespan_for(k_exp, measured_scv, tasks);
    std::printf("with the exponential plan the batch actually takes %.0f "
                "(%.0f%% over deadline)\n",
                slipped, 100.0 * (slipped - deadline) / deadline);
  }

  // Sensitivity: the marginal value of one more workstation at the true C^2.
  std::printf("\nmarginal speedup per added workstation (C^2=%.0f):\n",
              measured_scv);
  double prev = makespan_for(1, measured_scv, tasks);
  for (std::size_t k = 2; k <= 10; ++k) {
    const double cur = makespan_for(k, measured_scv, tasks);
    std::printf("  K=%-2zu  E(T)=%-8.1f improvement %5.1f%%\n", k, cur,
                100.0 * (prev - cur) / prev);
    prev = cur;
  }
  return 0;
}
