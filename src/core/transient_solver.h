#pragma once
// The paper's transient model: mean inter-departure times and makespan of a
// finite workload of N iid tasks on a closed network holding at most K of
// them, plus the steady-state limit p_ss Y_K R_K = p_ss.
//
// Everything is computed through *actions* on row vectors — Y_k and V_k are
// never formed:
//     pi Y_k   = (pi (I - P_k)^-1) Q_k
//     pi tau'_k with tau'_k = (I - P_k)^-1 (M_k^-1 eps)
// Small levels use a cached dense LU of (I - P_k); large levels fall back to
// matrix-free iterative solves on the CSR P_k (Neumann series, then BiCGSTAB
// if the series converges too slowly).
//
// The expensive, query-independent pieces — the StateSpace and the per-level
// factorizations — live in a shared core::ModelArtifacts (model_cache.h), so
// many solver instances (e.g. the points of a figure sweep) can evaluate the
// same model without rebuilding it.

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "network/state_space.h"

namespace finwork::core {

class ModelArtifacts;

struct SolverOptions {
  /// Use a dense LU of (I - P_k) when D(k) is at most this; iterative above.
  std::size_t dense_threshold = 3000;
  /// Relative tolerance for iterative solves and the steady-state iteration.
  double tolerance = 1e-12;
  /// Iteration caps for the iterative paths.
  std::size_t max_neumann_iterations = 20000;
  std::size_t max_bicgstab_iterations = 20000;
  std::size_t max_power_iterations = 100000;
  /// Close the saturated phase analytically once the epoch iterates have
  /// mixed to the steady state (see docs/PERFORMANCE.md).  Exact to solver
  /// precision; turn off to force the full epoch-by-epoch recursion.
  bool fast_forward = true;
  /// Mixing threshold for solve(): fast-forward once the successive
  /// departure-epoch distributions satisfy ||pi_{i+1} - pi_i||_inf < this.
  /// Keep above `tolerance` — the iterates themselves carry solve error.
  double fast_forward_tolerance = 1e-11;
  /// Relative mixing threshold for makespan_moments(): fast-forward once the
  /// per-epoch moment increments have stabilised to this relative precision.
  double fast_forward_moment_tolerance = 1e-10;
  /// Cache the dense composite operator T_K = (I - P_K)^-1 Q_K R_K for the
  /// saturated phase, turning each epoch into a single GEMV.  Only built on
  /// dense (LU-factored) levels when enough epochs will amortise the build.
  bool cache_composite = true;
  /// Never build the composite for fewer saturated epochs than this.
  std::size_t composite_min_epochs = 32;
  /// Build the level matrices for 1..K concurrently on the global thread
  /// pool at construction instead of lazily on first use.
  bool prebuild_levels = true;
  /// Fail-fast mode (docs/ROBUSTNESS.md): a degradation the fallback ladder
  /// would normally absorb — a singular dense factorization, a condition
  /// estimate beyond `max_condition`, an iterative backend that needs the
  /// shifted-retry rescue — throws finwork::SolverError instead.
  bool strict = false;
  /// Condition-number ceiling for dense factorizations of (I - P_k), as
  /// estimated by LuDecomposition::rcond_estimate (0 = unlimited).  Beyond
  /// it, strict mode throws and default mode routes every solve on that
  /// level through iterative refinement.
  double max_condition = 0.0;
  /// Correction-step cap for the iterative-refinement ladder stage.
  std::size_t max_refinement_iters = 8;
};

/// Per-epoch output of the transient model.
struct DepartureTimeline {
  /// Mean inter-departure time of each epoch, epoch_times[i] = E[t_{i+1} - t_i]
  /// (size N; the first entry is the mean time to the first departure).
  std::vector<double> epoch_times;
  /// Cumulative mean departure instants (size N).
  std::vector<double> cumulative;
  /// Population in the system during each epoch (size N).
  std::vector<std::size_t> population;
  /// Total mean completion time E(T) of all N tasks.
  double makespan = 0.0;
  std::size_t workstations = 0;
  std::size_t tasks = 0;
};

/// First two moments of the total completion time (extension beyond the
/// paper, which reports means only).
struct MakespanMoments {
  double mean = 0.0;
  double second_moment = 0.0;
  double variance = 0.0;
  double std_dev = 0.0;
  double scv = 0.0;  ///< squared coefficient of variation of the makespan
};

/// Steady-state (infinite-backlog) limit of the departure process.
struct SteadyStateResult {
  la::Vector distribution;      ///< p_ss over Xi_K (embedded, at departures)
  double interdeparture = 0.0;  ///< t_ss = p_ss tau'_K
  double throughput = 0.0;      ///< 1 / t_ss
  /// Squared coefficient of variation of a steady-state inter-departure
  /// gap started from p_ss — the burstiness of the output process
  /// (extension; 1 would be a Poisson-like output).
  double interdeparture_scv = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Transient solver over a network's reduced-product state space.
///
/// A solver instance is cheap when it shares a prebuilt ModelArtifacts; it is
/// not itself thread-safe (steady-state results are memoized per instance) —
/// concurrent sweep points should each own a solver over the shared model.
class TransientSolver {
 public:
  /// `workstations` is K: the number of tasks held in service concurrently.
  /// Builds a private ModelArtifacts for the spec.
  TransientSolver(const net::NetworkSpec& spec, std::size_t workstations,
                  SolverOptions options = {});
  /// Evaluate over a shared (typically ModelCache-owned) model.  The model's
  /// numeric backend options (dense threshold, solve tolerances, composite
  /// gating) were fixed when the artifacts were built; `options` governs the
  /// per-query recursion controls (fast_forward and its thresholds, the
  /// steady-state iteration caps).
  explicit TransientSolver(std::shared_ptr<const ModelArtifacts> model,
                           SolverOptions options = {});
  ~TransientSolver();
  TransientSolver(const TransientSolver&) = delete;
  TransientSolver& operator=(const TransientSolver&) = delete;
  TransientSolver(TransientSolver&&) = delete;
  TransientSolver& operator=(TransientSolver&&) = delete;

  [[nodiscard]] const net::StateSpace& space() const noexcept;
  [[nodiscard]] std::size_t workstations() const noexcept { return k_; }
  [[nodiscard]] const SolverOptions& options() const noexcept { return opts_; }
  /// The shared model this solver evaluates.
  [[nodiscard]] const std::shared_ptr<const ModelArtifacts>& model()
      const noexcept {
    return model_;
  }

  /// tau'_k: mean time to the next system departure from each state of Xi_k.
  [[nodiscard]] const la::Vector& tau(std::size_t k) const;
  /// Action of the departure operator: pi over Xi_k -> pi Y_k over Xi_{k-1}.
  /// Probability mass is preserved (Y_k is stochastic).
  [[nodiscard]] la::Vector apply_y(std::size_t k, const la::Vector& pi) const;
  /// Action of the entrance operator: pi over Xi_{k-1} -> pi R_k over Xi_k.
  [[nodiscard]] la::Vector apply_r(std::size_t k, const la::Vector& pi) const;
  /// Mean time to the next departure from mixed state pi at level k.
  [[nodiscard]] double mean_epoch_time(std::size_t k, const la::Vector& pi) const;
  /// Second raw moment of the time to the next departure: 2 pi V_k^2 eps.
  [[nodiscard]] double epoch_second_moment(std::size_t k,
                                           const la::Vector& pi) const;
  /// P(next departure later than t | state pi): pi exp(-t B_k) eps,
  /// computed by uniformization on the level's sparse matrices.
  [[nodiscard]] double epoch_reliability(std::size_t k, const la::Vector& pi,
                                         double t) const;

  /// The paper's p_K: state distribution after the initial fill.
  [[nodiscard]] la::Vector initial_vector() const;

  /// Full transient solution for a workload of `tasks` (N >= 1).  When
  /// N < K only N tasks ever coexist, matching the paper's remark that such
  /// jobs run on an N-sized cluster.
  [[nodiscard]] DepartureTimeline solve(std::size_t tasks) const;

  /// Mean makespan E(T) only (same recursion, no per-epoch storage).
  [[nodiscard]] double makespan(std::size_t tasks) const;

  /// E(T) for every workload size in `tasks` from ONE pass of the epoch
  /// recursion: the recursion evaluated at max(tasks) computes every smaller
  /// workload as a prefix, so each requested N is harvested on the way
  /// instead of re-running the pass per point.  Exact by construction —
  /// agrees with per-N makespan() to solver precision — and composes with
  /// fast_forward (post-mixing points close with the arithmetic-series
  /// identities).  `tasks` need not be sorted or unique; results align with
  /// the input order.
  [[nodiscard]] std::vector<double> makespan_grid(
      std::span<const std::size_t> tasks) const;

  /// Mean AND variance of the makespan, treating the whole finite-workload
  /// process as one absorbing chain and back-substituting its block
  /// bidiagonal structure (extension; see DESIGN.md).  The mean coincides
  /// with solve(tasks).makespan to solver precision.
  [[nodiscard]] MakespanMoments makespan_moments(std::size_t tasks) const;

  /// Moments for every workload size in `tasks` from one pass of the
  /// admission recursion (the N-grid analogue of makespan_grid).
  [[nodiscard]] std::vector<MakespanMoments> makespan_moments_grid(
      std::span<const std::size_t> tasks) const;

  /// Full distribution of the makespan: P(T <= t) for each requested time,
  /// by uniformization of the layered absorbing chain (extension).  One
  /// discrete pass covers all time points; `times` need not be sorted.
  /// Accuracy ~1e-10 plus uniformization truncation at the largest time.
  [[nodiscard]] std::vector<double> makespan_cdf(
      std::size_t tasks, const std::vector<double>& times) const;
  /// Single-point convenience overload.
  [[nodiscard]] double makespan_cdf(std::size_t tasks, double time) const;

  /// Expected customers present and in service at each station under the
  /// mixed state `pi` over Xi_k.  With the steady-state distribution this
  /// yields the utilizations/queue lengths the product-form solvers report
  /// (exactly equal for exponential networks; tested).
  struct StationOccupancy {
    double mean_customers = 0.0;  ///< E[n_j]
    double mean_in_service = 0.0; ///< E[busy servers at j]
    double utilization = 0.0;     ///< mean_in_service / multiplicity
  };
  [[nodiscard]] std::vector<StationOccupancy> station_occupancy(
      std::size_t k, const la::Vector& pi) const;

  /// Steady-state departure process: fixed point of Y_K R_K.  Note that
  /// `distribution` is the state seen at *departure epochs* (the embedded
  /// chain), which is what the epoch recursion needs.
  [[nodiscard]] const SteadyStateResult& steady_state() const;

  /// Lag-1 autocovariance and correlation of successive steady-state
  /// inter-departure gaps: E[T1 T2] = p_ss V_K Y_K R_K tau'_K (extension).
  /// Zero for memoryless outputs (e.g. a saturated exponential server);
  /// positive when a slow shared device makes consecutive gaps drag.
  struct DepartureCorrelation {
    double covariance = 0.0;
    double correlation = 0.0;  ///< covariance / variance of a gap
  };
  [[nodiscard]] DepartureCorrelation steady_state_lag1() const;

  /// Time-stationary distribution of the saturated system (level K with
  /// instant replacement): what an outside observer sees at a random time.
  /// Differs from steady_state().distribution because departures are not
  /// Poisson; use THIS with station_occupancy for time-averaged queue
  /// lengths and utilizations (it reproduces the product-form marginals
  /// exactly for exponential networks — tested).
  [[nodiscard]] const la::Vector& time_stationary_distribution() const;

 private:
  /// x = pi (I - P_k)^-1 (row solve, through the shared model).
  [[nodiscard]] la::Vector solve_left(std::size_t k, const la::Vector& pi) const;
  /// x = (I - P_k)^-1 b (column solve).
  [[nodiscard]] la::Vector solve_right(std::size_t k, const la::Vector& b) const;
  /// Epochs after which building the dense composite has paid for itself:
  /// the build is one multi-RHS solve per state, i.e. about dimension(level)
  /// epochs of the LU path (mirrors the gate in composite_operator).
  [[nodiscard]] std::size_t composite_break_even(std::size_t level) const;

  std::shared_ptr<const ModelArtifacts> model_;
  std::size_t k_;
  SolverOptions opts_;
  mutable std::optional<SteadyStateResult> steady_;
  mutable std::optional<la::Vector> time_stationary_;
};

}  // namespace finwork::core
