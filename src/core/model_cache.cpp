#include "core/model_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/fault_inject.h"
#include "check/invariants.h"
#include "linalg/iterative.h"
#include "linalg/solver_error.h"
#include "network/network_spec.h"
#include "obs/counters.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace finwork::core {

// ---------------------------------------------------------------------------
// ModelArtifacts
// ---------------------------------------------------------------------------

ModelArtifacts::ModelArtifacts(const net::NetworkSpec& spec,
                               std::size_t workstations, SolverOptions options)
    : space_(spec, workstations), k_(workstations), opts_(options) {
  // Fail fast on networks whose first-passage times diverge.
  spec.validate_connectivity();
  levels_ = std::make_unique<Level[]>(k_ + 1);
  if (opts_.prebuild_levels && !par::ThreadPool::on_worker_thread()) {
    const obs::ObsSpan span("solver/prebuild_levels");
    par::ThreadPool& pool = par::ThreadPool::global();
    try {
      // Levels big enough to parallelise their own assembly build inline,
      // largest first, so the chunked triplet fan-out owns the pool; the
      // small levels overlap with them as pool tasks.
      constexpr std::size_t kInlineDim = 4096;
      std::vector<std::size_t> inline_levels;
      prebuild_.reserve(k_);
      for (std::size_t k = 1; k <= k_; ++k) {
        if (space_.dimension(k) < kInlineDim) {
          prebuild_.push_back(
              pool.submit([this, k] { (void)space_.level(k); }));
        } else {
          inline_levels.push_back(k);
        }
      }
      for (auto it = inline_levels.rbegin(); it != inline_levels.rend();
           ++it) {
        (void)space_.level(*it);
      }
    } catch (...) {
      // The pool tasks reference this object: never let the exception leave
      // the constructor while they are still in flight.
      for (auto& f : prebuild_) {
        // NOLINTNEXTLINE(bugprone-empty-catch)
        try {
          f.get();
        } catch (...) {
        }
      }
      throw;
    }
  }
}

ModelArtifacts::~ModelArtifacts() {
  for (auto& f : prebuild_) {
    if (!f.valid()) continue;
    // A failed prebuild leaves the level's once-flag unset, so the error
    // resurfaces on first real use; here it only needs to be drained.
    // NOLINTNEXTLINE(bugprone-empty-catch)
    try {
      f.get();
    } catch (...) {
    }
  }
}

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

la::Vector ModelArtifacts::ladder_solve(const Level& lvl, std::size_t k,
                                        const la::Vector& b, bool left) const {
  // Stage 1: dense LU (+ stage 2, iterative refinement, when the level's
  // condition estimate breached max_condition at factorization time).
  if (lvl.lu) {
    obs::counter_add(obs::Counter::kDenseSolves);
    la::Vector x = left ? lvl.lu->solve_left(b) : lvl.lu->solve(b);
    if (!lvl.refine) return x;
    if (refine_solution(lvl, k, b, x, left)) return x;
    obs::counter_add(obs::Counter::kFallbackActivations);
    obs::emit_event("degradation/refinement", "(I-P_k)", k, obs::kNoIndex,
                    "iterative refinement stalled; falling back to the "
                    "matrix-free iterative backend");
  }
  // Stage 3: matrix-free iterative backend, Neumann -> BiCGSTAB -> GMRES.
  obs::counter_add(obs::Counter::kIterativeSolves);
  const net::LevelMatrices& lm = space_.level(k);
  par::ThreadPool& pool = par::ThreadPool::global();
  const auto apply_p = [&lm, &pool, left](const la::Vector& v) {
    return left ? lm.p.apply_left_parallel(v, pool)
                : lm.p.apply_parallel(v, pool);
  };
  la::IterativeResult res = la::neumann_solve_left(
      apply_p, b, opts_.tolerance, opts_.max_neumann_iterations);
  if (res.converged) return std::move(res.x);
  const auto apply_a = [&apply_p](const la::Vector& v) {
    la::Vector y = v;
    y -= apply_p(v);
    return y;
  };
  res = la::bicgstab_left(apply_a, b, opts_.tolerance,
                          opts_.max_bicgstab_iterations);
  if (res.converged) return std::move(res.x);
  res = la::gmres_left(apply_a, b, opts_.tolerance,
                       opts_.max_bicgstab_iterations);
  if (res.converged) return std::move(res.x);
  if (opts_.strict) {
    SolverErrorContext ctx;
    ctx.level = k;
    ctx.dimension = space_.dimension(k);
    ctx.residual = res.residual;
    ctx.iterations = res.iterations;
    ctx.detail = "iterative backend exhausted in strict mode";
    throw SolverError(SolverErrorKind::kNonConvergence, SolverStage::kGmres,
                      std::move(ctx));
  }
  obs::counter_add(obs::Counter::kFallbackActivations);
  obs::emit_event("degradation/iterative", "(I-P_k)", k, obs::kNoIndex,
                  "Neumann/BiCGSTAB/GMRES all stalled (residual " +
                      format_double(res.residual) +
                      "); entering shifted-operator rescue");
  return rescue_solve(lvl, k, b, left);
}

bool ModelArtifacts::refine_solution(const Level& lvl, std::size_t k,
                                     const la::Vector& b, la::Vector& x,
                                     bool left) const {
  const net::LevelMatrices& lm = space_.level(k);
  par::ThreadPool& pool = par::ThreadPool::global();
  const double target = opts_.tolerance * std::max(b.norm_inf(), 1e-300);
  // r = b - x(I - P) = b - x + xP (left; the right case mirrors it).
  const auto residual = [&] {
    la::Vector r = left ? lm.p.apply_left_parallel(x, pool)
                        : lm.p.apply_parallel(x, pool);
    r -= x;
    r += b;
    return r;
  };
  if (check::fault_at("ladder/refine")) return false;
  for (std::size_t it = 0; it < opts_.max_refinement_iters; ++it) {
    la::Vector r = residual();
    if (r.norm_inf() <= target) return true;
    obs::counter_add(obs::Counter::kRefinementIters);
    const la::Vector dx = left ? lvl.lu->solve_left(r) : lvl.lu->solve(r);
    x += dx;
  }
  return residual().norm_inf() <= target;
}

la::Vector ModelArtifacts::rescue_solve(const Level& lvl, std::size_t k,
                                        const la::Vector& b, bool left) const {
  (void)lvl;
  const net::LevelMatrices& lm = space_.level(k);
  par::ThreadPool& pool = par::ThreadPool::global();
  const std::size_t d = space_.dimension(k);
  const double target = opts_.tolerance * std::max(b.norm_inf(), 1e-300);
  const auto apply_p = [&lm, &pool, left](const la::Vector& v) {
    return left ? lm.p.apply_left_parallel(v, pool)
                : lm.p.apply_parallel(v, pool);
  };
  const auto residual_norm = [&](const la::Vector& x) {
    la::Vector r = apply_p(x);
    r -= x;
    r += b;
    return r.norm_inf();
  };
  double last_residual = -1.0;
  if (!check::fault_at("ladder/rescue")) {
    for (const double sigma : {1e-8, 1e-5, 1e-2}) {
      // Outer Richardson on the shifted operator: the fixed point of
      //   x_{m+1} (I - P + sigma I) = b + sigma x_m
      // is the solution of x (I - P) = b, the error contracts by
      // sigma (A + sigma I)^-1 every outer step, and each inner system is
      // strictly better conditioned than (I - P) itself.
      std::optional<la::LuDecomposition> shifted;
      if (d <= opts_.dense_threshold) {
        try {
          la::Matrix a = lm.p.to_dense();
          a *= -1.0;
          for (std::size_t i = 0; i < d; ++i) a(i, i) += 1.0 + sigma;
          shifted.emplace(a);
        } catch (const SolverError&) {
          continue;  // shifted factorization failed too: escalate sigma
        }
      }
      const auto inner_solve =
          [&](const la::Vector& rhs) -> std::optional<la::Vector> {
        if (shifted) {
          return left ? shifted->solve_left(rhs) : shifted->solve(rhs);
        }
        // (I - P + sigma I) = (1 + sigma)(I - P/(1 + sigma)): the scaled
        // Neumann series contracts at least as fast as 1/(1 + sigma).
        const double scale = 1.0 + sigma;
        const auto apply_scaled = [&](const la::Vector& v) {
          la::Vector y = apply_p(v);
          y /= scale;
          return y;
        };
        la::Vector rhs_scaled = rhs;
        rhs_scaled /= scale;
        la::IterativeResult inner =
            la::neumann_solve_left(apply_scaled, rhs_scaled, opts_.tolerance,
                                   opts_.max_neumann_iterations);
        if (!inner.converged) return std::nullopt;
        return std::move(inner.x);
      };
      constexpr std::size_t kMaxOuter = 200;
      la::Vector x(d, 0.0);
      bool inner_failed = false;
      for (std::size_t outer = 0; outer < kMaxOuter && !inner_failed;
           ++outer) {
        la::Vector rhs = x;
        rhs *= sigma;
        rhs += b;
        std::optional<la::Vector> next = inner_solve(rhs);
        if (!next) {
          inner_failed = true;
          break;
        }
        x = std::move(*next);
        last_residual = residual_norm(x);
        if (last_residual <= target) {
          obs::emit_event("degradation/shifted-retry", "(I-P_k)", k,
                          obs::kNoIndex,
                          "recovered by shifted-operator Richardson, sigma=" +
                              format_double(sigma));
          return x;
        }
      }
    }
  }
  SolverErrorContext ctx;
  ctx.level = k;
  ctx.dimension = d;
  if (last_residual >= 0.0) ctx.residual = last_residual;
  ctx.detail =
      "fallback ladder exhausted (dense LU, refinement, "
      "Neumann/BiCGSTAB/GMRES, shifted retry)";
  throw SolverError(SolverErrorKind::kNonConvergence, SolverStage::kShiftedRetry,
                    std::move(ctx));
}

const ModelArtifacts::Level& ModelArtifacts::prepared_level(
    std::size_t k) const {
  if (k == 0 || k > k_) throw std::out_of_range("ModelArtifacts: bad level");
  Level& lvl = levels_[k];
  if (lvl.prepared.load(std::memory_order_acquire)) {
    obs::counter_add(obs::Counter::kLuReuseHits);
    return lvl;
  }
  std::call_once(lvl.once, [&] {
    const obs::ObsSpan span("solver/prepare_level");
    const net::LevelMatrices& lm = space_.level(k);
    const std::size_t d = space_.dimension(k);
    if (d <= opts_.dense_threshold) {
      const obs::ObsSpan factor_span("solver/factorize_level");
      la::Matrix a = lm.p.to_dense();
      a *= -1.0;
      for (std::size_t i = 0; i < d; ++i) a(i, i) += 1.0;
      try {
        lvl.lu.emplace(a);
      } catch (const SolverError& e) {
        if (e.kind() != SolverErrorKind::kSingular || opts_.strict) {
          SolverErrorContext ctx = e.context();
          ctx.level = k;  // attach the level the factorization belongs to
          throw SolverError(e.kind(), e.stage(), std::move(ctx));
        }
        obs::counter_add(obs::Counter::kFallbackActivations);
        obs::emit_event("degradation/lu-singular", "(I-P_k)", k,
                        e.context().pivot, e.what());
        // The level degrades to the matrix-free iterative backend.
      }
    }
    if (lvl.lu) {
      lvl.rcond = lvl.lu->rcond_estimate();
      obs::counter_add(obs::Counter::kConditionEstimates);
      const double cond = lvl.rcond > 0.0
                              ? 1.0 / lvl.rcond
                              : std::numeric_limits<double>::infinity();
      if (opts_.max_condition > 0.0 && cond > opts_.max_condition) {
        if (opts_.strict) {
          SolverErrorContext ctx;
          ctx.level = k;
          ctx.dimension = d;
          ctx.condition_estimate = cond;
          ctx.detail =
              "condition estimate beyond SolverOptions::max_condition in "
              "strict mode";
          throw SolverError(SolverErrorKind::kIllConditioned,
                            SolverStage::kLuFactorize, std::move(ctx));
        }
        lvl.refine = true;
        obs::counter_add(obs::Counter::kFallbackActivations);
        obs::emit_event("degradation/ill-conditioned", "(I-P_k)", k,
                        obs::kNoIndex,
                        "condition estimate " + format_double(cond) +
                            " beyond max_condition " +
                            format_double(opts_.max_condition) +
                            "; dense solves run iterative refinement");
      }
    }
    // tau'_k = (I - P_k)^-1 (M_k^-1 eps)
    la::Vector rhs(d);
    for (std::size_t i = 0; i < d; ++i) rhs[i] = 1.0 / lm.event_rates[i];
    lvl.tau = ladder_solve(lvl, k, rhs, /*left=*/false);
    if constexpr (check::kEnabled) {
      // tau'_k = V_k eps: mean remaining epoch time per state — finite and
      // positive, or the level's (I - P_k) solve went off the rails.
      check::check_finite(lvl.tau, "tau'_k", k);
      check::check_positive_rates(lvl.tau, "tau'_k", k);
    }
    lvl.prepared.store(true, std::memory_order_release);
  });
  return lvl;
}

const la::Vector& ModelArtifacts::tau(std::size_t k) const {
  return prepared_level(k).tau;
}

la::Vector ModelArtifacts::solve_left(std::size_t k,
                                      const la::Vector& pi) const {
  return ladder_solve(prepared_level(k), k, pi, /*left=*/true);
}

la::Vector ModelArtifacts::solve_right(std::size_t k,
                                       const la::Vector& b) const {
  return ladder_solve(prepared_level(k), k, b, /*left=*/false);
}

double ModelArtifacts::level_rcond(std::size_t k) const {
  return prepared_level(k).rcond;
}

const la::Matrix* ModelArtifacts::composite_operator(
    std::size_t k, std::size_t expected_epochs) const {
  if (!opts_.cache_composite) return nullptr;
  const Level& lvl = prepared_level(k);
  if (lvl.composite_ready.load(std::memory_order_acquire)) {
    return &*lvl.composite;
  }
  if (!lvl.lu) return nullptr;  // iterative level: no factorization to reuse
  const std::size_t d = space_.dimension(k);
  // Building T_k costs d triangular-solve pairs — the same as d epochs of
  // the uncached recursion — so only pay it when the run amortises it.
  if (expected_epochs < std::max(d, opts_.composite_min_epochs)) {
    return nullptr;
  }
  Level& mut = levels_[k];
  const std::lock_guard<std::mutex> lock(mut.composite_mutex);
  if (!mut.composite_ready.load(std::memory_order_relaxed)) {
    const obs::ObsSpan span("solver/build_composite");
    const net::LevelMatrices& lm = space_.level(k);
    // Column c of Q_k R_k is Q_k (R_k e_c): two sparse column actions.
    la::Matrix b(d, d, 0.0);
    par::parallel_for(
        par::ThreadPool::global(), 0, d,
        [&](std::size_t c) {
          const la::Vector col = lm.q.apply(lm.r.apply(la::unit(d, c)));
          for (std::size_t r = 0; r < d; ++r) b(r, c) = col[r];
        },
        /*grain=*/16);
    mut.composite.emplace(lvl.lu->solve_many(b));
    mut.composite_ready.store(true, std::memory_order_release);
  }
  return &*mut.composite;
}

// ---------------------------------------------------------------------------
// Canonical key + fingerprint
// ---------------------------------------------------------------------------

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  // Bit-exact: 0.5 and 0.5000001 are different models; also distinguishes
  // -0.0 from 0.0, which is fine — specs are built from the same literals.
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_vector(std::vector<std::uint8_t>& out, const la::Vector& v) {
  put_u64(out, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) put_double(out, v[i]);
}

void put_matrix(std::vector<std::uint8_t>& out, const la::Matrix& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) put_double(out, m(r, c));
  }
}

}  // namespace

std::vector<std::uint8_t> canonical_model_key(const net::NetworkSpec& spec,
                                              std::size_t workstations,
                                              const SolverOptions& options) {
  std::vector<std::uint8_t> key;
  key.reserve(256);
  key.push_back(2);  // encoding version (v2: robustness options joined)
  put_u64(key, workstations);
  put_u64(key, spec.num_stations());
  for (const net::Station& st : spec.stations()) {
    put_string(key, st.name);
    put_u64(key, st.multiplicity);
    put_string(key, st.service.name());
    put_vector(key, st.service.entry());
    put_matrix(key, st.service.rate_matrix());
  }
  put_vector(key, spec.entry());
  put_matrix(key, spec.routing());
  put_vector(key, spec.exit());
  // Only the options that shape the built artifacts take part in the key;
  // the per-query recursion controls (fast_forward etc.) do not.
  put_u64(key, options.dense_threshold);
  put_double(key, options.tolerance);
  put_u64(key, options.max_neumann_iterations);
  put_u64(key, options.max_bicgstab_iterations);
  key.push_back(options.cache_composite ? 1 : 0);
  put_u64(key, options.composite_min_epochs);
  key.push_back(options.strict ? 1 : 0);
  put_double(key, options.max_condition);
  put_u64(key, options.max_refinement_iters);
  return key;
}

std::uint64_t model_fingerprint(std::span<const std::uint8_t> key) noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (std::uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// ModelCache
// ---------------------------------------------------------------------------

ModelCache::ModelCache(std::size_t capacity, HashFn hash)
    : capacity_(std::max<std::size_t>(1, capacity)),
      hash_(hash != nullptr ? hash : &model_fingerprint) {}

std::shared_ptr<const ModelArtifacts> ModelCache::acquire(
    const net::NetworkSpec& spec, std::size_t workstations,
    SolverOptions options) {
  const obs::ObsSpan span("cache/acquire");
  std::vector<std::uint8_t> key =
      canonical_model_key(spec, workstations, options);
  const std::uint64_t fp = hash_(key);

  ModelFuture flight;
  std::promise<std::shared_ptr<const ModelArtifacts>> build_promise;
  std::list<Entry>::iterator my_entry;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto [first, last] = index_.equal_range(fp);
    for (auto it = first; it != last; ++it) {
      // Never hash-trust: a hit requires the full canonical key to match.
      if (it->second->key == key) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        obs::counter_add(obs::Counter::kModelCacheHits);
        flight = it->second->model;
        break;
      }
    }
    if (!flight.valid()) {
      ++misses_;
      obs::counter_add(obs::Counter::kModelCacheMisses);
      builder = true;
      flight = build_promise.get_future().share();
      lru_.push_front(Entry{std::move(key), fp, flight, /*ready=*/false});
      my_entry = lru_.begin();
      index_.emplace(fp, my_entry);
    }
  }

  if (!builder) return flight.get();  // waiters block here during a flight

  // Build outside the lock so concurrent acquires of *other* models proceed
  // and waiters for this one just park on the shared future.  `my_entry`
  // stays valid meanwhile: eviction and clear() both skip in-flight entries,
  // and list iterators survive splicing.
  try {
    std::shared_ptr<const ModelArtifacts> model;
    {
      const obs::ObsSpan build_span("cache/build_model");
      if (check::fault_at("cache/build")) {
        SolverErrorContext ctx;
        ctx.detail = "injected cache build failure";
        throw SolverError(SolverErrorKind::kCacheBuildFailure,
                          SolverStage::kCacheBuild, std::move(ctx));
      }
      model = std::make_shared<const ModelArtifacts>(spec, workstations,
                                                     options);
    }
    build_promise.set_value(model);
    const std::lock_guard<std::mutex> lock(mutex_);
    my_entry->ready = true;
    evict_over_capacity_locked();
    return model;
  } catch (...) {
    build_promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mutex_);
    auto [first, last] = index_.equal_range(fp);
    for (auto ix = first; ix != last; ++ix) {
      if (ix->second == my_entry) {
        index_.erase(ix);
        break;
      }
    }
    lru_.erase(my_entry);
    throw;
  }
}

void ModelCache::evict_over_capacity_locked() {
  auto it = lru_.end();
  while (lru_.size() > capacity_ && it != lru_.begin()) {
    --it;
    if (!it->ready) continue;  // never evict an in-flight build
    auto [first, last] = index_.equal_range(it->fingerprint);
    for (auto ix = first; ix != last; ++ix) {
      if (ix->second == it) {
        index_.erase(ix);
        break;
      }
    }
    it = lru_.erase(it);
    ++evictions_;
    obs::counter_add(obs::Counter::kModelCacheEvictions);
  }
}

ModelCacheStats ModelCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, evictions_, lru_.size(), capacity_};
}

void ModelCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // In-flight entries must survive: their builder will mark/erase them.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!it->ready) {
      ++it;
      continue;
    }
    auto [first, last] = index_.equal_range(it->fingerprint);
    for (auto ix = first; ix != last; ++ix) {
      if (ix->second == it) {
        index_.erase(ix);
        break;
      }
    }
    it = lru_.erase(it);
  }
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

ModelCache& ModelCache::global() {
  static ModelCache cache;
  return cache;
}

}  // namespace finwork::core
