#pragma once
// Steady-state approximations to the transient model — the approach of the
// authors' companion work ("Transient Model for Jackson Networks and its
// Approximation", reference [17] of the paper), built for the regime where
// the exact epoch recursion is too expensive (very large N, or repeated
// evaluation inside an optimizer).
//
// Idea: the per-epoch inter-departure times converge geometrically to t_ss,
// so compute only the first `warmup_epochs` epochs exactly, charge the
// remaining saturated epochs t_ss each, and drain from p_ss instead of the
// true end-of-saturation state.  warmup_epochs = 0 degenerates to the pure
// product-form-style estimate; warmup_epochs >= N-K+1 recovers the exact
// solution.

#include <cstddef>

#include "core/transient_solver.h"

namespace finwork::core {

struct ApproximationOptions {
  /// Number of leading saturated epochs computed exactly before switching
  /// to the steady-state rate.
  std::size_t warmup_epochs = 8;
};

/// Decomposed approximate makespan.
struct ApproximateMakespan {
  double makespan = 0.0;        ///< total estimate
  double warmup_time = 0.0;     ///< exactly-computed leading epochs
  double saturated_time = 0.0;  ///< bulk epochs charged at t_ss
  double draining_time = 0.0;   ///< drain-out started from p_ss
  std::size_t exact_epochs = 0; ///< how many epochs were computed exactly
};

/// Approximate E(T) for `tasks` tasks using the solver's steady state.
/// Cost after the steady-state fixed point: O(warmup + K) operator
/// applications, independent of N.
[[nodiscard]] ApproximateMakespan approximate_makespan(
    const TransientSolver& solver, std::size_t tasks,
    const ApproximationOptions& options = {});

/// Even cheaper estimate that never builds the transient machinery: the
/// product-form cycle time for the exponentialized network bounds each
/// saturated epoch, and draining is charged as if each departing level ran
/// at its own product-form rate.  Exact only in the exponential,
/// steady-dominated limit.
[[nodiscard]] double product_form_makespan_estimate(
    const net::NetworkSpec& spec, std::size_t workstations, std::size_t tasks);

}  // namespace finwork::core
