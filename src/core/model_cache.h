#pragma once
// Content-addressed sharing layer between model construction and query
// evaluation.
//
// ModelArtifacts owns everything about a (NetworkSpec, K) pair that is
// independent of the query: the reduced-product StateSpace, the per-level
// LU factorization of (I - P_k), the per-level tau'_k vectors and the dense
// saturated composite T_K.  It is immutable from the outside and safe to
// share across threads — every lazily-built piece is published through a
// once-flag or an acquire/release atomic — so any number of TransientSolver
// instances (e.g. the points of a figure sweep running under parallel_for)
// can evaluate the same model concurrently without rebuilding it.
//
// ModelCache maps a *canonical byte encoding* of the model inputs (station
// shapes at double precision, routing, contention, K, and the numeric
// backend options) to a shared ModelArtifacts.  Lookups hash the encoding
// but NEVER trust the hash: a hit requires byte equality of the full key, so
// a hash collision degrades to a miss-then-build, never to serving the wrong
// model (tested with a deliberately colliding hash function).  Concurrent
// requests for the same missing key are single-flighted: the first caller
// builds, the rest block on the same shared future.  Capacity is bounded
// with LRU eviction; evicted models stay alive for as long as any solver
// still holds its shared_ptr.

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/transient_solver.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "network/state_space.h"

namespace finwork::core {

/// Immutable shared model: state space + per-level solve artifacts.
///
/// The solve primitives mirror TransientSolver's private helpers; the
/// numeric backend knobs (dense_threshold, tolerance, iteration caps,
/// composite gating) are fixed by the options passed at construction.
class ModelArtifacts {
 public:
  ModelArtifacts(const net::NetworkSpec& spec, std::size_t workstations,
                 SolverOptions options = {});
  ~ModelArtifacts();
  ModelArtifacts(const ModelArtifacts&) = delete;
  ModelArtifacts& operator=(const ModelArtifacts&) = delete;
  ModelArtifacts(ModelArtifacts&&) = delete;
  ModelArtifacts& operator=(ModelArtifacts&&) = delete;

  [[nodiscard]] const net::StateSpace& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t workstations() const noexcept { return k_; }
  [[nodiscard]] const SolverOptions& options() const noexcept { return opts_; }

  /// tau'_k = (I - P_k)^-1 M_k^-1 eps (built with the level on first use).
  [[nodiscard]] const la::Vector& tau(std::size_t k) const;
  /// x = pi (I - P_k)^-1 (row solve: dense LU or Neumann/BiCGSTAB).
  [[nodiscard]] la::Vector solve_left(std::size_t k, const la::Vector& pi) const;
  /// x = (I - P_k)^-1 b (column solve).
  [[nodiscard]] la::Vector solve_right(std::size_t k, const la::Vector& b) const;
  /// Cached dense composite T_k = (I - P_k)^-1 Q_k R_k, or nullptr when the
  /// level is iterative, composite caching is off, or `expected_epochs`
  /// would not amortise the build.  Once built it is returned for every
  /// later call regardless of `expected_epochs`.
  [[nodiscard]] const la::Matrix* composite_operator(
      std::size_t k, std::size_t expected_epochs) const;
  /// Reciprocal condition estimate of level k's dense factorization of
  /// (I - P_k); 0 when the level is iterative or its factorization failed.
  [[nodiscard]] double level_rcond(std::size_t k) const;

 private:
  // Per-level artifacts.  Non-movable (once_flag, mutex), so levels_ is a
  // fixed array sized k_ + 1 at construction.
  struct Level {
    std::once_flag once;
    std::atomic<bool> prepared{false};
    std::optional<la::LuDecomposition> lu;
    la::Vector tau;
    /// Reciprocal condition estimate of the factorization (0 = no LU).
    double rcond = 0.0;
    /// Ladder state: condition estimate breached max_condition, so every
    /// dense solve on this level runs iterative refinement.
    bool refine = false;
    // The composite's build gate depends on the caller's expected epoch
    // count, so a plain call_once cannot express it: guard with a mutex and
    // publish through an acquire/release flag.
    std::mutex composite_mutex;
    std::atomic<bool> composite_ready{false};
    std::optional<la::Matrix> composite;
  };

  /// Factorize (I - P_k) and build tau'_k exactly once; returns the level
  /// with `prepared` visible.
  const Level& prepared_level(std::size_t k) const;
  /// Fallback-ladder solve of x (I - P_k) = b (left) or (I - P_k) x = b
  /// (right) against an already-prepared level (no re-entry into
  /// prepared_level — call_once would self-deadlock).  Stages, in order:
  /// dense LU, iterative refinement, Neumann/BiCGSTAB/GMRES, shifted retry;
  /// throws finwork::SolverError when the whole ladder is exhausted.  See
  /// docs/ROBUSTNESS.md.
  la::Vector ladder_solve(const Level& lvl, std::size_t k, const la::Vector& b,
                          bool left) const;
  /// Refinement stage: correct `x` against the true operator until the
  /// residual meets the solve tolerance; false when the cap runs out.
  bool refine_solution(const Level& lvl, std::size_t k, const la::Vector& b,
                       la::Vector& x, bool left) const;
  /// Rescue stage: shifted-operator Richardson iteration (dense levels
  /// re-factor I - P + sigma I; iterative levels run the shifted Neumann
  /// series).  Throws SolverError on failure.
  la::Vector rescue_solve(const Level& lvl, std::size_t k, const la::Vector& b,
                          bool left) const;

  net::StateSpace space_;
  std::size_t k_;
  SolverOptions opts_;
  mutable std::unique_ptr<Level[]> levels_;
  std::vector<std::future<void>> prebuild_;
};

/// Canonical byte encoding of the model inputs: a version tag, K, every
/// station (name, multiplicity, entrance vector and rate matrix of its
/// service distribution, bit-exact), the network's entry/routing/exit, and
/// the numeric backend options that shape the artifacts.  Two models get
/// the same key iff they are structurally identical and would build
/// identical artifacts.
[[nodiscard]] std::vector<std::uint8_t> canonical_model_key(
    const net::NetworkSpec& spec, std::size_t workstations,
    const SolverOptions& options = {});

/// FNV-1a 64-bit fingerprint of a canonical key (stable across runs).
[[nodiscard]] std::uint64_t model_fingerprint(
    std::span<const std::uint8_t> key) noexcept;

struct ModelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;      ///< models currently resident (incl. in-flight)
  std::size_t capacity = 0;
};

/// Bounded, thread-safe, content-addressed cache of ModelArtifacts.
class ModelCache {
 public:
  /// Test seam: replaces the fingerprint function (e.g. with a constant, to
  /// force collisions and prove byte-equality fallback).
  using HashFn = std::uint64_t (*)(std::span<const std::uint8_t>);

  static constexpr std::size_t kDefaultCapacity = 32;

  explicit ModelCache(std::size_t capacity = kDefaultCapacity,
                      HashFn hash = nullptr);

  /// Return the shared model for (spec, workstations, options), building it
  /// at most once per distinct key across all concurrent callers.  A build
  /// failure propagates to every waiter of that flight and leaves no cache
  /// entry behind.
  [[nodiscard]] std::shared_ptr<const ModelArtifacts> acquire(
      const net::NetworkSpec& spec, std::size_t workstations,
      SolverOptions options = {});

  [[nodiscard]] ModelCacheStats stats() const;
  /// Drop every entry (resident models survive via outstanding shared_ptrs).
  void clear();

  /// Process-wide cache used by the sweep drivers and the CLI.
  [[nodiscard]] static ModelCache& global();

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const ModelArtifacts>>;
  struct Entry {
    std::vector<std::uint8_t> key;
    std::uint64_t fingerprint = 0;
    ModelFuture model;
    bool ready = false;  ///< build finished; entry is evictable
  };

  void evict_over_capacity_locked();

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index_;
  std::size_t capacity_;
  HashFn hash_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace finwork::core
