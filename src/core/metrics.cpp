#include "core/metrics.h"

#include <cmath>
#include <stdexcept>

namespace finwork::core {

RegionAnalysis classify_regions(const DepartureTimeline& timeline,
                                double steady_interdeparture, double rel_tol) {
  if (timeline.epoch_times.empty()) {
    throw std::invalid_argument("classify_regions: empty timeline");
  }
  const std::size_t n = timeline.epoch_times.size();
  RegionAnalysis ra;
  ra.regions.resize(n);
  ra.steady_value = steady_interdeparture;

  // Draining region: population below the cluster size.
  ra.drain_begin = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (timeline.population[i] < timeline.workstations) {
      ra.drain_begin = i;
      break;
    }
  }
  // Steady region: first epoch from which every pre-draining epoch stays
  // within rel_tol of t_ss.
  ra.steady_begin = ra.drain_begin;
  for (std::size_t i = ra.drain_begin; i-- > 0;) {
    const double rel =
        std::abs(timeline.epoch_times[i] - steady_interdeparture) /
        steady_interdeparture;
    if (rel > rel_tol) {
      ra.steady_begin = i + 1;
      break;
    }
    ra.steady_begin = i;
  }

  double t_transient = 0.0, t_steady = 0.0, t_drain = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= ra.drain_begin) {
      ra.regions[i] = Region::kDraining;
      t_drain += timeline.epoch_times[i];
    } else if (i >= ra.steady_begin) {
      ra.regions[i] = Region::kSteadyState;
      t_steady += timeline.epoch_times[i];
    } else {
      ra.regions[i] = Region::kTransient;
      t_transient += timeline.epoch_times[i];
    }
  }
  const double total = timeline.makespan > 0.0 ? timeline.makespan : 1.0;
  ra.transient_fraction = t_transient / total;
  ra.steady_fraction = t_steady / total;
  ra.draining_fraction = t_drain / total;
  return ra;
}

double prediction_error_percent(double actual_makespan,
                                double exponential_makespan) {
  if (actual_makespan <= 0.0) {
    throw std::invalid_argument("prediction_error_percent: bad makespan");
  }
  return (actual_makespan - exponential_makespan) / actual_makespan * 100.0;
}

double speedup(std::size_t tasks, double mean_task_time, double makespan) {
  if (makespan <= 0.0) throw std::invalid_argument("speedup: bad makespan");
  return static_cast<double>(tasks) * mean_task_time / makespan;
}

}  // namespace finwork::core
