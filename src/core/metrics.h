#pragma once
// Performance metrics built on the transient solver's output: the paper's
// operating-region diagnostics (transient / steady-state / draining), the
// exponential-assumption prediction error, and speedup.

#include <cstddef>
#include <vector>

#include "core/transient_solver.h"

namespace finwork::core {

/// Which operating region an epoch belongs to (paper Figures 3, 4, 10, 11).
enum class Region { kTransient, kSteadyState, kDraining };

/// Per-epoch region classification plus summary boundaries.
struct RegionAnalysis {
  std::vector<Region> regions;   ///< one entry per epoch
  std::size_t steady_begin = 0;  ///< first epoch within tolerance of t_ss
  std::size_t drain_begin = 0;   ///< first epoch with population < K
  double steady_value = 0.0;     ///< t_ss used for classification
  /// Fraction of the makespan spent in each region.
  double transient_fraction = 0.0;
  double steady_fraction = 0.0;
  double draining_fraction = 0.0;
};

/// Classify each epoch: draining when the population has dropped below K;
/// steady once the inter-departure time stays within `rel_tol` of t_ss;
/// transient before that.
[[nodiscard]] RegionAnalysis classify_regions(const DepartureTimeline& timeline,
                                              double steady_interdeparture,
                                              double rel_tol = 0.02);

/// The paper's percentage prediction error:
/// E% = (E(T_act) - E(T_exp)) / E(T_act) * 100.
[[nodiscard]] double prediction_error_percent(double actual_makespan,
                                              double exponential_makespan);

/// Speedup of running `tasks` tasks on the modeled cluster versus running
/// them one at a time: SP = tasks * mean_task_time / makespan.
/// `mean_task_time` is the no-contention mean time of a single task
/// (NetworkSpec::single_customer().mean_task_time).
[[nodiscard]] double speedup(std::size_t tasks, double mean_task_time,
                             double makespan);

}  // namespace finwork::core
