#include "core/approximation.h"

#include <algorithm>
#include <stdexcept>

#include "pf/product_form.h"

namespace finwork::core {

ApproximateMakespan approximate_makespan(const TransientSolver& solver,
                                         std::size_t tasks,
                                         const ApproximationOptions& options) {
  if (tasks == 0) {
    throw std::invalid_argument("approximate_makespan: need >= 1 task");
  }
  const std::size_t k = solver.workstations();
  const std::size_t top = std::min(tasks, k);
  ApproximateMakespan result;

  if (top < k || tasks == top) {
    // Pure draining (N <= K): the exact recursion is already O(K); no
    // approximation needed or possible.
    const DepartureTimeline tl = solver.solve(tasks);
    result.makespan = result.warmup_time = tl.makespan;
    result.exact_epochs = tl.epoch_times.size();
    return result;
  }

  const std::size_t saturated_epochs = tasks - k + 1;
  const std::size_t warmup = std::min(options.warmup_epochs, saturated_epochs);

  // Exact leading epochs.
  la::Vector pi = solver.initial_vector();
  for (std::size_t i = 0; i < warmup; ++i) {
    result.warmup_time += solver.mean_epoch_time(k, pi);
    if (i + 1 < saturated_epochs) {
      pi = solver.apply_r(k, solver.apply_y(k, pi));
    }
  }
  result.exact_epochs = warmup;

  // Bulk epochs at the steady-state rate.
  const SteadyStateResult& ss = solver.steady_state();
  result.saturated_time =
      static_cast<double>(saturated_epochs - warmup) * ss.interdeparture;

  // Drain from the steady-state distribution — or from the true state when
  // the warmup already covered every saturated epoch (then the result is
  // exact).
  la::Vector drain = warmup == saturated_epochs
                         ? solver.apply_y(k, pi)
                         : solver.apply_y(k, ss.distribution);
  for (std::size_t level = k - 1; level >= 1; --level) {
    result.draining_time += solver.mean_epoch_time(level, drain);
    if (level > 1) drain = solver.apply_y(level, drain);
  }

  result.makespan =
      result.warmup_time + result.saturated_time + result.draining_time;
  return result;
}

double product_form_makespan_estimate(const net::NetworkSpec& spec,
                                      std::size_t workstations,
                                      std::size_t tasks) {
  if (tasks == 0) {
    throw std::invalid_argument(
        "product_form_makespan_estimate: need >= 1 task");
  }
  const net::NetworkSpec expo = spec.exponentialized();
  const std::size_t top = std::min(tasks, workstations);
  // Saturated bulk at the population-K product-form rate.
  double total = 0.0;
  if (tasks > top) {
    total += static_cast<double>(tasks - top) *
             pf::convolution(expo, top).cycle_time;
  }
  // Draining: one departure at each population level's own rate.
  for (std::size_t level = top; level >= 1; --level) {
    total += pf::convolution(expo, level).cycle_time;
  }
  return total;
}

}  // namespace finwork::core
