#include "core/transient_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "check/invariants.h"
#include "core/model_cache.h"
#include "linalg/iterative.h"
#include "linalg/solver_error.h"
#include "linalg/parallel_blas.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace finwork::core {

TransientSolver::TransientSolver(const net::NetworkSpec& spec,
                                 std::size_t workstations,
                                 SolverOptions options)
    : model_(std::make_shared<const ModelArtifacts>(spec, workstations,
                                                    options)),
      k_(workstations),
      opts_(options) {}

TransientSolver::TransientSolver(std::shared_ptr<const ModelArtifacts> model,
                                 SolverOptions options)
    : model_(std::move(model)), k_(0), opts_(options) {
  if (!model_) {
    throw std::invalid_argument("TransientSolver: null model");
  }
  k_ = model_->workstations();
}

TransientSolver::~TransientSolver() = default;

const net::StateSpace& TransientSolver::space() const noexcept {
  return model_->space();
}

la::Vector TransientSolver::solve_left(std::size_t k,
                                       const la::Vector& pi) const {
  return model_->solve_left(k, pi);
}

la::Vector TransientSolver::solve_right(std::size_t k,
                                        const la::Vector& b) const {
  return model_->solve_right(k, b);
}

std::size_t TransientSolver::composite_break_even(std::size_t level) const {
  return std::max(space().dimension(level), opts_.composite_min_epochs);
}

const la::Vector& TransientSolver::tau(std::size_t k) const {
  return model_->tau(k);
}

la::Vector TransientSolver::apply_y(std::size_t k, const la::Vector& pi) const {
  const net::LevelMatrices& lm = space().level(k);
  return lm.q.apply_left_parallel(solve_left(k, pi),
                                  par::ThreadPool::global());
}

la::Vector TransientSolver::apply_r(std::size_t k, const la::Vector& pi) const {
  return space().level(k).r.apply_left_parallel(pi,
                                                par::ThreadPool::global());
}

double TransientSolver::mean_epoch_time(std::size_t k,
                                        const la::Vector& pi) const {
  return la::dot(pi, tau(k));
}

double TransientSolver::epoch_second_moment(std::size_t k,
                                            const la::Vector& pi) const {
  // E[T^2 | pi] = 2 pi V_k^2 eps = 2 pi V_k tau'_k; one extra column solve.
  const net::LevelMatrices& lm = space().level(k);
  la::Vector rhs = tau(k);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
  return 2.0 * la::dot(pi, solve_right(k, rhs));
}

double TransientSolver::epoch_reliability(std::size_t k, const la::Vector& pi,
                                          double t) const {
  if (t < 0.0) {
    throw std::invalid_argument("epoch_reliability: t must be >= 0");
  }
  if (t == 0.0) return pi.sum();
  // Uniformization of the level generator A = -B_k = -M_k (I - P_k):
  // with q >= max rate, Pu = I + A/q acts on a row vector v as
  //   v Pu = v - (v .* M)/q + ((v .* M) P)/q.
  const net::LevelMatrices& lm = space().level(k);
  const double q = lm.max_event_rate * 1.0001;
  const double qt = q * t;
  par::ThreadPool& pool = par::ThreadPool::global();
  auto step = [&](const la::Vector& v) {
    la::Vector scaled = v;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      scaled[i] *= lm.event_rates[i];
    }
    la::Vector y = lm.p.apply_left_parallel(scaled, pool);
    y -= scaled;
    y /= q;
    y += v;
    return y;
  };
  la::Vector term = pi;
  double weight = std::exp(-qt);
  double acc = weight * term.sum();
  double cumulative = weight;
  const std::size_t max_iter =
      static_cast<std::size_t>(qt + 12.0 * std::sqrt(qt) + 64.0);
  for (std::size_t n = 1; n <= max_iter; ++n) {
    term = step(term);
    weight *= qt / static_cast<double>(n);
    acc += weight * term.sum();
    cumulative += weight;
    if ((1.0 - cumulative) * term.norm_inf() < 1e-14 &&
        static_cast<double>(n) > qt) {
      break;
    }
  }
  return std::min(1.0, std::max(0.0, acc));
}

la::Vector TransientSolver::initial_vector() const {
  return space().initial_vector(k_);
}

DepartureTimeline TransientSolver::solve(std::size_t tasks) const {
  if (tasks == 0) {
    throw std::invalid_argument("TransientSolver::solve: need >= 1 task");
  }
  const obs::ObsSpan span("solver/solve");
  DepartureTimeline tl;
  tl.workstations = k_;
  tl.tasks = tasks;
  tl.epoch_times.reserve(tasks);
  tl.population.reserve(tasks);

  const net::StateSpace& sp = space();
  const std::size_t top = std::min(tasks, k_);
  la::Vector pi = sp.initial_vector(top);

  // Saturated phase: population pinned at `top`, departures replaced from the
  // queue.  Runs for (tasks - top + 1) epochs; after each but the last, the
  // departure (Y) is followed by a replacement (R).
  const std::size_t saturated_epochs = tasks - top + 1;
  // With fast-forward off the epoch count is exact, so the composite
  // amortization decision is made up front.  With it on, mixing usually ends
  // the phase orders of magnitude before N - K epochs, so the build is
  // deferred until the recursion has actually run break-even many epochs
  // and at least as many provably remain.
  const la::Matrix* composite =
      (!opts_.fast_forward && saturated_epochs > 1)
          ? model_->composite_operator(top, saturated_epochs - 1)
          : nullptr;
  const std::size_t break_even = composite_break_even(top);
  par::ThreadPool& pool = par::ThreadPool::global();
  const net::LevelMatrices& lt = sp.level(top);
  // Iterative-path warm start: w = pi (I - P_top)^-1 is carried across
  // epochs and updated by solving for the increment only.  The iterates mix
  // geometrically, so the increment — and with it the Neumann work of each
  // epoch — shrinks toward zero as the run approaches steady state.
  la::Vector w;
  la::Vector last_solved;  // the pi that produced w
  const auto advance = [&](const la::Vector& cur) {
    if (composite != nullptr) {
      return la::multiply_left_parallel(cur, *composite, pool);
    }
    if (w.empty()) {
      w = solve_left(top, cur);
    } else {
      la::Vector rhs = cur;
      rhs -= last_solved;
      w += solve_left(top, rhs);
    }
    last_solved = cur;
    return apply_r(top, lt.q.apply_left_parallel(w, pool));
  };
  la::Vector prev;
  for (std::size_t i = 0; i < saturated_epochs; ++i) {
    const obs::ObsSpan epoch_span("solver/epoch");
    obs::counter_add(obs::Counter::kEpochRecursions);
    tl.epoch_times.push_back(mean_epoch_time(top, pi));
    tl.population.push_back(top);
    if (i + 1 == saturated_epochs) break;
    if (composite == nullptr && opts_.fast_forward && i == break_even &&
        saturated_epochs - 1 - i >= break_even) {
      composite = model_->composite_operator(top, saturated_epochs - 1 - i);
    }
    prev = pi;
    pi = advance(pi);
    if (opts_.fast_forward) {
      double delta = 0.0;
      for (std::size_t j = 0; j < pi.size(); ++j) {
        delta = std::max(delta, std::abs(pi[j] - prev[j]));
      }
      if (delta < opts_.fast_forward_tolerance) {
        // Mixed: every remaining saturated epoch departs from (numerically)
        // this same distribution, so close them all at its epoch time and
        // carry pi straight into the draining phase.
        const double t_ss = mean_epoch_time(top, pi);
        const std::size_t remaining = saturated_epochs - i - 1;
        tl.epoch_times.insert(tl.epoch_times.end(), remaining, t_ss);
        tl.population.insert(tl.population.end(), remaining, top);
        obs::counter_add(obs::Counter::kFastForwardActivations);
        obs::counter_add(obs::Counter::kEpochsSkipped, remaining);
        break;
      }
    }
  }
  // Draining phase: population falls top-1, top-2, ..., 1.
  if (top > 1) {
    if (!w.empty()) {
      // Reuse the saturated resolvent: pi differs from last_solved by one
      // increment, so the final level-top solve is an increment solve too.
      la::Vector rhs = pi;
      rhs -= last_solved;
      w += solve_left(top, rhs);
      pi = lt.q.apply_left_parallel(w, pool);
    } else {
      pi = apply_y(top, pi);
    }
    for (std::size_t k = top - 1; k >= 1; --k) {
      const obs::ObsSpan epoch_span("solver/epoch");
      obs::counter_add(obs::Counter::kEpochRecursions);
      tl.epoch_times.push_back(mean_epoch_time(k, pi));
      tl.population.push_back(k);
      if (k > 1) pi = apply_y(k, pi);
    }
  }

  tl.cumulative.resize(tl.epoch_times.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < tl.epoch_times.size(); ++i) {
    acc += tl.epoch_times[i];
    tl.cumulative[i] = acc;
  }
  tl.makespan = acc;
  return tl;
}

double TransientSolver::makespan(std::size_t tasks) const {
  return solve(tasks).makespan;
}

std::vector<double> TransientSolver::makespan_grid(
    std::span<const std::size_t> tasks) const {
  if (tasks.empty()) return {};
  for (std::size_t n : tasks) {
    if (n == 0) {
      throw std::invalid_argument("makespan_grid: need >= 1 task");
    }
  }
  const obs::ObsSpan span("solver/makespan_grid");
  obs::counter_add(obs::Counter::kGridPointsPerPass, tasks.size());
  std::vector<double> results(tasks.size(), 0.0);
  const net::StateSpace& sp = space();

  // Depth of the drain recursion: level K when any workload saturates, else
  // the largest sub-K workload.
  bool any_large = false;
  std::size_t h_top = 0;
  for (std::size_t n : tasks) {
    if (n >= k_) {
      any_large = true;
    } else {
      h_top = std::max(h_top, n);
    }
  }
  if (any_large) h_top = k_;

  // Drain vectors: h_t[s] is the mean remaining completion time starting in
  // state s of Xi_t with no admissions left, the column-recursion mirror of
  // the draining phase of solve():
  //   h_t = tau'_t + (I - P_t)^-1 Q_t h_{t-1},   h_0 = 0.
  // One column solve per level, shared by every harvested workload.
  std::vector<la::Vector> h(h_top + 1);
  h[0] = la::Vector(sp.dimension(0), 0.0);
  for (std::size_t t = 1; t <= h_top; ++t) {
    h[t] = tau(t) + solve_right(t, sp.level(t).q.apply(h[t - 1]));
  }

  // Workloads below K never saturate: the whole run is a drain from level N.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] < k_) {
      results[i] = la::dot(sp.initial_vector(tasks[i]), h[tasks[i]]);
    }
  }
  if (!any_large) return results;

  // Saturating workloads: N = K + j needs j advances of the epoch recursion;
  // harvested at iterate j as E(T) = prefix_j + pi_j h_K, where prefix_j is
  // the mean time of the j epochs already closed.  One pass to the largest j
  // serves every point.
  std::vector<std::pair<std::size_t, std::size_t>> targets;  // (j, output)
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] >= k_) targets.emplace_back(tasks[i] - k_, i);
  }
  std::sort(targets.begin(), targets.end());
  const std::size_t j_max = targets.back().first;

  la::Vector pi = sp.initial_vector(k_);
  // Same deferred-build policy as solve(): see the comment there.
  const la::Matrix* composite =
      (!opts_.fast_forward && j_max > 0)
          ? model_->composite_operator(k_, j_max)
          : nullptr;
  const std::size_t break_even = composite_break_even(k_);
  par::ThreadPool& pool = par::ThreadPool::global();
  const net::LevelMatrices& lt = sp.level(k_);
  const la::Vector& h_k = h[k_];
  la::Vector w;
  la::Vector last_solved;
  const auto advance = [&](const la::Vector& cur) {
    if (composite != nullptr) {
      return la::multiply_left_parallel(cur, *composite, pool);
    }
    if (w.empty()) {
      w = solve_left(k_, cur);
    } else {
      la::Vector rhs = cur;
      rhs -= last_solved;
      w += solve_left(k_, rhs);
    }
    last_solved = cur;
    return apply_r(k_, lt.q.apply_left_parallel(w, pool));
  };

  auto next_target = targets.begin();
  la::Vector prev;
  double prefix = 0.0;
  for (std::size_t j = 0;; ++j) {
    const double harvest = la::dot(pi, h_k);
    while (next_target != targets.end() && next_target->first == j) {
      results[next_target->second] = prefix + harvest;
      ++next_target;
    }
    if (next_target == targets.end()) break;
    if (composite == nullptr && opts_.fast_forward && j == break_even &&
        j_max - j >= break_even) {
      composite = model_->composite_operator(k_, j_max - j);
    }
    const obs::ObsSpan epoch_span("solver/epoch");
    obs::counter_add(obs::Counter::kEpochRecursions);
    prefix += la::dot(pi, tau(k_));
    prev = pi;
    pi = advance(pi);
    if (opts_.fast_forward) {
      double delta = 0.0;
      for (std::size_t s = 0; s < pi.size(); ++s) {
        delta = std::max(delta, std::abs(pi[s] - prev[s]));
      }
      if (delta < opts_.fast_forward_tolerance) {
        // Mixed at iterate j+1: every later epoch departs from this same
        // distribution, so each remaining point closes in O(1) —
        //   E(T)(K + J) = prefix_{j+1} + (J - j - 1) t_ss + pi h_K.
        const double t_ss = la::dot(pi, tau(k_));
        const double tail = la::dot(pi, h_k);
        obs::counter_add(obs::Counter::kFastForwardActivations);
        obs::counter_add(obs::Counter::kEpochsSkipped, j_max - j - 1);
        for (; next_target != targets.end(); ++next_target) {
          const auto r = static_cast<double>(next_target->first - j - 1);
          results[next_target->second] = prefix + r * t_ss + tail;
        }
        break;
      }
    }
  }
  return results;
}

MakespanMoments TransientSolver::makespan_moments(std::size_t tasks) const {
  if (tasks == 0) {
    throw std::invalid_argument("makespan_moments: need >= 1 task");
  }
  const obs::ObsSpan span("solver/makespan_moments");
  // The whole run is one absorbing chain whose blocks are the saturated
  // segments (level K, one per admission remaining) followed by the
  // draining levels K-1..1.  With B the full service-rate matrix,
  //   m1 = B^-1 eps   (remaining mean time per state)
  //   m2 = 2 B^-2 eps = 2 B^-1 m1,
  // and the block bidiagonal structure lets both be back-substituted one
  // block at a time using the cached per-level factorizations:
  //   m1_b = tau_b + (I-P)^-1 Q [R] m1_next
  //   x_b  = V_b m1_b + (I-P)^-1 Q [R] x_next,   m2 = 2 x.
  const net::StateSpace& sp = space();
  const std::size_t top = std::min(tasks, k_);

  // Column-oriented helpers.
  const auto v_apply = [&](std::size_t k, const la::Vector& m) {
    const net::LevelMatrices& lm = sp.level(k);
    la::Vector rhs = m;
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
    return solve_right(k, rhs);
  };
  const auto flow_apply = [&](std::size_t k, const la::Vector& next) {
    // (I - P_k)^-1 Q_k next  (next lives one level down)
    return solve_right(k, sp.level(k).q.apply(next));
  };

  // Draining levels 1..top-1 (remaining time after the queue has emptied).
  la::Vector m1_next(1, 0.0);  // level 0: absorbed, zero remaining time
  la::Vector x_next(1, 0.0);
  for (std::size_t k = 1; k < top; ++k) {
    la::Vector m1 = tau(k) + flow_apply(k, m1_next);
    la::Vector x = v_apply(k, m1) + flow_apply(k, x_next);
    m1_next = std::move(m1);
    x_next = std::move(x);
  }

  // Saturated segments: j admissions remaining, j = 0 .. tasks - top.
  const net::LevelMatrices& lt = sp.level(top);
  const std::size_t total_j = tasks - top;
  // Deferred-build policy as in solve(); each admission applies T twice
  // (m1 and x), so the break-even point arrives in half the iterations.
  const la::Matrix* composite =
      (!opts_.fast_forward && total_j > 0)
          ? model_->composite_operator(top, total_j)
          : nullptr;
  const std::size_t defer_at = composite_break_even(top) / 2 + 1;
  par::ThreadPool& pool = par::ThreadPool::global();
  // One admission step of both recursions is the column action of
  // T = (I - P)^-1 Q R; use the cached dense composite when available.
  const auto t_apply = [&](const la::Vector& v) {
    if (composite != nullptr) return la::multiply_parallel(*composite, v, pool);
    return solve_right(top, lt.q.apply(lt.r.apply(v)));
  };
  la::Vector m1 = tau(top) + flow_apply(top, m1_next);
  la::Vector x = v_apply(top, m1) + flow_apply(top, x_next);
  la::Vector d_prev;  // previous first difference of m1
  la::Vector e_prev;  // previous first difference of x
  la::Vector f_prev;  // previous second difference of x
  for (std::size_t j = 1; j <= total_j; ++j) {
    if (composite == nullptr && opts_.fast_forward && j == defer_at &&
        total_j - j + 1 >= defer_at) {
      composite = model_->composite_operator(top, 2 * (total_j - j + 1));
    }
    la::Vector m1_new = tau(top) + t_apply(m1);
    la::Vector x_new = v_apply(top, m1_new) + t_apply(x);
    la::Vector d = m1_new;
    d -= m1;
    la::Vector e = x_new;
    e -= x;
    m1 = std::move(m1_new);
    x = std::move(x_new);

    if (opts_.fast_forward && j >= 3) {
      // Past mixing, m1 grows by a constant vector per admission
      // (d_j -> t_ss eps) and the x increments become arithmetic
      // (e_{j+i} ~ e_j + i f): once both the first difference of d and the
      // second difference of x have stabilised, close the remaining
      // admissions in closed form:
      //   m1 += R d,   x += R e + R(R+1)/2 f,   R = total_j - j.
      la::Vector dd = d;
      dd -= d_prev;
      la::Vector f = e;
      f -= e_prev;
      la::Vector ff = f;
      ff -= f_prev;
      const double tol = opts_.fast_forward_moment_tolerance;
      // f is a second difference of near-cancelling terms; its floating
      // noise floor is ~eps ||x||, below which no threshold can bite.
      const double noise_floor = 4.0 * 2.220446049250313e-16 * x.norm_inf();
      if (dd.norm_inf() <= tol * d.norm_inf() &&
          ff.norm_inf() <= tol * f.norm_inf() + noise_floor) {
        const auto remaining = static_cast<double>(total_j - j);
        la::axpy(remaining, d, m1);
        la::axpy(remaining, e, x);
        la::axpy(0.5 * remaining * (remaining + 1.0), f, x);
        obs::counter_add(obs::Counter::kFastForwardActivations);
        obs::counter_add(obs::Counter::kEpochsSkipped, total_j - j);
        break;
      }
      f_prev = std::move(f);
    } else if (opts_.fast_forward && j >= 2) {
      la::Vector f = e;
      f -= e_prev;
      f_prev = std::move(f);
    }
    d_prev = std::move(d);
    e_prev = std::move(e);
  }

  const la::Vector p0 = sp.initial_vector(top);
  MakespanMoments mm;
  mm.mean = la::dot(p0, m1);
  mm.second_moment = 2.0 * la::dot(p0, x);
  mm.variance = mm.second_moment - mm.mean * mm.mean;
  mm.std_dev = std::sqrt(std::max(0.0, mm.variance));
  mm.scv = mm.variance / (mm.mean * mm.mean);
  return mm;
}

std::vector<MakespanMoments> TransientSolver::makespan_moments_grid(
    std::span<const std::size_t> tasks) const {
  if (tasks.empty()) return {};
  for (std::size_t n : tasks) {
    if (n == 0) {
      throw std::invalid_argument("makespan_moments_grid: need >= 1 task");
    }
  }
  const obs::ObsSpan span("solver/makespan_moments_grid");
  obs::counter_add(obs::Counter::kGridPointsPerPass, tasks.size());
  std::vector<MakespanMoments> results(tasks.size());
  const net::StateSpace& sp = space();

  const auto v_apply = [&](std::size_t k, const la::Vector& m) {
    const net::LevelMatrices& lm = sp.level(k);
    la::Vector rhs = m;
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
    return solve_right(k, rhs);
  };
  const auto flow_apply = [&](std::size_t k, const la::Vector& next) {
    return solve_right(k, sp.level(k).q.apply(next));
  };
  const auto fill = [](MakespanMoments& mm, double mean, double x_val) {
    mm.mean = mean;
    mm.second_moment = 2.0 * x_val;
    mm.variance = mm.second_moment - mm.mean * mm.mean;
    mm.std_dev = std::sqrt(std::max(0.0, mm.variance));
    mm.scv = mm.variance / (mm.mean * mm.mean);
  };

  // Workloads below K are whole-run drains: level N of the draining
  // back-substitution IS workload N's remaining-time system, so harvest each
  // on the way up.
  bool any_large = false;
  std::size_t loop_top = 0;
  for (std::size_t n : tasks) {
    if (n >= k_) {
      any_large = true;
    } else {
      loop_top = std::max(loop_top, n);
    }
  }
  if (any_large) loop_top = k_ > 0 ? k_ - 1 : 0;

  la::Vector m1_next(1, 0.0);
  la::Vector x_next(1, 0.0);
  for (std::size_t k = 1; k <= loop_top; ++k) {
    la::Vector m1 = tau(k) + flow_apply(k, m1_next);
    la::Vector x = v_apply(k, m1) + flow_apply(k, x_next);
    bool wanted = false;
    for (std::size_t n : tasks) wanted = wanted || (n == k && n < k_);
    if (wanted) {
      const la::Vector p0 = sp.initial_vector(k);
      const double mean = la::dot(p0, m1);
      const double x_val = la::dot(p0, x);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (tasks[i] == k) fill(results[i], mean, x_val);
      }
    }
    m1_next = std::move(m1);
    x_next = std::move(x);
  }
  if (!any_large) return results;

  // Saturating workloads N = K + j: one admission loop to the largest j,
  // harvesting dot products at each requested iterate.
  std::vector<std::pair<std::size_t, std::size_t>> targets;  // (j, output)
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i] >= k_) targets.emplace_back(tasks[i] - k_, i);
  }
  std::sort(targets.begin(), targets.end());
  const std::size_t j_max = targets.back().first;

  const net::LevelMatrices& lt = sp.level(k_);
  // Deferred-build policy as in makespan_moments.
  const la::Matrix* composite =
      (!opts_.fast_forward && j_max > 0)
          ? model_->composite_operator(k_, j_max)
          : nullptr;
  const std::size_t defer_at = composite_break_even(k_) / 2 + 1;
  par::ThreadPool& pool = par::ThreadPool::global();
  const auto t_apply = [&](const la::Vector& v) {
    if (composite != nullptr) return la::multiply_parallel(*composite, v, pool);
    return solve_right(k_, lt.q.apply(lt.r.apply(v)));
  };
  const la::Vector p0 = sp.initial_vector(k_);
  la::Vector m1 = tau(k_) + flow_apply(k_, m1_next);
  la::Vector x = v_apply(k_, m1) + flow_apply(k_, x_next);
  auto next_target = targets.begin();
  const auto harvest = [&](std::size_t j) {
    while (next_target != targets.end() && next_target->first == j) {
      fill(results[next_target->second], la::dot(p0, m1), la::dot(p0, x));
      ++next_target;
    }
  };
  harvest(0);
  la::Vector d_prev;
  la::Vector e_prev;
  la::Vector f_prev;
  for (std::size_t j = 1; next_target != targets.end(); ++j) {
    if (composite == nullptr && opts_.fast_forward && j == defer_at &&
        j_max - j + 1 >= defer_at) {
      composite = model_->composite_operator(k_, 2 * (j_max - j + 1));
    }
    la::Vector m1_new = tau(k_) + t_apply(m1);
    la::Vector x_new = v_apply(k_, m1_new) + t_apply(x);
    la::Vector d = m1_new;
    d -= m1;
    la::Vector e = x_new;
    e -= x;
    m1 = std::move(m1_new);
    x = std::move(x_new);
    harvest(j);
    if (next_target == targets.end()) break;

    if (opts_.fast_forward && j >= 3) {
      la::Vector dd = d;
      dd -= d_prev;
      la::Vector f = e;
      f -= e_prev;
      la::Vector ff = f;
      ff -= f_prev;
      const double tol = opts_.fast_forward_moment_tolerance;
      const double noise_floor = 4.0 * 2.220446049250313e-16 * x.norm_inf();
      if (dd.norm_inf() <= tol * d.norm_inf() &&
          ff.norm_inf() <= tol * f.norm_inf() + noise_floor) {
        // Mixed: the same closed forms makespan_moments uses, applied per
        // point by linearity of the p0 dot product —
        //   mean(K+J) = p0 m1 + R p0 d,
        //   x(K+J)    = p0 x + R p0 e + R(R+1)/2 p0 f,   R = J - j.
        const double mean_j = la::dot(p0, m1);
        const double x_j = la::dot(p0, x);
        const double d_s = la::dot(p0, d);
        const double e_s = la::dot(p0, e);
        const double f_s = la::dot(p0, f);
        obs::counter_add(obs::Counter::kFastForwardActivations);
        obs::counter_add(obs::Counter::kEpochsSkipped, j_max - j);
        for (; next_target != targets.end(); ++next_target) {
          const auto r = static_cast<double>(next_target->first - j);
          fill(results[next_target->second], mean_j + r * d_s,
               x_j + r * e_s + 0.5 * r * (r + 1.0) * f_s);
        }
        break;
      }
      f_prev = std::move(f);
    } else if (opts_.fast_forward && j >= 2) {
      la::Vector f = e;
      f -= e_prev;
      f_prev = std::move(f);
    }
    d_prev = std::move(d);
    e_prev = std::move(e);
  }
  return results;
}

std::vector<double> TransientSolver::makespan_cdf(
    std::size_t tasks, const std::vector<double>& times) const {
  if (tasks == 0) {
    throw std::invalid_argument("makespan_cdf: need >= 1 task");
  }
  for (double t : times) {
    if (t < 0.0) throw std::invalid_argument("makespan_cdf: negative time");
  }
  if (times.empty()) return {};
  const obs::ObsSpan span("solver/makespan_cdf");
  const net::StateSpace& sp = space();
  const std::size_t top = std::min(tasks, k_);

  // Layered blocks: saturated segments with j admissions remaining
  // (j = tasks - top .. 0), then draining levels top-1 .. 1.  Block b's
  // dynamics are its level's (M, P); a departure feeds block b+1 (with the
  // R_top re-entry while saturated); level 1 departures absorb.
  struct Block {
    std::size_t level;
    bool replace;  // departure re-admits a task (saturated, j > 0)
  };
  std::vector<Block> blocks;
  for (std::size_t j = tasks - top; j > 0; --j) blocks.push_back({top, true});
  blocks.push_back({top, false});
  for (std::size_t level = top - 1; level >= 1; --level) {
    blocks.push_back({level, false});
  }

  // Uniformization rate: the fastest event rate across all levels (cached
  // per level at build time).
  double q = 0.0;
  for (std::size_t level = 1; level <= top; ++level) {
    q = std::max(q, sp.level(level).max_event_rate);
  }
  q *= 1.0001;

  const double t_max = *std::max_element(times.begin(), times.end());
  const double qt_max = q * t_max;
  const auto n_max = static_cast<std::size_t>(
      qt_max + 12.0 * std::sqrt(qt_max + 1.0) + 64.0);

  // DTMC pass: track per-block row vectors and record the absorbed mass
  // after each uniformized step.  All working buffers are sized once up
  // front and reused every step.
  const net::LevelMatrices& ltop = sp.level(top);
  par::ThreadPool& pool = par::ThreadPool::global();
  std::vector<la::Vector> state(blocks.size());
  std::vector<la::Vector> next(blocks.size());
  std::vector<la::Vector> scaled(blocks.size());
  std::vector<la::Vector> out(blocks.size());
  std::vector<la::Vector> handoff(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t d = sp.dimension(blocks[b].level);
    state[b] = la::Vector(d, 0.0);
    next[b] = la::Vector(d, 0.0);
    scaled[b] = la::Vector(d, 0.0);
    out[b] = la::Vector(sp.dimension(blocks[b].level - 1), 0.0);
    if (blocks[b].replace) {
      handoff[b] = la::Vector(sp.dimension(top), 0.0);
    }
  }
  state[0] = sp.initial_vector(top);
  double absorbed = 0.0;
  std::vector<double> absorbed_after{absorbed};  // a_0
  absorbed_after.reserve(n_max + 1);

  // One uniformized step of block b into its own buffers:
  //   next_b = v - (v .* M)/q + ((v .* M) P)/q,  out_b = (v .* M) Q / q,
  // with the departing mass routed later in a serial merge so the block
  // fan-out stays deterministic.  `inner_parallel` picks pooled CSR
  // actions when the blocks themselves run serially.
  const auto step_block = [&](std::size_t b, bool inner_parallel) {
    const net::LevelMatrices& lm = sp.level(blocks[b].level);
    const la::Vector& st = state[b];
    la::Vector& sc = scaled[b];
    for (std::size_t i = 0; i < sc.size(); ++i) {
      sc[i] = st[i] * lm.event_rates[i] / q;
    }
    la::Vector& nb = next[b];
    if (inner_parallel) {
      nb = lm.p.apply_left_parallel(sc, pool);
    } else {
      nb.fill(0.0);
      lm.p.apply_left_add(sc, nb);
    }
    nb -= sc;
    nb += st;
    la::Vector& ob = out[b];
    if (inner_parallel) {
      ob = lm.q.apply_left_parallel(sc, pool);
    } else {
      ob.fill(0.0);
      lm.q.apply_left_add(sc, ob);
    }
    if (blocks[b].replace) {
      la::Vector& hb = handoff[b];
      if (inner_parallel) {
        hb = ltop.r.apply_left_parallel(ob, pool);
      } else {
        hb.fill(0.0);
        ltop.r.apply_left_add(ob, hb);
      }
    }
  };

  const bool fan_out = blocks.size() >= 4 && pool.size() > 1 &&
                       !par::ThreadPool::on_worker_thread();
  const std::size_t grain =
      std::max<std::size_t>(1, blocks.size() / (4 * pool.size()));
  for (std::size_t step = 1; step <= n_max; ++step) {
    if (fan_out) {
      par::parallel_for(
          pool, 0, blocks.size(), [&](std::size_t b) { step_block(b, false); },
          grain);
    } else {
      for (std::size_t b = 0; b < blocks.size(); ++b) step_block(b, true);
    }
    // Serial merge in ascending block order: identical accumulation order
    // whether or not the blocks fanned out above.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (b + 1 < blocks.size()) {
        next[b + 1] += blocks[b].replace ? handoff[b] : out[b];
      } else {
        absorbed += out[b].sum();
      }
    }
    state.swap(next);
    absorbed_after.push_back(absorbed);
    if (1.0 - absorbed < 1e-13) {
      // effectively done: later steps keep the same absorbed mass
      break;
    }
  }

  // Evaluate each time point: F(t) = sum_n Poisson(n; qt) a_n, with the
  // tail beyond the recorded steps charged at the final absorbed level.
  // The Poisson weights are expanded outward from the mode in log space —
  // exp(-qt) underflows for qt beyond ~745, so the naive recurrence from
  // n = 0 silently drops all the mass for long horizons.
  const auto a_of = [&](std::size_t n) {
    return n < absorbed_after.size() ? absorbed_after[n]
                                     : absorbed_after.back();
  };
  std::vector<double> result(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double t = times[ti];
    if (t == 0.0) {
      result[ti] = 0.0;
      continue;
    }
    const double qt = q * t;
    const auto mode = static_cast<std::size_t>(qt);
    const double log_w_mode = static_cast<double>(mode) * std::log(qt) - qt -
                              std::lgamma(static_cast<double>(mode) + 1.0);
    double total = 0.0;
    double mass = 0.0;
    // Upward from the mode.
    double w = std::exp(log_w_mode);
    for (std::size_t n = mode;; ++n) {
      total += w * a_of(n);
      mass += w;
      w *= qt / static_cast<double>(n + 1);
      if (w < 1e-17 && static_cast<double>(n) > qt) break;
    }
    // Downward from the mode.
    w = std::exp(log_w_mode);
    for (std::size_t n = mode; n-- > 0;) {
      w *= static_cast<double>(n + 1) / qt;
      total += w * a_of(n);
      mass += w;
      if (w < 1e-17) break;
    }
    // Residual Poisson mass lies in the far upper tail where a_n has
    // flattened at its final level.
    total += std::max(0.0, 1.0 - mass) * absorbed_after.back();
    result[ti] = std::min(1.0, std::max(0.0, total));
  }
  return result;
}

double TransientSolver::makespan_cdf(std::size_t tasks, double time) const {
  return makespan_cdf(tasks, std::vector<double>{time})[0];
}

std::vector<TransientSolver::StationOccupancy>
TransientSolver::station_occupancy(std::size_t k, const la::Vector& pi) const {
  if (k == 0 || k > k_) {
    throw std::out_of_range("station_occupancy: bad level");
  }
  const net::StateSpace& sp = space();
  if (pi.size() != sp.dimension(k)) {
    throw std::invalid_argument("station_occupancy: size mismatch");
  }
  const std::size_t s = sp.num_stations();
  std::vector<StationOccupancy> occ(s);
  const auto& states = sp.states(k);
  for (std::size_t is = 0; is < states.size(); ++is) {
    const double w = pi[is];
    if (w == 0.0) continue;
    for (std::size_t j = 0; j < s; ++j) {
      const net::StationModel& model = sp.model(j);
      const auto [n, local] = model.decode(states[is][j]);
      occ[j].mean_customers += w * static_cast<double>(n);
      const auto counts = model.phase_counts(n, local);
      std::size_t busy = 0;
      for (std::size_t c : counts) busy += c;
      occ[j].mean_in_service += w * static_cast<double>(busy);
    }
  }
  for (std::size_t j = 0; j < s; ++j) {
    occ[j].utilization =
        occ[j].mean_in_service /
        static_cast<double>(sp.spec().station(j).multiplicity);
  }
  return occ;
}

TransientSolver::DepartureCorrelation TransientSolver::steady_state_lag1()
    const {
  // With U_ij = E[T1 ; next-epoch start = j] = (V Y R)_ij (from
  // int t e^{-Bt} dt = B^-2 and Y = V M Q), the joint mean is
  // E[T1 T2] = p_ss V Y R tau'.  All factors act column-wise on tau'.
  const SteadyStateResult& ss = steady_state();
  const net::LevelMatrices& lm = space().level(k_);
  // z = R tau'
  const la::Vector z = lm.r.apply(tau(k_));
  // w = Y z = (I - P)^-1 Q z
  const la::Vector w = solve_right(k_, lm.q.apply(z));
  // u = V w = (I - P)^-1 M^-1 w
  la::Vector rhs = w;
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
  const la::Vector u = solve_right(k_, rhs);

  DepartureCorrelation dc;
  const double joint = la::dot(ss.distribution, u);
  dc.covariance = joint - ss.interdeparture * ss.interdeparture;
  const double variance =
      ss.interdeparture_scv * ss.interdeparture * ss.interdeparture;
  dc.correlation = variance > 0.0 ? dc.covariance / variance : 0.0;
  return dc;
}

const la::Vector& TransientSolver::time_stationary_distribution() const {
  if (time_stationary_) return *time_stationary_;
  const obs::ObsSpan span("solver/time_stationary");
  // The saturated CTMC has off-diagonal rate matrix M (P + Q R).  With
  // z = pi .* M, stationarity reads z (P + Q R) = z: find z by (damped)
  // power iteration, then unscale by the rates and normalize.
  const net::LevelMatrices& lm = space().level(k_);
  par::ThreadPool& pool = par::ThreadPool::global();
  const auto apply_jump = [&](const la::Vector& z) {
    la::Vector next = lm.p.apply_left_parallel(z, pool);
    next += lm.r.apply_left_parallel(lm.q.apply_left_parallel(z, pool), pool);
    next += z;
    next *= 0.5;
    return next;
  };
  const la::IterativeResult res = la::power_iteration_left(
      apply_jump, initial_vector(), opts_.tolerance, opts_.max_power_iterations);
  if (!res.converged) {
    SolverErrorContext ctx;
    ctx.level = k_;
    ctx.dimension = res.x.size();
    ctx.residual = res.residual;
    ctx.iterations = res.iterations;
    ctx.detail = "time_stationary_distribution: power iteration stalled";
    throw SolverError(SolverErrorKind::kNonConvergence,
                      SolverStage::kPowerIteration, std::move(ctx));
  }
  la::Vector pi = res.x;
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] /= lm.event_rates[i];
  pi /= pi.sum();
  time_stationary_ = std::move(pi);
  return *time_stationary_;
}

const SteadyStateResult& TransientSolver::steady_state() const {
  if (steady_) return *steady_;
  const obs::ObsSpan span("solver/steady_state");
  // Fixed point of T = Y_K R_K, damped to (T + I)/2 to kill any period-2
  // component of the power iteration.
  const auto apply_t = [this](const la::Vector& pi) {
    la::Vector next = apply_r(k_, apply_y(k_, pi));
    next += pi;
    next *= 0.5;
    return next;
  };
  const la::Vector start = initial_vector();
  const la::IterativeResult res = la::power_iteration_left(
      apply_t, start, opts_.tolerance, opts_.max_power_iterations);
  SteadyStateResult ss;
  ss.distribution = res.x;
  if constexpr (check::kEnabled) {
    if (res.converged) {
      // The steady-state law: p_ss Y_K R_K = p_ss on the simplex.  The
      // damped map halves the residual, so allow a small multiple of the
      // power-iteration tolerance.
      check::check_probability_vector(ss.distribution, "p_ss", k_,
                                      1e3 * opts_.tolerance);
      const la::Vector next = apply_r(k_, apply_y(k_, ss.distribution));
      check::check_fixed_point(ss.distribution, next, "p_ss Y_K R_K", k_,
                               1e3 * opts_.tolerance);
    }
  }
  ss.interdeparture = mean_epoch_time(k_, ss.distribution);
  ss.throughput = 1.0 / ss.interdeparture;
  const double m2 = epoch_second_moment(k_, ss.distribution);
  ss.interdeparture_scv =
      (m2 - ss.interdeparture * ss.interdeparture) /
      (ss.interdeparture * ss.interdeparture);
  ss.iterations = res.iterations;
  ss.converged = res.converged;
  steady_ = std::move(ss);
  return *steady_;
}

}  // namespace finwork::core
