#include "core/transient_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/invariants.h"
#include "linalg/iterative.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace finwork::core {

TransientSolver::TransientSolver(const net::NetworkSpec& spec,
                                 std::size_t workstations,
                                 SolverOptions options)
    : space_(spec, workstations), k_(workstations), opts_(options) {
  // Fail fast on networks whose first-passage times diverge.
  spec.validate_connectivity();
  levels_.resize(k_ + 1);
}

const TransientSolver::Level& TransientSolver::prepared_level(
    std::size_t k) const {
  if (k == 0 || k > k_) throw std::out_of_range("TransientSolver: bad level");
  Level& lvl = levels_[k];
  if (lvl.prepared) {
    obs::counter_add(obs::Counter::kLuReuseHits);
    return lvl;
  }
  const obs::ObsSpan span("solver/prepare_level");
  const net::LevelMatrices& lm = space_.level(k);
  const std::size_t d = space_.dimension(k);
  if (d <= opts_.dense_threshold) {
    const obs::ObsSpan factor_span("solver/factorize_level");
    la::Matrix a = lm.p.to_dense();
    a *= -1.0;
    for (std::size_t i = 0; i < d; ++i) a(i, i) += 1.0;
    lvl.lu.emplace(a);
  }
  // tau'_k = (I - P_k)^-1 (M_k^-1 eps)
  la::Vector rhs(d);
  for (std::size_t i = 0; i < d; ++i) rhs[i] = 1.0 / lm.event_rates[i];
  lvl.prepared = true;  // set before solve_right so it can use lvl.lu
  lvl.tau = solve_right(k, rhs);
  if constexpr (check::kEnabled) {
    // tau'_k = V_k eps: mean remaining epoch time per state — finite and
    // positive, or the level's (I - P_k) solve went off the rails.
    check::check_finite(lvl.tau, "tau'_k", k);
    check::check_positive_rates(lvl.tau, "tau'_k", k);
  }
  return lvl;
}

la::Vector TransientSolver::solve_left(std::size_t k,
                                       const la::Vector& pi) const {
  const Level& lvl = prepared_level(k);
  if (lvl.lu) {
    obs::counter_add(obs::Counter::kDenseSolves);
    return lvl.lu->solve_left(pi);
  }
  obs::counter_add(obs::Counter::kIterativeSolves);
  const net::LevelMatrices& lm = space_.level(k);
  const auto apply_p = [&lm](const la::Vector& x) { return lm.p.apply_left(x); };
  la::IterativeResult res = la::neumann_solve_left(
      apply_p, pi, opts_.tolerance, opts_.max_neumann_iterations);
  if (res.converged) return std::move(res.x);
  const auto apply_a = [&lm](const la::Vector& x) {
    la::Vector y = x;
    y -= lm.p.apply_left(x);
    return y;
  };
  res = la::bicgstab_left(apply_a, pi, opts_.tolerance,
                          opts_.max_bicgstab_iterations);
  if (!res.converged) {
    throw std::runtime_error(
        "TransientSolver: iterative solve failed to converge at level " +
        std::to_string(k));
  }
  return std::move(res.x);
}

la::Vector TransientSolver::solve_right(std::size_t k,
                                        const la::Vector& b) const {
  const Level& lvl = prepared_level(k);
  if (lvl.lu) {
    obs::counter_add(obs::Counter::kDenseSolves);
    return lvl.lu->solve(b);
  }
  obs::counter_add(obs::Counter::kIterativeSolves);
  const net::LevelMatrices& lm = space_.level(k);
  // Column solve: (I - P) x = b via the Neumann series x = sum P^n b.
  la::Vector x = b;
  la::Vector term = b;
  for (std::size_t n = 1; n <= opts_.max_neumann_iterations; ++n) {
    term = lm.p.apply(term);
    x += term;
    if (term.norm_inf() < opts_.tolerance) {
      obs::counter_add(obs::Counter::kNeumannIterations, n);
      return x;
    }
  }
  obs::counter_add(obs::Counter::kNeumannIterations,
                   opts_.max_neumann_iterations);
  // Fall back to BiCGSTAB on the transposed system: (I - P)^T y = ... not
  // needed; run BiCGSTAB with the column action expressed as a row action on
  // the transpose.  CSR supports both actions, so wire it directly.
  const auto apply_at = [&lm](const la::Vector& v) {
    la::Vector y = v;
    y -= lm.p.apply(v);
    return y;
  };
  la::IterativeResult res = la::bicgstab_left(apply_at, b, opts_.tolerance,
                                              opts_.max_bicgstab_iterations);
  if (!res.converged) {
    throw std::runtime_error(
        "TransientSolver: column solve failed to converge at level " +
        std::to_string(k));
  }
  return std::move(res.x);
}

const la::Vector& TransientSolver::tau(std::size_t k) const {
  return prepared_level(k).tau;
}

la::Vector TransientSolver::apply_y(std::size_t k, const la::Vector& pi) const {
  const net::LevelMatrices& lm = space_.level(k);
  return lm.q.apply_left(solve_left(k, pi));
}

la::Vector TransientSolver::apply_r(std::size_t k, const la::Vector& pi) const {
  return space_.level(k).r.apply_left(pi);
}

double TransientSolver::mean_epoch_time(std::size_t k,
                                        const la::Vector& pi) const {
  return la::dot(pi, tau(k));
}

double TransientSolver::epoch_second_moment(std::size_t k,
                                            const la::Vector& pi) const {
  // E[T^2 | pi] = 2 pi V_k^2 eps = 2 pi V_k tau'_k; one extra column solve.
  const net::LevelMatrices& lm = space_.level(k);
  la::Vector rhs = tau(k);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
  return 2.0 * la::dot(pi, solve_right(k, rhs));
}

double TransientSolver::epoch_reliability(std::size_t k, const la::Vector& pi,
                                          double t) const {
  if (t < 0.0) {
    throw std::invalid_argument("epoch_reliability: t must be >= 0");
  }
  if (t == 0.0) return pi.sum();
  // Uniformization of the level generator A = -B_k = -M_k (I - P_k):
  // with q >= max rate, Pu = I + A/q acts on a row vector v as
  //   v Pu = v - (v .* M)/q + ((v .* M) P)/q.
  const net::LevelMatrices& lm = space_.level(k);
  double q = 0.0;
  for (std::size_t i = 0; i < lm.event_rates.size(); ++i) {
    q = std::max(q, lm.event_rates[i]);
  }
  q *= 1.0001;
  const double qt = q * t;
  auto step = [&](const la::Vector& v) {
    la::Vector scaled = v;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      scaled[i] *= lm.event_rates[i];
    }
    la::Vector y = lm.p.apply_left(scaled);
    y -= scaled;
    y /= q;
    y += v;
    return y;
  };
  la::Vector term = pi;
  double weight = std::exp(-qt);
  double acc = weight * term.sum();
  double cumulative = weight;
  const std::size_t max_iter =
      static_cast<std::size_t>(qt + 12.0 * std::sqrt(qt) + 64.0);
  for (std::size_t n = 1; n <= max_iter; ++n) {
    term = step(term);
    weight *= qt / static_cast<double>(n);
    acc += weight * term.sum();
    cumulative += weight;
    if ((1.0 - cumulative) * term.norm_inf() < 1e-14 &&
        static_cast<double>(n) > qt) {
      break;
    }
  }
  return std::min(1.0, std::max(0.0, acc));
}

la::Vector TransientSolver::initial_vector() const {
  return space_.initial_vector(k_);
}

DepartureTimeline TransientSolver::solve(std::size_t tasks) const {
  if (tasks == 0) {
    throw std::invalid_argument("TransientSolver::solve: need >= 1 task");
  }
  const obs::ObsSpan span("solver/solve");
  DepartureTimeline tl;
  tl.workstations = k_;
  tl.tasks = tasks;
  tl.epoch_times.reserve(tasks);
  tl.population.reserve(tasks);

  const std::size_t top = std::min(tasks, k_);
  la::Vector pi = space_.initial_vector(top);

  // Saturated phase: population pinned at `top`, departures replaced from the
  // queue.  Runs for (tasks - top + 1) epochs; after each but the last, the
  // departure (Y) is followed by a replacement (R).
  const std::size_t saturated_epochs = tasks - top + 1;
  for (std::size_t i = 0; i < saturated_epochs; ++i) {
    const obs::ObsSpan epoch_span("solver/epoch");
    obs::counter_add(obs::Counter::kEpochRecursions);
    tl.epoch_times.push_back(mean_epoch_time(top, pi));
    tl.population.push_back(top);
    if (i + 1 < saturated_epochs) {
      pi = apply_r(top, apply_y(top, pi));
    }
  }
  // Draining phase: population falls top-1, top-2, ..., 1.
  if (top > 1) {
    pi = apply_y(top, pi);
    for (std::size_t k = top - 1; k >= 1; --k) {
      const obs::ObsSpan epoch_span("solver/epoch");
      obs::counter_add(obs::Counter::kEpochRecursions);
      tl.epoch_times.push_back(mean_epoch_time(k, pi));
      tl.population.push_back(k);
      if (k > 1) pi = apply_y(k, pi);
    }
  }

  tl.cumulative.resize(tl.epoch_times.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < tl.epoch_times.size(); ++i) {
    acc += tl.epoch_times[i];
    tl.cumulative[i] = acc;
  }
  tl.makespan = acc;
  return tl;
}

double TransientSolver::makespan(std::size_t tasks) const {
  return solve(tasks).makespan;
}

MakespanMoments TransientSolver::makespan_moments(std::size_t tasks) const {
  if (tasks == 0) {
    throw std::invalid_argument("makespan_moments: need >= 1 task");
  }
  const obs::ObsSpan span("solver/makespan_moments");
  // The whole run is one absorbing chain whose blocks are the saturated
  // segments (level K, one per admission remaining) followed by the
  // draining levels K-1..1.  With B the full service-rate matrix,
  //   m1 = B^-1 eps   (remaining mean time per state)
  //   m2 = 2 B^-2 eps = 2 B^-1 m1,
  // and the block bidiagonal structure lets both be back-substituted one
  // block at a time using the cached per-level factorizations:
  //   m1_b = tau_b + (I-P)^-1 Q [R] m1_next
  //   x_b  = V_b m1_b + (I-P)^-1 Q [R] x_next,   m2 = 2 x.
  const std::size_t top = std::min(tasks, k_);

  // Column-oriented helpers.
  const auto v_apply = [&](std::size_t k, const la::Vector& m) {
    const net::LevelMatrices& lm = space_.level(k);
    la::Vector rhs = m;
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
    return solve_right(k, rhs);
  };
  const auto flow_apply = [&](std::size_t k, const la::Vector& next) {
    // (I - P_k)^-1 Q_k next  (next lives one level down)
    return solve_right(k, space_.level(k).q.apply(next));
  };

  // Draining levels 1..top-1 (remaining time after the queue has emptied).
  la::Vector m1_next(1, 0.0);  // level 0: absorbed, zero remaining time
  la::Vector x_next(1, 0.0);
  for (std::size_t k = 1; k < top; ++k) {
    la::Vector m1 = tau(k) + flow_apply(k, m1_next);
    la::Vector x = v_apply(k, m1) + flow_apply(k, x_next);
    m1_next = std::move(m1);
    x_next = std::move(x);
  }

  // Saturated segments: j admissions remaining, j = 0 .. tasks - top.
  const net::LevelMatrices& lt = space_.level(top);
  la::Vector m1 = tau(top) + flow_apply(top, m1_next);
  la::Vector x = v_apply(top, m1) + flow_apply(top, x_next);
  for (std::size_t j = 1; j <= tasks - top; ++j) {
    const la::Vector rm1 = lt.r.apply(m1);   // R_K m1 (column action)
    const la::Vector rx = lt.r.apply(x);
    la::Vector m1_new = tau(top) + solve_right(top, lt.q.apply(rm1));
    la::Vector x_new = v_apply(top, m1_new) + solve_right(top, lt.q.apply(rx));
    m1 = std::move(m1_new);
    x = std::move(x_new);
  }

  const la::Vector p0 = space_.initial_vector(top);
  MakespanMoments mm;
  mm.mean = la::dot(p0, m1);
  mm.second_moment = 2.0 * la::dot(p0, x);
  mm.variance = mm.second_moment - mm.mean * mm.mean;
  mm.std_dev = std::sqrt(std::max(0.0, mm.variance));
  mm.scv = mm.variance / (mm.mean * mm.mean);
  return mm;
}

std::vector<double> TransientSolver::makespan_cdf(
    std::size_t tasks, const std::vector<double>& times) const {
  if (tasks == 0) {
    throw std::invalid_argument("makespan_cdf: need >= 1 task");
  }
  for (double t : times) {
    if (t < 0.0) throw std::invalid_argument("makespan_cdf: negative time");
  }
  if (times.empty()) return {};
  const obs::ObsSpan span("solver/makespan_cdf");
  const std::size_t top = std::min(tasks, k_);

  // Layered blocks: saturated segments with j admissions remaining
  // (j = tasks - top .. 0), then draining levels top-1 .. 1.  Block b's
  // dynamics are its level's (M, P); a departure feeds block b+1 (with the
  // R_top re-entry while saturated); level 1 departures absorb.
  struct Block {
    std::size_t level;
    bool replace;  // departure re-admits a task (saturated, j > 0)
  };
  std::vector<Block> blocks;
  for (std::size_t j = tasks - top; j > 0; --j) blocks.push_back({top, true});
  blocks.push_back({top, false});
  for (std::size_t level = top - 1; level >= 1; --level) {
    blocks.push_back({level, false});
  }

  // Uniformization rate: the fastest event rate across all levels.
  double q = 0.0;
  for (std::size_t level = 1; level <= top; ++level) {
    const net::LevelMatrices& lm = space_.level(level);
    for (std::size_t i = 0; i < lm.event_rates.size(); ++i) {
      q = std::max(q, lm.event_rates[i]);
    }
  }
  q *= 1.0001;

  const double t_max = *std::max_element(times.begin(), times.end());
  const double qt_max = q * t_max;
  const auto n_max = static_cast<std::size_t>(
      qt_max + 12.0 * std::sqrt(qt_max + 1.0) + 64.0);

  // DTMC pass: track per-block row vectors and record the absorbed mass
  // after each uniformized step.
  std::vector<la::Vector> state(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    state[b] = la::Vector(space_.dimension(blocks[b].level), 0.0);
  }
  state[0] = space_.initial_vector(top);
  double absorbed = 0.0;
  std::vector<double> absorbed_after{absorbed};  // a_0
  absorbed_after.reserve(n_max + 1);

  std::vector<la::Vector> next(blocks.size());
  for (std::size_t step = 1; step <= n_max; ++step) {
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const net::LevelMatrices& lm = space_.level(blocks[b].level);
      // v - (v .* M)/q + ((v .* M) P)/q
      la::Vector scaled = state[b];
      for (std::size_t i = 0; i < scaled.size(); ++i) {
        scaled[i] *= lm.event_rates[i] / q;
      }
      la::Vector nb = lm.p.apply_left(scaled);
      nb -= scaled;
      nb += state[b];
      // departures leave the block
      la::Vector out = lm.q.apply_left(scaled);
      if (b + 1 < blocks.size()) {
        la::Vector& target = next[b + 1];
        if (blocks[b].replace) {
          // re-admission: back up to level `top`
          la::Vector in = space_.level(top).r.apply_left(out);
          if (target.size() == 0) target = la::Vector(in.size(), 0.0);
          target += in;
        } else {
          if (target.size() == 0) target = la::Vector(out.size(), 0.0);
          target += out;
        }
      } else {
        absorbed += out.sum();
      }
      if (next[b].size() == 0) next[b] = la::Vector(nb.size(), 0.0);
      next[b] += nb;
    }
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      state[b] = std::move(next[b]);
      next[b] = la::Vector();
    }
    absorbed_after.push_back(absorbed);
    if (1.0 - absorbed < 1e-13) {
      // effectively done: later steps keep the same absorbed mass
      break;
    }
  }

  // Evaluate each time point: F(t) = sum_n Poisson(n; qt) a_n, with the
  // tail beyond the recorded steps charged at the final absorbed level.
  // The Poisson weights are expanded outward from the mode in log space —
  // exp(-qt) underflows for qt beyond ~745, so the naive recurrence from
  // n = 0 silently drops all the mass for long horizons.
  const auto a_of = [&](std::size_t n) {
    return n < absorbed_after.size() ? absorbed_after[n]
                                     : absorbed_after.back();
  };
  std::vector<double> result(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double t = times[ti];
    if (t == 0.0) {
      result[ti] = 0.0;
      continue;
    }
    const double qt = q * t;
    const auto mode = static_cast<std::size_t>(qt);
    const double log_w_mode = static_cast<double>(mode) * std::log(qt) - qt -
                              std::lgamma(static_cast<double>(mode) + 1.0);
    double total = 0.0;
    double mass = 0.0;
    // Upward from the mode.
    double w = std::exp(log_w_mode);
    for (std::size_t n = mode;; ++n) {
      total += w * a_of(n);
      mass += w;
      w *= qt / static_cast<double>(n + 1);
      if (w < 1e-17 && static_cast<double>(n) > qt) break;
    }
    // Downward from the mode.
    w = std::exp(log_w_mode);
    for (std::size_t n = mode; n-- > 0;) {
      w *= static_cast<double>(n + 1) / qt;
      total += w * a_of(n);
      mass += w;
      if (w < 1e-17) break;
    }
    // Residual Poisson mass lies in the far upper tail where a_n has
    // flattened at its final level.
    total += std::max(0.0, 1.0 - mass) * absorbed_after.back();
    result[ti] = std::min(1.0, std::max(0.0, total));
  }
  return result;
}

double TransientSolver::makespan_cdf(std::size_t tasks, double time) const {
  return makespan_cdf(tasks, std::vector<double>{time})[0];
}

std::vector<TransientSolver::StationOccupancy>
TransientSolver::station_occupancy(std::size_t k, const la::Vector& pi) const {
  if (k == 0 || k > k_) {
    throw std::out_of_range("station_occupancy: bad level");
  }
  if (pi.size() != space_.dimension(k)) {
    throw std::invalid_argument("station_occupancy: size mismatch");
  }
  const std::size_t s = space_.num_stations();
  std::vector<StationOccupancy> occ(s);
  const auto& states = space_.states(k);
  for (std::size_t is = 0; is < states.size(); ++is) {
    const double w = pi[is];
    if (w == 0.0) continue;
    for (std::size_t j = 0; j < s; ++j) {
      const net::StationModel& model = space_.model(j);
      const auto [n, local] = model.decode(states[is][j]);
      occ[j].mean_customers += w * static_cast<double>(n);
      const auto counts = model.phase_counts(n, local);
      std::size_t busy = 0;
      for (std::size_t c : counts) busy += c;
      occ[j].mean_in_service += w * static_cast<double>(busy);
    }
  }
  for (std::size_t j = 0; j < s; ++j) {
    occ[j].utilization =
        occ[j].mean_in_service /
        static_cast<double>(space_.spec().station(j).multiplicity);
  }
  return occ;
}

TransientSolver::DepartureCorrelation TransientSolver::steady_state_lag1()
    const {
  // With U_ij = E[T1 ; next-epoch start = j] = (V Y R)_ij (from
  // int t e^{-Bt} dt = B^-2 and Y = V M Q), the joint mean is
  // E[T1 T2] = p_ss V Y R tau'.  All factors act column-wise on tau'.
  const SteadyStateResult& ss = steady_state();
  const net::LevelMatrices& lm = space_.level(k_);
  // z = R tau'
  const la::Vector z = lm.r.apply(tau(k_));
  // w = Y z = (I - P)^-1 Q z
  const la::Vector w = solve_right(k_, lm.q.apply(z));
  // u = V w = (I - P)^-1 M^-1 w
  la::Vector rhs = w;
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
  const la::Vector u = solve_right(k_, rhs);

  DepartureCorrelation dc;
  const double joint = la::dot(ss.distribution, u);
  dc.covariance = joint - ss.interdeparture * ss.interdeparture;
  const double variance =
      ss.interdeparture_scv * ss.interdeparture * ss.interdeparture;
  dc.correlation = variance > 0.0 ? dc.covariance / variance : 0.0;
  return dc;
}

const la::Vector& TransientSolver::time_stationary_distribution() const {
  if (time_stationary_) return *time_stationary_;
  const obs::ObsSpan span("solver/time_stationary");
  // The saturated CTMC has off-diagonal rate matrix M (P + Q R).  With
  // z = pi .* M, stationarity reads z (P + Q R) = z: find z by (damped)
  // power iteration, then unscale by the rates and normalize.
  const net::LevelMatrices& lm = space_.level(k_);
  const auto apply_jump = [&](const la::Vector& z) {
    la::Vector next = lm.p.apply_left(z);
    next += lm.r.apply_left(lm.q.apply_left(z));
    next += z;
    next *= 0.5;
    return next;
  };
  const la::IterativeResult res = la::power_iteration_left(
      apply_jump, initial_vector(), opts_.tolerance, opts_.max_power_iterations);
  if (!res.converged) {
    throw std::runtime_error(
        "time_stationary_distribution: power iteration failed to converge");
  }
  la::Vector pi = res.x;
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] /= lm.event_rates[i];
  pi /= pi.sum();
  time_stationary_ = std::move(pi);
  return *time_stationary_;
}

const SteadyStateResult& TransientSolver::steady_state() const {
  if (steady_) return *steady_;
  const obs::ObsSpan span("solver/steady_state");
  // Fixed point of T = Y_K R_K, damped to (T + I)/2 to kill any period-2
  // component of the power iteration.
  const auto apply_t = [this](const la::Vector& pi) {
    la::Vector next = apply_r(k_, apply_y(k_, pi));
    next += pi;
    next *= 0.5;
    return next;
  };
  const la::Vector start = initial_vector();
  const la::IterativeResult res = la::power_iteration_left(
      apply_t, start, opts_.tolerance, opts_.max_power_iterations);
  SteadyStateResult ss;
  ss.distribution = res.x;
  if constexpr (check::kEnabled) {
    if (res.converged) {
      // The steady-state law: p_ss Y_K R_K = p_ss on the simplex.  The
      // damped map halves the residual, so allow a small multiple of the
      // power-iteration tolerance.
      check::check_probability_vector(ss.distribution, "p_ss", k_,
                                      1e3 * opts_.tolerance);
      const la::Vector next = apply_r(k_, apply_y(k_, ss.distribution));
      check::check_fixed_point(ss.distribution, next, "p_ss Y_K R_K", k_,
                               1e3 * opts_.tolerance);
    }
  }
  ss.interdeparture = mean_epoch_time(k_, ss.distribution);
  ss.throughput = 1.0 / ss.interdeparture;
  const double m2 = epoch_second_moment(k_, ss.distribution);
  ss.interdeparture_scv =
      (m2 - ss.interdeparture * ss.interdeparture) /
      (ss.interdeparture * ss.interdeparture);
  ss.iterations = res.iterations;
  ss.converged = res.converged;
  steady_ = std::move(ss);
  return *steady_;
}

}  // namespace finwork::core
