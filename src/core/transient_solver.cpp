#include "core/transient_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/invariants.h"
#include "linalg/iterative.h"
#include "linalg/parallel_blas.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace finwork::core {

TransientSolver::TransientSolver(const net::NetworkSpec& spec,
                                 std::size_t workstations,
                                 SolverOptions options)
    : space_(spec, workstations), k_(workstations), opts_(options) {
  // Fail fast on networks whose first-passage times diverge.
  spec.validate_connectivity();
  levels_.resize(k_ + 1);
  if (opts_.prebuild_levels && !par::ThreadPool::on_worker_thread()) {
    const obs::ObsSpan span("solver/prebuild_levels");
    par::ThreadPool& pool = par::ThreadPool::global();
    try {
      // Levels big enough to parallelise their own assembly build inline,
      // largest first, so the chunked triplet fan-out owns the pool; the
      // small levels overlap with them as pool tasks.
      constexpr std::size_t kInlineDim = 4096;
      std::vector<std::size_t> inline_levels;
      prebuild_.reserve(k_);
      for (std::size_t k = 1; k <= k_; ++k) {
        if (space_.dimension(k) < kInlineDim) {
          prebuild_.push_back(
              pool.submit([this, k] { (void)space_.level(k); }));
        } else {
          inline_levels.push_back(k);
        }
      }
      for (auto it = inline_levels.rbegin(); it != inline_levels.rend();
           ++it) {
        (void)space_.level(*it);
      }
    } catch (...) {
      // The pool tasks reference this object: never let the exception leave
      // the constructor while they are still in flight.
      for (auto& f : prebuild_) {
        // NOLINTNEXTLINE(bugprone-empty-catch)
        try {
          f.get();
        } catch (...) {
        }
      }
      throw;
    }
  }
}

TransientSolver::~TransientSolver() {
  for (auto& f : prebuild_) {
    if (!f.valid()) continue;
    // A failed prebuild leaves the level's once-flag unset, so the error
    // resurfaces on first real use; here it only needs to be drained.
    // NOLINTNEXTLINE(bugprone-empty-catch)
    try {
      f.get();
    } catch (...) {
    }
  }
}

const TransientSolver::Level& TransientSolver::prepared_level(
    std::size_t k) const {
  if (k == 0 || k > k_) throw std::out_of_range("TransientSolver: bad level");
  Level& lvl = levels_[k];
  if (lvl.prepared) {
    obs::counter_add(obs::Counter::kLuReuseHits);
    return lvl;
  }
  const obs::ObsSpan span("solver/prepare_level");
  const net::LevelMatrices& lm = space_.level(k);
  const std::size_t d = space_.dimension(k);
  if (d <= opts_.dense_threshold) {
    const obs::ObsSpan factor_span("solver/factorize_level");
    la::Matrix a = lm.p.to_dense();
    a *= -1.0;
    for (std::size_t i = 0; i < d; ++i) a(i, i) += 1.0;
    lvl.lu.emplace(a);
  }
  // tau'_k = (I - P_k)^-1 (M_k^-1 eps)
  la::Vector rhs(d);
  for (std::size_t i = 0; i < d; ++i) rhs[i] = 1.0 / lm.event_rates[i];
  lvl.prepared = true;  // set before solve_right so it can use lvl.lu
  lvl.tau = solve_right(k, rhs);
  if constexpr (check::kEnabled) {
    // tau'_k = V_k eps: mean remaining epoch time per state — finite and
    // positive, or the level's (I - P_k) solve went off the rails.
    check::check_finite(lvl.tau, "tau'_k", k);
    check::check_positive_rates(lvl.tau, "tau'_k", k);
  }
  return lvl;
}

const la::Matrix* TransientSolver::composite_operator(
    std::size_t k, std::size_t expected_epochs) const {
  if (!opts_.cache_composite) return nullptr;
  const Level& lvl = prepared_level(k);
  if (lvl.composite) return &*lvl.composite;
  if (!lvl.lu) return nullptr;  // iterative level: no factorization to reuse
  const std::size_t d = space_.dimension(k);
  // Building T_k costs d triangular-solve pairs — the same as d epochs of
  // the uncached recursion — so only pay it when the run amortises it.
  if (expected_epochs < std::max(d, opts_.composite_min_epochs)) {
    return nullptr;
  }
  const obs::ObsSpan span("solver/build_composite");
  const net::LevelMatrices& lm = space_.level(k);
  // Column c of Q_k R_k is Q_k (R_k e_c): two sparse column actions.
  la::Matrix b(d, d, 0.0);
  par::parallel_for(
      par::ThreadPool::global(), 0, d,
      [&](std::size_t c) {
        const la::Vector col = lm.q.apply(lm.r.apply(la::unit(d, c)));
        for (std::size_t r = 0; r < d; ++r) b(r, c) = col[r];
      },
      /*grain=*/16);
  Level& mut = levels_[k];
  mut.composite.emplace(lvl.lu->solve_many(b));
  return &*mut.composite;
}

la::Vector TransientSolver::solve_left(std::size_t k,
                                       const la::Vector& pi) const {
  const Level& lvl = prepared_level(k);
  if (lvl.lu) {
    obs::counter_add(obs::Counter::kDenseSolves);
    return lvl.lu->solve_left(pi);
  }
  obs::counter_add(obs::Counter::kIterativeSolves);
  const net::LevelMatrices& lm = space_.level(k);
  par::ThreadPool& pool = par::ThreadPool::global();
  const auto apply_p = [&lm, &pool](const la::Vector& x) {
    return lm.p.apply_left_parallel(x, pool);
  };
  la::IterativeResult res = la::neumann_solve_left(
      apply_p, pi, opts_.tolerance, opts_.max_neumann_iterations);
  if (res.converged) return std::move(res.x);
  const auto apply_a = [&lm, &pool](const la::Vector& x) {
    la::Vector y = x;
    y -= lm.p.apply_left_parallel(x, pool);
    return y;
  };
  res = la::bicgstab_left(apply_a, pi, opts_.tolerance,
                          opts_.max_bicgstab_iterations);
  if (!res.converged) {
    throw std::runtime_error(
        "TransientSolver: iterative solve failed to converge at level " +
        std::to_string(k));
  }
  return std::move(res.x);
}

la::Vector TransientSolver::solve_right(std::size_t k,
                                        const la::Vector& b) const {
  const Level& lvl = prepared_level(k);
  if (lvl.lu) {
    obs::counter_add(obs::Counter::kDenseSolves);
    return lvl.lu->solve(b);
  }
  obs::counter_add(obs::Counter::kIterativeSolves);
  const net::LevelMatrices& lm = space_.level(k);
  par::ThreadPool& pool = par::ThreadPool::global();
  // Column solve: (I - P) x = b via the Neumann series x = sum P^n b.
  la::Vector x = b;
  la::Vector term = b;
  for (std::size_t n = 1; n <= opts_.max_neumann_iterations; ++n) {
    term = lm.p.apply_parallel(term, pool);
    x += term;
    if (term.norm_inf() < opts_.tolerance) {
      obs::counter_add(obs::Counter::kNeumannIterations, n);
      return x;
    }
  }
  obs::counter_add(obs::Counter::kNeumannIterations,
                   opts_.max_neumann_iterations);
  // Fall back to BiCGSTAB on the transposed system: (I - P)^T y = ... not
  // needed; run BiCGSTAB with the column action expressed as a row action on
  // the transpose.  CSR supports both actions, so wire it directly.
  const auto apply_at = [&lm, &pool](const la::Vector& v) {
    la::Vector y = v;
    y -= lm.p.apply_parallel(v, pool);
    return y;
  };
  la::IterativeResult res = la::bicgstab_left(apply_at, b, opts_.tolerance,
                                              opts_.max_bicgstab_iterations);
  if (!res.converged) {
    throw std::runtime_error(
        "TransientSolver: column solve failed to converge at level " +
        std::to_string(k));
  }
  return std::move(res.x);
}

const la::Vector& TransientSolver::tau(std::size_t k) const {
  return prepared_level(k).tau;
}

la::Vector TransientSolver::apply_y(std::size_t k, const la::Vector& pi) const {
  const net::LevelMatrices& lm = space_.level(k);
  return lm.q.apply_left_parallel(solve_left(k, pi),
                                  par::ThreadPool::global());
}

la::Vector TransientSolver::apply_r(std::size_t k, const la::Vector& pi) const {
  return space_.level(k).r.apply_left_parallel(pi, par::ThreadPool::global());
}

double TransientSolver::mean_epoch_time(std::size_t k,
                                        const la::Vector& pi) const {
  return la::dot(pi, tau(k));
}

double TransientSolver::epoch_second_moment(std::size_t k,
                                            const la::Vector& pi) const {
  // E[T^2 | pi] = 2 pi V_k^2 eps = 2 pi V_k tau'_k; one extra column solve.
  const net::LevelMatrices& lm = space_.level(k);
  la::Vector rhs = tau(k);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
  return 2.0 * la::dot(pi, solve_right(k, rhs));
}

double TransientSolver::epoch_reliability(std::size_t k, const la::Vector& pi,
                                          double t) const {
  if (t < 0.0) {
    throw std::invalid_argument("epoch_reliability: t must be >= 0");
  }
  if (t == 0.0) return pi.sum();
  // Uniformization of the level generator A = -B_k = -M_k (I - P_k):
  // with q >= max rate, Pu = I + A/q acts on a row vector v as
  //   v Pu = v - (v .* M)/q + ((v .* M) P)/q.
  const net::LevelMatrices& lm = space_.level(k);
  const double q = lm.max_event_rate * 1.0001;
  const double qt = q * t;
  par::ThreadPool& pool = par::ThreadPool::global();
  auto step = [&](const la::Vector& v) {
    la::Vector scaled = v;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      scaled[i] *= lm.event_rates[i];
    }
    la::Vector y = lm.p.apply_left_parallel(scaled, pool);
    y -= scaled;
    y /= q;
    y += v;
    return y;
  };
  la::Vector term = pi;
  double weight = std::exp(-qt);
  double acc = weight * term.sum();
  double cumulative = weight;
  const std::size_t max_iter =
      static_cast<std::size_t>(qt + 12.0 * std::sqrt(qt) + 64.0);
  for (std::size_t n = 1; n <= max_iter; ++n) {
    term = step(term);
    weight *= qt / static_cast<double>(n);
    acc += weight * term.sum();
    cumulative += weight;
    if ((1.0 - cumulative) * term.norm_inf() < 1e-14 &&
        static_cast<double>(n) > qt) {
      break;
    }
  }
  return std::min(1.0, std::max(0.0, acc));
}

la::Vector TransientSolver::initial_vector() const {
  return space_.initial_vector(k_);
}

DepartureTimeline TransientSolver::solve(std::size_t tasks) const {
  if (tasks == 0) {
    throw std::invalid_argument("TransientSolver::solve: need >= 1 task");
  }
  const obs::ObsSpan span("solver/solve");
  DepartureTimeline tl;
  tl.workstations = k_;
  tl.tasks = tasks;
  tl.epoch_times.reserve(tasks);
  tl.population.reserve(tasks);

  const std::size_t top = std::min(tasks, k_);
  la::Vector pi = space_.initial_vector(top);

  // Saturated phase: population pinned at `top`, departures replaced from the
  // queue.  Runs for (tasks - top + 1) epochs; after each but the last, the
  // departure (Y) is followed by a replacement (R).
  const std::size_t saturated_epochs = tasks - top + 1;
  const la::Matrix* composite =
      saturated_epochs > 1 ? composite_operator(top, saturated_epochs - 1)
                           : nullptr;
  par::ThreadPool& pool = par::ThreadPool::global();
  const net::LevelMatrices& lt = space_.level(top);
  // Iterative-path warm start: w = pi (I - P_top)^-1 is carried across
  // epochs and updated by solving for the increment only.  The iterates mix
  // geometrically, so the increment — and with it the Neumann work of each
  // epoch — shrinks toward zero as the run approaches steady state.
  la::Vector w;
  la::Vector last_solved;  // the pi that produced w
  const auto advance = [&](const la::Vector& cur) {
    if (composite != nullptr) {
      return la::multiply_left_parallel(cur, *composite, pool);
    }
    if (w.empty()) {
      w = solve_left(top, cur);
    } else {
      la::Vector rhs = cur;
      rhs -= last_solved;
      w += solve_left(top, rhs);
    }
    last_solved = cur;
    return apply_r(top, lt.q.apply_left_parallel(w, pool));
  };
  la::Vector prev;
  for (std::size_t i = 0; i < saturated_epochs; ++i) {
    const obs::ObsSpan epoch_span("solver/epoch");
    obs::counter_add(obs::Counter::kEpochRecursions);
    tl.epoch_times.push_back(mean_epoch_time(top, pi));
    tl.population.push_back(top);
    if (i + 1 == saturated_epochs) break;
    prev = pi;
    pi = advance(pi);
    if (opts_.fast_forward) {
      double delta = 0.0;
      for (std::size_t j = 0; j < pi.size(); ++j) {
        delta = std::max(delta, std::abs(pi[j] - prev[j]));
      }
      if (delta < opts_.fast_forward_tolerance) {
        // Mixed: every remaining saturated epoch departs from (numerically)
        // this same distribution, so close them all at its epoch time and
        // carry pi straight into the draining phase.
        const double t_ss = mean_epoch_time(top, pi);
        const std::size_t remaining = saturated_epochs - i - 1;
        tl.epoch_times.insert(tl.epoch_times.end(), remaining, t_ss);
        tl.population.insert(tl.population.end(), remaining, top);
        obs::counter_add(obs::Counter::kFastForwardActivations);
        obs::counter_add(obs::Counter::kEpochsSkipped, remaining);
        break;
      }
    }
  }
  // Draining phase: population falls top-1, top-2, ..., 1.
  if (top > 1) {
    if (!w.empty()) {
      // Reuse the saturated resolvent: pi differs from last_solved by one
      // increment, so the final level-top solve is an increment solve too.
      la::Vector rhs = pi;
      rhs -= last_solved;
      w += solve_left(top, rhs);
      pi = lt.q.apply_left_parallel(w, pool);
    } else {
      pi = apply_y(top, pi);
    }
    for (std::size_t k = top - 1; k >= 1; --k) {
      const obs::ObsSpan epoch_span("solver/epoch");
      obs::counter_add(obs::Counter::kEpochRecursions);
      tl.epoch_times.push_back(mean_epoch_time(k, pi));
      tl.population.push_back(k);
      if (k > 1) pi = apply_y(k, pi);
    }
  }

  tl.cumulative.resize(tl.epoch_times.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < tl.epoch_times.size(); ++i) {
    acc += tl.epoch_times[i];
    tl.cumulative[i] = acc;
  }
  tl.makespan = acc;
  return tl;
}

double TransientSolver::makespan(std::size_t tasks) const {
  return solve(tasks).makespan;
}

MakespanMoments TransientSolver::makespan_moments(std::size_t tasks) const {
  if (tasks == 0) {
    throw std::invalid_argument("makespan_moments: need >= 1 task");
  }
  const obs::ObsSpan span("solver/makespan_moments");
  // The whole run is one absorbing chain whose blocks are the saturated
  // segments (level K, one per admission remaining) followed by the
  // draining levels K-1..1.  With B the full service-rate matrix,
  //   m1 = B^-1 eps   (remaining mean time per state)
  //   m2 = 2 B^-2 eps = 2 B^-1 m1,
  // and the block bidiagonal structure lets both be back-substituted one
  // block at a time using the cached per-level factorizations:
  //   m1_b = tau_b + (I-P)^-1 Q [R] m1_next
  //   x_b  = V_b m1_b + (I-P)^-1 Q [R] x_next,   m2 = 2 x.
  const std::size_t top = std::min(tasks, k_);

  // Column-oriented helpers.
  const auto v_apply = [&](std::size_t k, const la::Vector& m) {
    const net::LevelMatrices& lm = space_.level(k);
    la::Vector rhs = m;
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
    return solve_right(k, rhs);
  };
  const auto flow_apply = [&](std::size_t k, const la::Vector& next) {
    // (I - P_k)^-1 Q_k next  (next lives one level down)
    return solve_right(k, space_.level(k).q.apply(next));
  };

  // Draining levels 1..top-1 (remaining time after the queue has emptied).
  la::Vector m1_next(1, 0.0);  // level 0: absorbed, zero remaining time
  la::Vector x_next(1, 0.0);
  for (std::size_t k = 1; k < top; ++k) {
    la::Vector m1 = tau(k) + flow_apply(k, m1_next);
    la::Vector x = v_apply(k, m1) + flow_apply(k, x_next);
    m1_next = std::move(m1);
    x_next = std::move(x);
  }

  // Saturated segments: j admissions remaining, j = 0 .. tasks - top.
  const net::LevelMatrices& lt = space_.level(top);
  const std::size_t total_j = tasks - top;
  const la::Matrix* composite =
      total_j > 0 ? composite_operator(top, total_j) : nullptr;
  par::ThreadPool& pool = par::ThreadPool::global();
  // One admission step of both recursions is the column action of
  // T = (I - P)^-1 Q R; use the cached dense composite when available.
  const auto t_apply = [&](const la::Vector& v) {
    if (composite != nullptr) return la::multiply_parallel(*composite, v, pool);
    return solve_right(top, lt.q.apply(lt.r.apply(v)));
  };
  la::Vector m1 = tau(top) + flow_apply(top, m1_next);
  la::Vector x = v_apply(top, m1) + flow_apply(top, x_next);
  la::Vector d_prev;  // previous first difference of m1
  la::Vector e_prev;  // previous first difference of x
  la::Vector f_prev;  // previous second difference of x
  for (std::size_t j = 1; j <= total_j; ++j) {
    la::Vector m1_new = tau(top) + t_apply(m1);
    la::Vector x_new = v_apply(top, m1_new) + t_apply(x);
    la::Vector d = m1_new;
    d -= m1;
    la::Vector e = x_new;
    e -= x;
    m1 = std::move(m1_new);
    x = std::move(x_new);

    if (opts_.fast_forward && j >= 3) {
      // Past mixing, m1 grows by a constant vector per admission
      // (d_j -> t_ss eps) and the x increments become arithmetic
      // (e_{j+i} ~ e_j + i f): once both the first difference of d and the
      // second difference of x have stabilised, close the remaining
      // admissions in closed form:
      //   m1 += R d,   x += R e + R(R+1)/2 f,   R = total_j - j.
      la::Vector dd = d;
      dd -= d_prev;
      la::Vector f = e;
      f -= e_prev;
      la::Vector ff = f;
      ff -= f_prev;
      const double tol = opts_.fast_forward_moment_tolerance;
      // f is a second difference of near-cancelling terms; its floating
      // noise floor is ~eps ||x||, below which no threshold can bite.
      const double noise_floor = 4.0 * 2.220446049250313e-16 * x.norm_inf();
      if (dd.norm_inf() <= tol * d.norm_inf() &&
          ff.norm_inf() <= tol * f.norm_inf() + noise_floor) {
        const auto remaining = static_cast<double>(total_j - j);
        la::axpy(remaining, d, m1);
        la::axpy(remaining, e, x);
        la::axpy(0.5 * remaining * (remaining + 1.0), f, x);
        obs::counter_add(obs::Counter::kFastForwardActivations);
        obs::counter_add(obs::Counter::kEpochsSkipped, total_j - j);
        break;
      }
      f_prev = std::move(f);
    } else if (opts_.fast_forward && j >= 2) {
      la::Vector f = e;
      f -= e_prev;
      f_prev = std::move(f);
    }
    d_prev = std::move(d);
    e_prev = std::move(e);
  }

  const la::Vector p0 = space_.initial_vector(top);
  MakespanMoments mm;
  mm.mean = la::dot(p0, m1);
  mm.second_moment = 2.0 * la::dot(p0, x);
  mm.variance = mm.second_moment - mm.mean * mm.mean;
  mm.std_dev = std::sqrt(std::max(0.0, mm.variance));
  mm.scv = mm.variance / (mm.mean * mm.mean);
  return mm;
}

std::vector<double> TransientSolver::makespan_cdf(
    std::size_t tasks, const std::vector<double>& times) const {
  if (tasks == 0) {
    throw std::invalid_argument("makespan_cdf: need >= 1 task");
  }
  for (double t : times) {
    if (t < 0.0) throw std::invalid_argument("makespan_cdf: negative time");
  }
  if (times.empty()) return {};
  const obs::ObsSpan span("solver/makespan_cdf");
  const std::size_t top = std::min(tasks, k_);

  // Layered blocks: saturated segments with j admissions remaining
  // (j = tasks - top .. 0), then draining levels top-1 .. 1.  Block b's
  // dynamics are its level's (M, P); a departure feeds block b+1 (with the
  // R_top re-entry while saturated); level 1 departures absorb.
  struct Block {
    std::size_t level;
    bool replace;  // departure re-admits a task (saturated, j > 0)
  };
  std::vector<Block> blocks;
  for (std::size_t j = tasks - top; j > 0; --j) blocks.push_back({top, true});
  blocks.push_back({top, false});
  for (std::size_t level = top - 1; level >= 1; --level) {
    blocks.push_back({level, false});
  }

  // Uniformization rate: the fastest event rate across all levels (cached
  // per level at build time).
  double q = 0.0;
  for (std::size_t level = 1; level <= top; ++level) {
    q = std::max(q, space_.level(level).max_event_rate);
  }
  q *= 1.0001;

  const double t_max = *std::max_element(times.begin(), times.end());
  const double qt_max = q * t_max;
  const auto n_max = static_cast<std::size_t>(
      qt_max + 12.0 * std::sqrt(qt_max + 1.0) + 64.0);

  // DTMC pass: track per-block row vectors and record the absorbed mass
  // after each uniformized step.  All working buffers are sized once up
  // front and reused every step.
  const net::LevelMatrices& ltop = space_.level(top);
  par::ThreadPool& pool = par::ThreadPool::global();
  std::vector<la::Vector> state(blocks.size());
  std::vector<la::Vector> next(blocks.size());
  std::vector<la::Vector> scaled(blocks.size());
  std::vector<la::Vector> out(blocks.size());
  std::vector<la::Vector> handoff(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const std::size_t d = space_.dimension(blocks[b].level);
    state[b] = la::Vector(d, 0.0);
    next[b] = la::Vector(d, 0.0);
    scaled[b] = la::Vector(d, 0.0);
    out[b] = la::Vector(space_.dimension(blocks[b].level - 1), 0.0);
    if (blocks[b].replace) {
      handoff[b] = la::Vector(space_.dimension(top), 0.0);
    }
  }
  state[0] = space_.initial_vector(top);
  double absorbed = 0.0;
  std::vector<double> absorbed_after{absorbed};  // a_0
  absorbed_after.reserve(n_max + 1);

  // One uniformized step of block b into its own buffers:
  //   next_b = v - (v .* M)/q + ((v .* M) P)/q,  out_b = (v .* M) Q / q,
  // with the departing mass routed later in a serial merge so the block
  // fan-out stays deterministic.  `inner_parallel` picks pooled CSR
  // actions when the blocks themselves run serially.
  const auto step_block = [&](std::size_t b, bool inner_parallel) {
    const net::LevelMatrices& lm = space_.level(blocks[b].level);
    const la::Vector& st = state[b];
    la::Vector& sc = scaled[b];
    for (std::size_t i = 0; i < sc.size(); ++i) {
      sc[i] = st[i] * lm.event_rates[i] / q;
    }
    la::Vector& nb = next[b];
    if (inner_parallel) {
      nb = lm.p.apply_left_parallel(sc, pool);
    } else {
      nb.fill(0.0);
      lm.p.apply_left_add(sc, nb);
    }
    nb -= sc;
    nb += st;
    la::Vector& ob = out[b];
    if (inner_parallel) {
      ob = lm.q.apply_left_parallel(sc, pool);
    } else {
      ob.fill(0.0);
      lm.q.apply_left_add(sc, ob);
    }
    if (blocks[b].replace) {
      la::Vector& hb = handoff[b];
      if (inner_parallel) {
        hb = ltop.r.apply_left_parallel(ob, pool);
      } else {
        hb.fill(0.0);
        ltop.r.apply_left_add(ob, hb);
      }
    }
  };

  const bool fan_out = blocks.size() >= 4 && pool.size() > 1 &&
                       !par::ThreadPool::on_worker_thread();
  const std::size_t grain =
      std::max<std::size_t>(1, blocks.size() / (4 * pool.size()));
  for (std::size_t step = 1; step <= n_max; ++step) {
    if (fan_out) {
      par::parallel_for(
          pool, 0, blocks.size(), [&](std::size_t b) { step_block(b, false); },
          grain);
    } else {
      for (std::size_t b = 0; b < blocks.size(); ++b) step_block(b, true);
    }
    // Serial merge in ascending block order: identical accumulation order
    // whether or not the blocks fanned out above.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (b + 1 < blocks.size()) {
        next[b + 1] += blocks[b].replace ? handoff[b] : out[b];
      } else {
        absorbed += out[b].sum();
      }
    }
    state.swap(next);
    absorbed_after.push_back(absorbed);
    if (1.0 - absorbed < 1e-13) {
      // effectively done: later steps keep the same absorbed mass
      break;
    }
  }

  // Evaluate each time point: F(t) = sum_n Poisson(n; qt) a_n, with the
  // tail beyond the recorded steps charged at the final absorbed level.
  // The Poisson weights are expanded outward from the mode in log space —
  // exp(-qt) underflows for qt beyond ~745, so the naive recurrence from
  // n = 0 silently drops all the mass for long horizons.
  const auto a_of = [&](std::size_t n) {
    return n < absorbed_after.size() ? absorbed_after[n]
                                     : absorbed_after.back();
  };
  std::vector<double> result(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double t = times[ti];
    if (t == 0.0) {
      result[ti] = 0.0;
      continue;
    }
    const double qt = q * t;
    const auto mode = static_cast<std::size_t>(qt);
    const double log_w_mode = static_cast<double>(mode) * std::log(qt) - qt -
                              std::lgamma(static_cast<double>(mode) + 1.0);
    double total = 0.0;
    double mass = 0.0;
    // Upward from the mode.
    double w = std::exp(log_w_mode);
    for (std::size_t n = mode;; ++n) {
      total += w * a_of(n);
      mass += w;
      w *= qt / static_cast<double>(n + 1);
      if (w < 1e-17 && static_cast<double>(n) > qt) break;
    }
    // Downward from the mode.
    w = std::exp(log_w_mode);
    for (std::size_t n = mode; n-- > 0;) {
      w *= static_cast<double>(n + 1) / qt;
      total += w * a_of(n);
      mass += w;
      if (w < 1e-17) break;
    }
    // Residual Poisson mass lies in the far upper tail where a_n has
    // flattened at its final level.
    total += std::max(0.0, 1.0 - mass) * absorbed_after.back();
    result[ti] = std::min(1.0, std::max(0.0, total));
  }
  return result;
}

double TransientSolver::makespan_cdf(std::size_t tasks, double time) const {
  return makespan_cdf(tasks, std::vector<double>{time})[0];
}

std::vector<TransientSolver::StationOccupancy>
TransientSolver::station_occupancy(std::size_t k, const la::Vector& pi) const {
  if (k == 0 || k > k_) {
    throw std::out_of_range("station_occupancy: bad level");
  }
  if (pi.size() != space_.dimension(k)) {
    throw std::invalid_argument("station_occupancy: size mismatch");
  }
  const std::size_t s = space_.num_stations();
  std::vector<StationOccupancy> occ(s);
  const auto& states = space_.states(k);
  for (std::size_t is = 0; is < states.size(); ++is) {
    const double w = pi[is];
    if (w == 0.0) continue;
    for (std::size_t j = 0; j < s; ++j) {
      const net::StationModel& model = space_.model(j);
      const auto [n, local] = model.decode(states[is][j]);
      occ[j].mean_customers += w * static_cast<double>(n);
      const auto counts = model.phase_counts(n, local);
      std::size_t busy = 0;
      for (std::size_t c : counts) busy += c;
      occ[j].mean_in_service += w * static_cast<double>(busy);
    }
  }
  for (std::size_t j = 0; j < s; ++j) {
    occ[j].utilization =
        occ[j].mean_in_service /
        static_cast<double>(space_.spec().station(j).multiplicity);
  }
  return occ;
}

TransientSolver::DepartureCorrelation TransientSolver::steady_state_lag1()
    const {
  // With U_ij = E[T1 ; next-epoch start = j] = (V Y R)_ij (from
  // int t e^{-Bt} dt = B^-2 and Y = V M Q), the joint mean is
  // E[T1 T2] = p_ss V Y R tau'.  All factors act column-wise on tau'.
  const SteadyStateResult& ss = steady_state();
  const net::LevelMatrices& lm = space_.level(k_);
  // z = R tau'
  const la::Vector z = lm.r.apply(tau(k_));
  // w = Y z = (I - P)^-1 Q z
  const la::Vector w = solve_right(k_, lm.q.apply(z));
  // u = V w = (I - P)^-1 M^-1 w
  la::Vector rhs = w;
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] /= lm.event_rates[i];
  const la::Vector u = solve_right(k_, rhs);

  DepartureCorrelation dc;
  const double joint = la::dot(ss.distribution, u);
  dc.covariance = joint - ss.interdeparture * ss.interdeparture;
  const double variance =
      ss.interdeparture_scv * ss.interdeparture * ss.interdeparture;
  dc.correlation = variance > 0.0 ? dc.covariance / variance : 0.0;
  return dc;
}

const la::Vector& TransientSolver::time_stationary_distribution() const {
  if (time_stationary_) return *time_stationary_;
  const obs::ObsSpan span("solver/time_stationary");
  // The saturated CTMC has off-diagonal rate matrix M (P + Q R).  With
  // z = pi .* M, stationarity reads z (P + Q R) = z: find z by (damped)
  // power iteration, then unscale by the rates and normalize.
  const net::LevelMatrices& lm = space_.level(k_);
  par::ThreadPool& pool = par::ThreadPool::global();
  const auto apply_jump = [&](const la::Vector& z) {
    la::Vector next = lm.p.apply_left_parallel(z, pool);
    next += lm.r.apply_left_parallel(lm.q.apply_left_parallel(z, pool), pool);
    next += z;
    next *= 0.5;
    return next;
  };
  const la::IterativeResult res = la::power_iteration_left(
      apply_jump, initial_vector(), opts_.tolerance, opts_.max_power_iterations);
  if (!res.converged) {
    throw std::runtime_error(
        "time_stationary_distribution: power iteration failed to converge");
  }
  la::Vector pi = res.x;
  for (std::size_t i = 0; i < pi.size(); ++i) pi[i] /= lm.event_rates[i];
  pi /= pi.sum();
  time_stationary_ = std::move(pi);
  return *time_stationary_;
}

const SteadyStateResult& TransientSolver::steady_state() const {
  if (steady_) return *steady_;
  const obs::ObsSpan span("solver/steady_state");
  // Fixed point of T = Y_K R_K, damped to (T + I)/2 to kill any period-2
  // component of the power iteration.
  const auto apply_t = [this](const la::Vector& pi) {
    la::Vector next = apply_r(k_, apply_y(k_, pi));
    next += pi;
    next *= 0.5;
    return next;
  };
  const la::Vector start = initial_vector();
  const la::IterativeResult res = la::power_iteration_left(
      apply_t, start, opts_.tolerance, opts_.max_power_iterations);
  SteadyStateResult ss;
  ss.distribution = res.x;
  if constexpr (check::kEnabled) {
    if (res.converged) {
      // The steady-state law: p_ss Y_K R_K = p_ss on the simplex.  The
      // damped map halves the residual, so allow a small multiple of the
      // power-iteration tolerance.
      check::check_probability_vector(ss.distribution, "p_ss", k_,
                                      1e3 * opts_.tolerance);
      const la::Vector next = apply_r(k_, apply_y(k_, ss.distribution));
      check::check_fixed_point(ss.distribution, next, "p_ss Y_K R_K", k_,
                               1e3 * opts_.tolerance);
    }
  }
  ss.interdeparture = mean_epoch_time(k_, ss.distribution);
  ss.throughput = 1.0 / ss.interdeparture;
  const double m2 = epoch_second_moment(k_, ss.distribution);
  ss.interdeparture_scv =
      (m2 - ss.interdeparture * ss.interdeparture) /
      (ss.interdeparture * ss.interdeparture);
  ss.iterations = res.iterations;
  ss.converged = res.converged;
  steady_ = std::move(ss);
  return *steady_;
}

}  // namespace finwork::core
