#pragma once
// Machine-readable perf records: a small JSON document capturing what a
// benchmark run measured (per-benchmark wall times), what the registry
// counted (counters, gauges, span summary), and which build produced it
// (git SHA, build type, sanitizer, observability flag).  Repeated runs of
// the same harness emit structurally identical documents, so BENCH_*.json
// files are diffable and chartable — the repo's perf trajectory.
//
// Schema ("finwork-perf-record/1"):
//   {
//     "schema": "finwork-perf-record/1",
//     "tool": "perf_solver_scaling",
//     "git_sha": "...", "build_type": "...", "sanitize": "...",
//     "observability": true,
//     "wall_seconds": 1.23,
//     "meta": { ... },                        // free-form string pairs
//     "benchmarks": [ {"name": ..., "real_seconds": ...,
//                      "iterations": ..., "seconds_per_iteration": ...,
//                      "metrics": { ... }} ],
//     "phases":     [ {"name": ..., "count": ..., "total_ms": ...,
//                      "mean_ms": ..., "min_ms": ..., "max_ms": ...} ],
//     "counters":   { "solver.lu_reuse_hits": 12, ... }
//   }

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace finwork::obs {

/// One benchmark (or phase) measurement inside a perf record.
struct PerfEntry {
  std::string name;
  double real_seconds = 0.0;  ///< total measured wall time of the benchmark
  std::uint64_t iterations = 1;
  std::map<std::string, double> metrics;  ///< user counters etc.
};

class PerfRecord {
 public:
  explicit PerfRecord(std::string tool);

  void set_meta(const std::string& key, std::string value);
  void add_entry(PerfEntry entry);

  /// Serialize the record, embedding the current counter values and span
  /// summary from the registry.  `wall_seconds` covers construction to now.
  void write(std::ostream& out) const;
  /// Write to `path`; returns false if the file cannot be opened/written.
  [[nodiscard]] bool write_file(const std::string& path) const;

  /// Build metadata baked in by CMake ("unknown" outside a git checkout).
  [[nodiscard]] static std::string build_git_sha();
  [[nodiscard]] static std::string build_type();
  [[nodiscard]] static std::string build_sanitize();

 private:
  std::string tool_;
  std::map<std::string, std::string> meta_;
  std::vector<PerfEntry> entries_;
  std::uint64_t created_ns_ = 0;
};

}  // namespace finwork::obs
