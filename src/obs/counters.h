#pragma once
// Process-wide counter/gauge registry for the solver hot paths.
//
// Counters are monotonic event tallies (relaxed atomic adds); gauges are
// running maxima (CAS loop).  Both are identified by a fixed enum so the
// hot-path cost is a single indexed atomic operation — no hashing, no
// locks.  The inline wrappers compile to nothing when the observability
// layer is disabled (see obs_config.h); the read-side API stays live so
// exporters and tests always link.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs_config.h"

namespace finwork::obs {

enum class Counter : std::size_t {
  kLuFactorizations,     ///< dense LU factorizations performed (any dim)
  kLuReuseHits,          ///< prepared_level served from the per-level cache
  kDenseSolves,          ///< row/column solves through a cached LU
  kIterativeSolves,      ///< matrix-free solves (Neumann and/or BiCGSTAB)
  kNeumannIterations,    ///< total Neumann-series terms applied
  kBicgstabIterations,   ///< total BiCGSTAB iterations
  kGmresIterations,      ///< total GMRES operator applications
  kPowerIterations,      ///< total power-iteration steps
  kEpochRecursions,      ///< Y_k / R_k epoch steps taken by solve()
  kFastForwardActivations,  ///< saturated loops closed analytically
  kEpochsSkipped,        ///< epochs closed by fast-forward instead of applied
  kParallelSpmvChunks,   ///< row panels dispatched by parallel CSR actions
  kMultiRhsSolves,       ///< multi-RHS LU solves (solve_many calls)
  kLevelsBuilt,          ///< state-space level matrix assemblies
  kStatesEnumerated,     ///< states enumerated across all levels
  kKronProducts,         ///< dense Kronecker products formed
  kPoolTasksExecuted,    ///< ThreadPool tasks run to completion
  kPoolTaskWaitNs,       ///< total enqueue-to-dequeue latency (ns)
  kSimReplications,      ///< simulator single-run replications
  kInvariantChecks,      ///< invariant checker entries
  kInvariantViolations,  ///< invariant violations raised
  kTraceEventsDropped,   ///< spans discarded by a full thread buffer
  kModelCacheHits,       ///< ModelCache lookups served by an existing model
  kModelCacheMisses,     ///< ModelCache lookups that built a new model
  kModelCacheEvictions,  ///< models evicted by the LRU capacity bound
  kGridPointsPerPass,    ///< N-grid points harvested by single-pass sweeps
  kFallbackActivations,  ///< fallback-ladder stages entered after a failure
  kRefinementIters,      ///< iterative-refinement correction steps applied
  kConditionEstimates,   ///< condition estimates computed at factorization
  kCount
};

enum class Gauge : std::size_t {
  kMaxLevelDimension,  ///< largest state-space dimension D(k) assembled
  kMaxQueueDepth,      ///< deepest ThreadPool backlog observed
  kCount
};

/// Stable dotted name, e.g. "solver.lu_reuse_hits".
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
[[nodiscard]] std::string_view gauge_name(Gauge g) noexcept;

namespace detail {
void counter_add_impl(Counter c, std::uint64_t v) noexcept;
void gauge_raise_impl(Gauge g, std::uint64_t v) noexcept;
}  // namespace detail

/// Bump `c` by `v`.  No-op (and zero code) when the layer is disabled.
inline void counter_add(Counter c, std::uint64_t v = 1) noexcept {
  if constexpr (kEnabled) detail::counter_add_impl(c, v);
}

/// Raise gauge `g` to at least `v` (running maximum since the last reset).
inline void gauge_raise(Gauge g, std::uint64_t v) noexcept {
  if constexpr (kEnabled) detail::gauge_raise_impl(g, v);
}

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

/// Current value of one counter/gauge.
[[nodiscard]] std::uint64_t counter_value(Counter c) noexcept;
[[nodiscard]] std::uint64_t gauge_value(Gauge g) noexcept;

/// Every counter, then every gauge, in declaration order (zeros included).
[[nodiscard]] std::vector<CounterSnapshot> counters_snapshot();

/// Zero every counter and gauge (tests and the CLI between runs).
void counters_reset() noexcept;

}  // namespace finwork::obs
