#include "obs/sink.h"

#include <mutex>
#include <utility>

#include "obs/trace.h"

namespace finwork::obs {

namespace {

// Structured events are rare (they mark defects), so a single mutex-guarded
// vector with a hard cap is enough.
constexpr std::size_t kMaxEvents = 4096;

struct SinkRegistry {
  std::mutex mu;
  std::vector<StructuredEvent> events;
};

SinkRegistry& sink_registry() {
  static SinkRegistry registry;
  return registry;
}

}  // namespace

namespace detail {

void emit_event_impl(std::string category, std::string object,
                     std::size_t level, std::size_t row,
                     std::string detail) noexcept {
  try {
    StructuredEvent ev;
    ev.category = std::move(category);
    ev.object = std::move(object);
    ev.level = level;
    ev.row = row;
    ev.detail = std::move(detail);
    ev.ts_ns = now_ns();
    SinkRegistry& reg = sink_registry();
    std::lock_guard lock(reg.mu);
    if (reg.events.size() < kMaxEvents) reg.events.push_back(std::move(ev));
  } catch (...) {
    // Diagnostics must never take the computation down with them.
  }
}

void ensure_sink_initialized() noexcept { sink_registry(); }

}  // namespace detail

std::vector<StructuredEvent> events_snapshot() {
  SinkRegistry& reg = sink_registry();
  std::lock_guard lock(reg.mu);
  return reg.events;
}

void events_reset() noexcept {
  SinkRegistry& reg = sink_registry();
  std::lock_guard lock(reg.mu);
  reg.events.clear();
}

}  // namespace finwork::obs
