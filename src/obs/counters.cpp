#include "obs/counters.h"

#include <array>
#include <atomic>

namespace finwork::obs {

namespace {

constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);

// Plain zero-initialized globals: trivially destructible, so recording from
// worker threads during static teardown can never touch a dead object.
std::array<std::atomic<std::uint64_t>, kNumCounters> g_counters{};
std::array<std::atomic<std::uint64_t>, kNumGauges> g_gauges{};

constexpr std::array<std::string_view, kNumCounters> kCounterNames = {
    "linalg.lu_factorizations",
    "solver.lu_reuse_hits",
    "solver.dense_solves",
    "solver.iterative_solves",
    "linalg.neumann_iterations",
    "linalg.bicgstab_iterations",
    "linalg.gmres_iterations",
    "linalg.power_iterations",
    "solver.epoch_recursions",
    "solver.fast_forward_activations",
    "solver.epochs_skipped",
    "linalg.parallel_spmv_chunks",
    "linalg.multi_rhs_solves",
    "state_space.levels_built",
    "state_space.states_enumerated",
    "linalg.kron_products",
    "pool.tasks_executed",
    "pool.task_wait_ns",
    "sim.replications",
    "check.invariant_checks",
    "check.invariant_violations",
    "trace.events_dropped",
    "cache.model_hits",
    "cache.model_misses",
    "cache.model_evictions",
    "solver.grid_points_per_pass",
    "solver.fallback_activations",
    "linalg.refinement_iters",
    "linalg.condition_estimates",
};

constexpr std::array<std::string_view, kNumGauges> kGaugeNames = {
    "state_space.max_level_dimension",
    "pool.max_queue_depth",
};

}  // namespace

std::string_view counter_name(Counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

std::string_view gauge_name(Gauge g) noexcept {
  return kGaugeNames[static_cast<std::size_t>(g)];
}

namespace detail {

void counter_add_impl(Counter c, std::uint64_t v) noexcept {
  g_counters[static_cast<std::size_t>(c)].fetch_add(
      v, std::memory_order_relaxed);
}

void gauge_raise_impl(Gauge g, std::uint64_t v) noexcept {
  std::atomic<std::uint64_t>& slot = g_gauges[static_cast<std::size_t>(g)];
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t counter_value(Counter c) noexcept {
  return g_counters[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

std::uint64_t gauge_value(Gauge g) noexcept {
  return g_gauges[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
}

std::vector<CounterSnapshot> counters_snapshot() {
  std::vector<CounterSnapshot> out;
  out.reserve(kNumCounters + kNumGauges);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    out.push_back({std::string(kCounterNames[i]),
                   g_counters[i].load(std::memory_order_relaxed)});
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    out.push_back({std::string(kGaugeNames[i]),
                   g_gauges[i].load(std::memory_order_relaxed)});
  }
  return out;
}

void counters_reset() noexcept {
  for (auto& c : g_counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : g_gauges) g.store(0, std::memory_order_relaxed);
}

}  // namespace finwork::obs
