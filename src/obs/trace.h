#pragma once
// Low-overhead RAII span tracer.
//
// `ObsSpan span("solver/solve");` records a timed span from construction to
// destruction into the calling thread's private buffer.  Buffers never
// contend with each other: each thread appends only to its own buffer, and
// the buffer's mutex is uncontended except during the rare registry drains
// (snapshot/export/reset), so an append costs two clock reads plus one
// uncontended lock and a vector push.  Buffers are bounded; overflow drops
// the span and bumps Counter::kTraceEventsDropped instead of growing
// without limit.
//
// Span names must be string literals (or otherwise static storage) of the
// form "component/operation" — see docs/OBSERVABILITY.md for the catalog.
//
// When FINWORK_OBSERVABILITY is off, ObsSpan is the empty specialization
// below: construction and destruction compile to nothing and the type
// carries no state (tested by tests/obs/compile_out_test.cpp).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace finwork::obs {

/// One completed span, as drained from the registry.
struct TraceEvent {
  const char* name = nullptr;  ///< static-storage span name
  std::uint64_t start_ns = 0;  ///< steady-clock timestamp
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;  ///< small registry-assigned thread id
};

/// Monotonic nanosecond timestamp (steady clock).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Force construction of the trace/sink registries.  Call from long-lived
/// components that may record from worker threads during static teardown
/// (the ThreadPool constructor does) so the registries outlive them.
void ensure_initialized() noexcept;

namespace detail {
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t duration_ns) noexcept;
/// Minimal JSON string escaping (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);
}  // namespace detail

template <bool Enabled>
class BasicSpan;

template <>
class BasicSpan<true> {
 public:
  explicit BasicSpan(const char* name) noexcept
      : name_(name), start_(now_ns()) {}
  ~BasicSpan() { detail::record_span(name_, start_, now_ns() - start_); }
  BasicSpan(const BasicSpan&) = delete;
  BasicSpan& operator=(const BasicSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_;
};

template <>
class BasicSpan<false> {
 public:
  explicit BasicSpan(const char*) noexcept {}
  BasicSpan(const BasicSpan&) = delete;
  BasicSpan& operator=(const BasicSpan&) = delete;
};

/// RAII scoped timer; the alias resolves to the empty specialization when
/// the layer is compiled out.
using ObsSpan = BasicSpan<kEnabled>;

/// Aggregated per-name statistics over all recorded spans.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
};

/// All recorded spans, sorted by start time.
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Per-name aggregation, sorted by total time descending.
[[nodiscard]] std::vector<SpanStats> trace_summary();

/// Discard all recorded spans (thread buffers stay registered).
void trace_reset() noexcept;

/// Chrome trace-event JSON ("chrome://tracing" / Perfetto): spans as
/// complete ("X") events, structured sink events as instant ("i") events.
/// Timestamps are microseconds relative to the earliest recorded event.
void write_chrome_trace(std::ostream& out);

/// Flat text report: span summary table, counter/gauge values, and any
/// structured events.
void write_text_summary(std::ostream& out);

}  // namespace finwork::obs
