#pragma once
// Compile-time switch for the observability layer (span tracing, counters,
// structured events).
//
// Mirrors check/check_config.h: the registry functions in obs/*.cpp are
// always compiled and callable (tests and the CLI exporters use them
// directly), but every *recording* call site goes through an inline wrapper
// or an empty span specialization selected on `kEnabled`, so a build with
// FINWORK_OBSERVABILITY=OFF pays nothing — no clock reads, no atomic adds,
// no buffer appends.  The CMake option FINWORK_OBSERVABILITY (default ON)
// defines the macro below on every target that links finwork_obs.
//
// When the macro is absent entirely (a translation unit compiled outside
// the build system), the layer defaults to enabled.

// Inclusion marker: hot-path headers (parallel/thread_pool.h, ...) must not
// drag the obs layer in; tests/obs/compile_out_test.cpp checks this stays
// undefined after including them.
#define FINWORK_OBS_CONFIG_INCLUDED 1

namespace finwork::obs {

#if !defined(FINWORK_OBSERVABILITY) || FINWORK_OBSERVABILITY
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

}  // namespace finwork::obs
