#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/counters.h"
#include "obs/sink.h"

namespace finwork::obs {

namespace {

// Per-thread bound: 2^17 events * 32 B = 4 MiB worst case per thread.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 17;

struct ThreadBuffer {
  std::mutex mu;  // uncontended except during registry drains
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    static TraceRegistry registry;
    return registry;
  }

  ThreadBuffer& local() {
    thread_local ThreadBuffer* cached = nullptr;
    if (cached == nullptr) cached = &register_thread();
    return *cached;
  }

  std::vector<TraceEvent> snapshot() {
    std::vector<TraceEvent> out;
    std::lock_guard registry_lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard buffer_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.start_ns < b.start_ns;
              });
    return out;
  }

  void reset() noexcept {
    std::lock_guard registry_lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard buffer_lock(buf->mu);
      buf->events.clear();
    }
  }

 private:
  ThreadBuffer& register_thread() {
    auto buf = std::make_unique<ThreadBuffer>();
    std::lock_guard lock(mu_);
    buf->tid = next_tid_++;
    buffers_.push_back(std::move(buf));
    return *buffers_.back();
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ensure_initialized() noexcept {
  TraceRegistry::instance();
  detail::ensure_sink_initialized();
}

namespace detail {

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t duration_ns) noexcept {
  try {
    ThreadBuffer& buf = TraceRegistry::instance().local();
    std::lock_guard lock(buf.mu);
    if (buf.events.size() >= kMaxEventsPerThread) {
      counter_add(Counter::kTraceEventsDropped);
      return;
    }
    buf.events.push_back({name, start_ns, duration_ns, buf.tid});
  } catch (...) {
    // Tracing must never take the computation down with it.
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail

std::vector<TraceEvent> trace_snapshot() {
  return TraceRegistry::instance().snapshot();
}

std::vector<SpanStats> trace_summary() {
  std::map<std::string_view, SpanStats> by_name;
  for (const TraceEvent& ev : TraceRegistry::instance().snapshot()) {
    SpanStats& s = by_name[ev.name];
    if (s.count == 0) {
      s.name = ev.name;
      s.min_ns = ev.duration_ns;
      s.max_ns = ev.duration_ns;
    } else {
      s.min_ns = std::min(s.min_ns, ev.duration_ns);
      s.max_ns = std::max(s.max_ns, ev.duration_ns);
    }
    ++s.count;
    s.total_ns += ev.duration_ns;
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_ns > b.total_ns;
  });
  return out;
}

void trace_reset() noexcept { TraceRegistry::instance().reset(); }

void write_chrome_trace(std::ostream& out) {
  const std::vector<TraceEvent> spans = trace_snapshot();
  const std::vector<StructuredEvent> events = events_snapshot();

  // Normalize timestamps to the earliest record so traces open near t=0.
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const TraceEvent& ev : spans) base = std::min(base, ev.start_ns);
  for (const StructuredEvent& ev : events) base = std::min(base, ev.ts_ns);
  if (base == std::numeric_limits<std::uint64_t>::max()) base = 0;
  const auto us = [base](std::uint64_t ns) {
    return static_cast<double>(ns - base) / 1000.0;
  };

  const std::streamsize saved_precision = out.precision();
  out << std::setprecision(15);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : spans) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"" << detail::json_escape(ev.name)
        << "\",\"cat\":\"finwork\",\"ph\":\"X\",\"ts\":" << us(ev.start_ns)
        << ",\"dur\":" << static_cast<double>(ev.duration_ns) / 1000.0
        << ",\"pid\":1,\"tid\":" << ev.tid << '}';
  }
  for (const StructuredEvent& ev : events) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"" << detail::json_escape(ev.category)
        << "\",\"cat\":\"finwork\",\"ph\":\"i\",\"s\":\"g\",\"ts\":"
        << us(ev.ts_ns) << ",\"pid\":1,\"tid\":1,\"args\":{\"object\":\""
        << detail::json_escape(ev.object) << '"';
    if (ev.level != kNoIndex) out << ",\"level\":" << ev.level;
    if (ev.row != kNoIndex) out << ",\"row\":" << ev.row;
    out << ",\"detail\":\"" << detail::json_escape(ev.detail) << "\"}}";
  }
  out << "\n]}\n";
  out << std::setprecision(static_cast<int>(saved_precision));
}

void write_text_summary(std::ostream& out) {
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  out << "== span summary ==\n";
  const std::vector<SpanStats> summary = trace_summary();
  if (summary.empty()) {
    out << "  (no spans recorded)\n";
  } else {
    out << std::left << std::setw(36) << "  name" << std::right
        << std::setw(10) << "count" << std::setw(14) << "total_ms"
        << std::setw(12) << "mean_ms" << std::setw(12) << "min_ms"
        << std::setw(12) << "max_ms" << '\n';
    for (const SpanStats& s : summary) {
      out << "  " << std::left << std::setw(34) << s.name << std::right
          << std::setw(10) << s.count << std::setw(14) << std::fixed
          << std::setprecision(3) << ms(s.total_ns) << std::setw(12)
          << ms(s.total_ns) / static_cast<double>(s.count) << std::setw(12)
          << ms(s.min_ns) << std::setw(12) << ms(s.max_ns) << '\n';
      out.unsetf(std::ios::fixed);
    }
  }
  out << "== counters ==\n";
  for (const CounterSnapshot& c : counters_snapshot()) {
    out << "  " << std::left << std::setw(36) << c.name << std::right
        << std::setw(16) << c.value << '\n';
  }
  const std::vector<StructuredEvent> events = events_snapshot();
  if (!events.empty()) {
    out << "== structured events ==\n";
    for (const StructuredEvent& ev : events) {
      out << "  [" << ev.category << "] " << ev.object;
      if (ev.level != kNoIndex) out << " level=" << ev.level;
      if (ev.row != kNoIndex) out << " row=" << ev.row;
      if (!ev.detail.empty()) out << ": " << ev.detail;
      out << '\n';
    }
  }
}

}  // namespace finwork::obs
