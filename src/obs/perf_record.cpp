#include "obs/perf_record.h"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "obs/counters.h"
#include "obs/trace.h"

#ifndef FINWORK_GIT_SHA
#define FINWORK_GIT_SHA "unknown"
#endif
#ifndef FINWORK_BUILD_TYPE_STR
#define FINWORK_BUILD_TYPE_STR "unknown"
#endif
#ifndef FINWORK_SANITIZE_STR
#define FINWORK_SANITIZE_STR "none"
#endif

namespace finwork::obs {

namespace {

void write_json_number(std::ostream& out, double v) {
  // JSON has no NaN/Inf; clamp defensively to null.
  if (v != v || v > 1e308 || v < -1e308) {
    out << "null";
  } else {
    out << v;
  }
}

}  // namespace

PerfRecord::PerfRecord(std::string tool)
    : tool_(std::move(tool)), created_ns_(now_ns()) {}

void PerfRecord::set_meta(const std::string& key, std::string value) {
  meta_[key] = std::move(value);
}

void PerfRecord::add_entry(PerfEntry entry) {
  entries_.push_back(std::move(entry));
}

std::string PerfRecord::build_git_sha() { return FINWORK_GIT_SHA; }
std::string PerfRecord::build_type() { return FINWORK_BUILD_TYPE_STR; }
std::string PerfRecord::build_sanitize() { return FINWORK_SANITIZE_STR; }

void PerfRecord::write(std::ostream& out) const {
  const double wall =
      static_cast<double>(now_ns() - created_ns_) / 1e9;
  const auto esc = [](std::string_view s) { return detail::json_escape(s); };
  out << std::setprecision(15);
  out << "{\n"
      << "  \"schema\": \"finwork-perf-record/1\",\n"
      << "  \"tool\": \"" << esc(tool_) << "\",\n"
      << "  \"git_sha\": \"" << esc(build_git_sha()) << "\",\n"
      << "  \"build_type\": \"" << esc(build_type()) << "\",\n"
      << "  \"sanitize\": \"" << esc(build_sanitize()) << "\",\n"
      << "  \"observability\": " << (kEnabled ? "true" : "false") << ",\n"
      << "  \"wall_seconds\": ";
  write_json_number(out, wall);
  out << ",\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    out << (first ? "" : ",") << "\n    \"" << esc(key) << "\": \""
        << esc(value) << '"';
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"benchmarks\": [";
  first = true;
  for (const PerfEntry& e : entries_) {
    out << (first ? "" : ",") << "\n    {\"name\": \"" << esc(e.name)
        << "\", \"real_seconds\": ";
    write_json_number(out, e.real_seconds);
    out << ", \"iterations\": " << e.iterations
        << ", \"seconds_per_iteration\": ";
    write_json_number(out, e.iterations > 0
                               ? e.real_seconds /
                                     static_cast<double>(e.iterations)
                               : 0.0);
    out << ", \"metrics\": {";
    bool first_metric = true;
    for (const auto& [key, value] : e.metrics) {
      out << (first_metric ? "" : ", ") << '"' << esc(key) << "\": ";
      write_json_number(out, value);
      first_metric = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n  \"phases\": [";
  first = true;
  for (const SpanStats& s : trace_summary()) {
    const auto ms = [](std::uint64_t ns) {
      return static_cast<double>(ns) / 1e6;
    };
    out << (first ? "" : ",") << "\n    {\"name\": \"" << esc(s.name)
        << "\", \"count\": " << s.count << ", \"total_ms\": ";
    write_json_number(out, ms(s.total_ns));
    out << ", \"mean_ms\": ";
    write_json_number(out, ms(s.total_ns) / static_cast<double>(s.count));
    out << ", \"min_ms\": ";
    write_json_number(out, ms(s.min_ns));
    out << ", \"max_ms\": ";
    write_json_number(out, ms(s.max_ns));
    out << '}';
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n  \"counters\": {";
  first = true;
  for (const CounterSnapshot& c : counters_snapshot()) {
    out << (first ? "" : ",") << "\n    \"" << esc(c.name)
        << "\": " << c.value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

bool PerfRecord::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace finwork::obs
