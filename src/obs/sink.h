#pragma once
// Structured event sink: the destination for one-off diagnostic records
// that used to go to stderr (invariant violations, convergence failures).
// Events carry the offending object's name, the population level, the row,
// and a free-form detail string; they surface in the Chrome trace export
// as instant events and in the text summary verbatim.
//
// Emission is compiled out with the rest of the layer; the read-side API
// stays live so exporters and tests always link.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs_config.h"

namespace finwork::obs {

/// Sentinel for events without a population level or row.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

struct StructuredEvent {
  std::string category;  ///< e.g. "invariant-violation"
  std::string object;    ///< offending matrix/vector name, e.g. "P_k"
  std::size_t level = kNoIndex;
  std::size_t row = kNoIndex;
  std::string detail;
  std::uint64_t ts_ns = 0;  ///< steady-clock timestamp at emission
};

namespace detail {
void emit_event_impl(std::string category, std::string object,
                     std::size_t level, std::size_t row,
                     std::string detail) noexcept;
/// Construct the sink registry now (see obs::ensure_initialized).
void ensure_sink_initialized() noexcept;
}  // namespace detail

/// Record a structured event.  No-op when the layer is disabled.
inline void emit_event(std::string category, std::string object,
                       std::size_t level = kNoIndex,
                       std::size_t row = kNoIndex,
                       std::string detail = {}) noexcept {
  if constexpr (kEnabled) {
    detail::emit_event_impl(std::move(category), std::move(object), level,
                            row, std::move(detail));
  }
}

/// All recorded events in emission order.
[[nodiscard]] std::vector<StructuredEvent> events_snapshot();

/// Discard all recorded events.
void events_reset() noexcept;

}  // namespace finwork::obs
