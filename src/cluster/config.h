#pragma once
// JSON experiment configuration: lets the CLI (and downstream tools) drive
// the library without writing C++.  Two top-level forms are supported:
//
//   cluster form                      custom-network form
//   {                                 {
//     "architecture": "central",        "network": {
//     "workstations": 5,                  "stations": [
//     "tasks": 30,                          {"name": "App", "mean": 1.0,
//     "application": {...},                  "multiplicity": 6,
//     "shapes": {                            "shape": {"type": "erlang",
//       "remote_disk":                                  "stages": 2}}, ...],
//         {"type": "hyperexponential",    "entry":   [1, 0, 0],
//          "scv": 10}},                    "routing": [[0,1,0], ...],
//     "contention": "shared"               "exit":    [0, 0.1, 0.5]},
//   }                                    "workstations": 6, "tasks": 60 }
//
// Shape objects: {"type": "exponential"} | {"type": "erlang", "stages": n}
// | {"type": "hyperexponential", "scv": x} | {"type": "scv", "scv": x}
// | {"type": "power_tail", "alpha": a, "levels": m}.

#include <cstdint>
#include <optional>

#include "cluster/experiments.h"
#include "io/json.h"

namespace finwork::cluster {

/// A parsed experiment: the model plus run parameters.
struct ExperimentSpec {
  /// Set when the config used the custom-network form.
  std::optional<net::NetworkSpec> network;
  /// Set when the config used the cluster form.
  std::optional<ExperimentConfig> config;
  std::size_t workstations = 1;
  std::size_t tasks = 1;
  /// Simulation controls (used when outputs request "simulate").
  std::size_t replications = 1000;
  std::uint64_t seed = 1;
  /// Which outputs to produce; empty means the analytic defaults.
  std::vector<std::string> outputs;

  /// Optional sweep: vary one parameter over `sweep_values` and tabulate
  /// makespan / speedup / prediction error per point.  Supported parameters
  /// (cluster form only): "workstations", "tasks", "remote_scv", "cpu_scv".
  std::string sweep_parameter;
  std::vector<double> sweep_values;

  /// The network to analyze, whichever form was used.
  [[nodiscard]] net::NetworkSpec build() const;
};

/// Run the spec's sweep: one row per sweep value with columns
/// [value, makespan, speedup, prediction_error_pct].  Throws
/// std::invalid_argument for unknown parameters or a custom-network spec.
[[nodiscard]] io::Table run_sweep(const ExperimentSpec& spec);

/// Parse a shape object into a ServiceShape.
[[nodiscard]] ServiceShape parse_shape(const io::JsonValue& value);

/// Parse an application-model object (all fields optional; defaults are the
/// paper's parameterisation).
[[nodiscard]] ApplicationModel parse_application(const io::JsonValue& value);

/// Parse a full experiment config (either form).  Throws io::JsonError or
/// std::invalid_argument with a descriptive message.
[[nodiscard]] ExperimentSpec parse_experiment(const io::JsonValue& value);

/// Parse the custom-network form's "network" object.
[[nodiscard]] net::NetworkSpec parse_network(const io::JsonValue& value);

}  // namespace finwork::cluster
