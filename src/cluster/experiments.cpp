#include "cluster/experiments.h"

#include <array>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/metrics.h"
#include "core/model_cache.h"
#include "parallel/thread_pool.h"

namespace finwork::cluster {

namespace {

/// Shared model for a config, through the process-wide content-addressed
/// cache: concurrent sweep points that differ only in N (or that collapse to
/// the same exponentialized cluster) build the model once and share it.
std::shared_ptr<const core::ModelArtifacts> cached_model(
    const net::NetworkSpec& spec, std::size_t workstations) {
  return core::ModelCache::global().acquire(spec, workstations);
}

}  // namespace

net::NetworkSpec build_cluster(const ExperimentConfig& config) {
  switch (config.architecture) {
    case Architecture::kCentral:
      return central_cluster(config.workstations, config.app, config.shapes,
                             config.contention);
    case Architecture::kDistributed:
      return distributed_cluster(config.workstations, config.app,
                                 config.shapes, {}, config.contention);
  }
  throw std::logic_error("build_cluster: unknown architecture");
}

double cluster_makespan(const ExperimentConfig& config, std::size_t tasks) {
  const core::TransientSolver solver(
      cached_model(build_cluster(config), config.workstations));
  return solver.makespan(tasks);
}

std::vector<double> cluster_makespan_grid(const ExperimentConfig& config,
                                          std::span<const std::size_t> tasks) {
  const core::TransientSolver solver(
      cached_model(build_cluster(config), config.workstations));
  return solver.makespan_grid(tasks);
}

double cluster_speedup(const ExperimentConfig& config, std::size_t tasks) {
  return core::speedup(tasks, config.app.task_mean_time(),
                       cluster_makespan(config, tasks));
}

double cluster_prediction_error(const ExperimentConfig& config,
                                std::size_t tasks) {
  const net::NetworkSpec actual = build_cluster(config);
  const core::TransientSolver actual_solver(
      cached_model(actual, config.workstations));
  const core::TransientSolver exp_solver(
      cached_model(actual.exponentialized(), config.workstations));
  return core::prediction_error_percent(actual_solver.makespan(tasks),
                                        exp_solver.makespan(tasks));
}

std::vector<double> cluster_prediction_error_grid(
    const ExperimentConfig& config, std::span<const std::size_t> tasks) {
  const net::NetworkSpec actual = build_cluster(config);
  const core::TransientSolver actual_solver(
      cached_model(actual, config.workstations));
  const core::TransientSolver exp_solver(
      cached_model(actual.exponentialized(), config.workstations));
  const std::vector<double> actual_et = actual_solver.makespan_grid(tasks);
  const std::vector<double> exp_et = exp_solver.makespan_grid(tasks);
  std::vector<double> errors(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    errors[i] = core::prediction_error_percent(actual_et[i], exp_et[i]);
  }
  return errors;
}

io::Table interdeparture_series(const ExperimentConfig& base,
                                const std::vector<ShapeVariant>& variants,
                                std::size_t tasks) {
  std::vector<std::string> headers{"task_order"};
  for (const ShapeVariant& v : variants) headers.push_back(v.label);
  io::Table table(std::move(headers));

  std::vector<core::DepartureTimeline> timelines(variants.size());
  par::parallel_for(0, variants.size(), [&](std::size_t i) {
    ExperimentConfig config = base;
    config.shapes = variants[i].shapes;
    const core::TransientSolver solver(
        cached_model(build_cluster(config), config.workstations));
    timelines[i] = solver.solve(tasks);
  });

  for (std::size_t t = 0; t < tasks; ++t) {
    std::vector<double> row{static_cast<double>(t + 1)};
    for (const core::DepartureTimeline& tl : timelines) {
      row.push_back(tl.epoch_times[t]);
    }
    table.add_row(row);
  }
  return table;
}

io::Table steady_state_vs_scv(const ExperimentConfig& base,
                              const std::vector<double>& scv_values) {
  io::Table table({"C2", "t_ss_contention", "t_ss_no_contention"});
  std::vector<std::array<double, 2>> rows(scv_values.size());
  par::parallel_for(0, scv_values.size(), [&](std::size_t i) {
    for (int variant = 0; variant < 2; ++variant) {
      ExperimentConfig config = base;
      config.shapes.remote_disk = ServiceShape::from_scv(scv_values[i]);
      config.contention =
          variant == 0 ? Contention::kShared : Contention::kNone;
      const core::TransientSolver solver(
          cached_model(build_cluster(config), config.workstations));
      rows[i][variant] = solver.steady_state().interdeparture;
    }
  });
  for (std::size_t i = 0; i < scv_values.size(); ++i) {
    table.add_row({scv_values[i], rows[i][0], rows[i][1]});
  }
  return table;
}

namespace {

enum class ScvMetric { kPredictionError, kSpeedup };

/// Shared sweep scaffold for the "metric vs C2 per N" figure families.
/// Each C^2 value is one or two distinct models (built once through the
/// cache and shared with every other point needing them) and the whole N
/// grid of a model is harvested from a single recursion pass, so the sweep
/// costs O(distinct models x one pass) instead of O(points x build+solve).
io::Table metric_vs_scv(const ExperimentConfig& base,
                        const std::vector<double>& scv_values,
                        const std::vector<std::size_t>& task_counts,
                        const std::string& metric_name, bool cpu_shape,
                        ScvMetric metric) {
  std::vector<std::string> headers{"C2"};
  for (std::size_t n : task_counts) {
    headers.push_back(metric_name + "_N" + std::to_string(n));
  }
  io::Table table(std::move(headers));

  // exponentialized() erases the swept shape (only the means survive), so
  // every C^2 row compares against the SAME model — build it and harvest its
  // N grid once, outside the row fan-out, instead of once per row.
  std::vector<double> exponential_et;
  if (metric == ScvMetric::kPredictionError) {
    const core::TransientSolver expo(cached_model(
        build_cluster(base).exponentialized(), base.workstations));
    exponential_et = expo.makespan_grid(task_counts);
  }

  std::vector<std::vector<double>> values(scv_values.size());
  par::parallel_for(0, scv_values.size(), [&](std::size_t i) {
    ExperimentConfig config = base;
    if (cpu_shape) {
      config.shapes.cpu = ServiceShape::from_scv(scv_values[i]);
    } else {
      config.shapes.remote_disk = ServiceShape::from_scv(scv_values[i]);
    }
    switch (metric) {
      case ScvMetric::kPredictionError: {
        values[i] = cluster_makespan_grid(config, task_counts);
        for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
          values[i][jn] = core::prediction_error_percent(values[i][jn],
                                                         exponential_et[jn]);
        }
        break;
      }
      case ScvMetric::kSpeedup: {
        values[i] = cluster_makespan_grid(config, task_counts);
        for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
          values[i][jn] = core::speedup(
              task_counts[jn], config.app.task_mean_time(), values[i][jn]);
        }
        break;
      }
    }
  });

  for (std::size_t i = 0; i < scv_values.size(); ++i) {
    std::vector<double> row{scv_values[i]};
    for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
      row.push_back(values[i][jn]);
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace

io::Table prediction_error_vs_scv(const ExperimentConfig& base,
                                  const std::vector<double>& scv_values,
                                  const std::vector<std::size_t>& task_counts) {
  return metric_vs_scv(base, scv_values, task_counts, "E%", false,
                       ScvMetric::kPredictionError);
}

io::Table speedup_vs_scv(const ExperimentConfig& base,
                         const std::vector<double>& scv_values,
                         const std::vector<std::size_t>& task_counts) {
  return metric_vs_scv(base, scv_values, task_counts, "SP", false,
                       ScvMetric::kSpeedup);
}

io::Table prediction_error_vs_cpu_scv(
    const ExperimentConfig& base, const std::vector<double>& scv_values,
    const std::vector<std::size_t>& task_counts) {
  return metric_vs_scv(base, scv_values, task_counts, "E%", true,
                       ScvMetric::kPredictionError);
}

io::Table speedup_vs_k(const ExperimentConfig& base,
                       const std::vector<std::size_t>& k_values,
                       const std::vector<std::size_t>& task_counts) {
  std::vector<std::string> headers{"K"};
  for (std::size_t n : task_counts) headers.push_back("SP_N" + std::to_string(n));
  io::Table table(std::move(headers));

  // One model per K; its whole N grid comes from a single pass.
  std::vector<std::vector<double>> values(k_values.size());
  par::parallel_for(0, k_values.size(), [&](std::size_t i) {
    ExperimentConfig config = base;
    config.workstations = k_values[i];
    values[i] = cluster_makespan_grid(config, task_counts);
    for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
      values[i][jn] = core::speedup(task_counts[jn],
                                    config.app.task_mean_time(), values[i][jn]);
    }
  });

  for (std::size_t i = 0; i < k_values.size(); ++i) {
    std::vector<double> row{static_cast<double>(k_values[i])};
    for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
      row.push_back(values[i][jn]);
    }
    table.add_row(row);
  }
  return table;
}

io::Table speedup_vs_k_shapes(const ExperimentConfig& base,
                              const std::vector<std::size_t>& k_values,
                              const std::vector<ShapeVariant>& variants,
                              std::size_t tasks) {
  std::vector<std::string> headers{"K"};
  for (const ShapeVariant& v : variants) headers.push_back("SP_" + v.label);
  io::Table table(std::move(headers));

  const std::size_t points = k_values.size() * variants.size();
  std::vector<double> values(points);
  par::parallel_for(0, points, [&](std::size_t p) {
    const std::size_t i = p / variants.size();
    const std::size_t jv = p % variants.size();
    ExperimentConfig config = base;
    config.workstations = k_values[i];
    config.shapes = variants[jv].shapes;
    values[p] = cluster_speedup(config, tasks);
  });

  for (std::size_t i = 0; i < k_values.size(); ++i) {
    std::vector<double> row{static_cast<double>(k_values[i])};
    for (std::size_t jv = 0; jv < variants.size(); ++jv) {
      row.push_back(values[i * variants.size() + jv]);
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace finwork::cluster
