#include "cluster/experiments.h"

#include <stdexcept>

#include "core/metrics.h"
#include "parallel/thread_pool.h"

namespace finwork::cluster {

net::NetworkSpec build_cluster(const ExperimentConfig& config) {
  switch (config.architecture) {
    case Architecture::kCentral:
      return central_cluster(config.workstations, config.app, config.shapes,
                             config.contention);
    case Architecture::kDistributed:
      return distributed_cluster(config.workstations, config.app,
                                 config.shapes, {}, config.contention);
  }
  throw std::logic_error("build_cluster: unknown architecture");
}

double cluster_makespan(const ExperimentConfig& config, std::size_t tasks) {
  const core::TransientSolver solver(build_cluster(config),
                                     config.workstations);
  return solver.makespan(tasks);
}

double cluster_speedup(const ExperimentConfig& config, std::size_t tasks) {
  return core::speedup(tasks, config.app.task_mean_time(),
                       cluster_makespan(config, tasks));
}

double cluster_prediction_error(const ExperimentConfig& config,
                                std::size_t tasks) {
  const net::NetworkSpec actual = build_cluster(config);
  const core::TransientSolver actual_solver(actual, config.workstations);
  const core::TransientSolver exp_solver(actual.exponentialized(),
                                         config.workstations);
  return core::prediction_error_percent(actual_solver.makespan(tasks),
                                        exp_solver.makespan(tasks));
}

io::Table interdeparture_series(const ExperimentConfig& base,
                                const std::vector<ShapeVariant>& variants,
                                std::size_t tasks) {
  std::vector<std::string> headers{"task_order"};
  for (const ShapeVariant& v : variants) headers.push_back(v.label);
  io::Table table(std::move(headers));

  std::vector<core::DepartureTimeline> timelines(variants.size());
  par::parallel_for(0, variants.size(), [&](std::size_t i) {
    ExperimentConfig config = base;
    config.shapes = variants[i].shapes;
    const core::TransientSolver solver(build_cluster(config),
                                       config.workstations);
    timelines[i] = solver.solve(tasks);
  });

  for (std::size_t t = 0; t < tasks; ++t) {
    std::vector<double> row{static_cast<double>(t + 1)};
    for (const core::DepartureTimeline& tl : timelines) {
      row.push_back(tl.epoch_times[t]);
    }
    table.add_row(row);
  }
  return table;
}

io::Table steady_state_vs_scv(const ExperimentConfig& base,
                              const std::vector<double>& scv_values) {
  io::Table table({"C2", "t_ss_contention", "t_ss_no_contention"});
  std::vector<std::array<double, 2>> rows(scv_values.size());
  par::parallel_for(0, scv_values.size(), [&](std::size_t i) {
    for (int variant = 0; variant < 2; ++variant) {
      ExperimentConfig config = base;
      config.shapes.remote_disk = ServiceShape::from_scv(scv_values[i]);
      config.contention =
          variant == 0 ? Contention::kShared : Contention::kNone;
      const core::TransientSolver solver(build_cluster(config),
                                         config.workstations);
      rows[i][variant] = solver.steady_state().interdeparture;
    }
  });
  for (std::size_t i = 0; i < scv_values.size(); ++i) {
    table.add_row({scv_values[i], rows[i][0], rows[i][1]});
  }
  return table;
}

namespace {

/// Shared sweep scaffold for the "metric vs C2 per N" figure families.
io::Table metric_vs_scv(const ExperimentConfig& base,
                        const std::vector<double>& scv_values,
                        const std::vector<std::size_t>& task_counts,
                        const std::string& metric_name, bool cpu_shape,
                        double (*metric)(const ExperimentConfig&, std::size_t)) {
  std::vector<std::string> headers{"C2"};
  for (std::size_t n : task_counts) {
    headers.push_back(metric_name + "_N" + std::to_string(n));
  }
  io::Table table(std::move(headers));

  const std::size_t points = scv_values.size() * task_counts.size();
  std::vector<double> values(points);
  par::parallel_for(0, points, [&](std::size_t p) {
    const std::size_t i = p / task_counts.size();
    const std::size_t jn = p % task_counts.size();
    ExperimentConfig config = base;
    if (cpu_shape) {
      config.shapes.cpu = ServiceShape::from_scv(scv_values[i]);
    } else {
      config.shapes.remote_disk = ServiceShape::from_scv(scv_values[i]);
    }
    values[p] = metric(config, task_counts[jn]);
  });

  for (std::size_t i = 0; i < scv_values.size(); ++i) {
    std::vector<double> row{scv_values[i]};
    for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
      row.push_back(values[i * task_counts.size() + jn]);
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace

io::Table prediction_error_vs_scv(const ExperimentConfig& base,
                                  const std::vector<double>& scv_values,
                                  const std::vector<std::size_t>& task_counts) {
  return metric_vs_scv(base, scv_values, task_counts, "E%", false,
                       &cluster_prediction_error);
}

io::Table speedup_vs_scv(const ExperimentConfig& base,
                         const std::vector<double>& scv_values,
                         const std::vector<std::size_t>& task_counts) {
  return metric_vs_scv(base, scv_values, task_counts, "SP", false,
                       &cluster_speedup);
}

io::Table prediction_error_vs_cpu_scv(
    const ExperimentConfig& base, const std::vector<double>& scv_values,
    const std::vector<std::size_t>& task_counts) {
  return metric_vs_scv(base, scv_values, task_counts, "E%", true,
                       &cluster_prediction_error);
}

io::Table speedup_vs_k(const ExperimentConfig& base,
                       const std::vector<std::size_t>& k_values,
                       const std::vector<std::size_t>& task_counts) {
  std::vector<std::string> headers{"K"};
  for (std::size_t n : task_counts) headers.push_back("SP_N" + std::to_string(n));
  io::Table table(std::move(headers));

  const std::size_t points = k_values.size() * task_counts.size();
  std::vector<double> values(points);
  par::parallel_for(0, points, [&](std::size_t p) {
    const std::size_t i = p / task_counts.size();
    const std::size_t jn = p % task_counts.size();
    ExperimentConfig config = base;
    config.workstations = k_values[i];
    values[p] = cluster_speedup(config, task_counts[jn]);
  });

  for (std::size_t i = 0; i < k_values.size(); ++i) {
    std::vector<double> row{static_cast<double>(k_values[i])};
    for (std::size_t jn = 0; jn < task_counts.size(); ++jn) {
      row.push_back(values[i * task_counts.size() + jn]);
    }
    table.add_row(row);
  }
  return table;
}

io::Table speedup_vs_k_shapes(const ExperimentConfig& base,
                              const std::vector<std::size_t>& k_values,
                              const std::vector<ShapeVariant>& variants,
                              std::size_t tasks) {
  std::vector<std::string> headers{"K"};
  for (const ShapeVariant& v : variants) headers.push_back("SP_" + v.label);
  io::Table table(std::move(headers));

  const std::size_t points = k_values.size() * variants.size();
  std::vector<double> values(points);
  par::parallel_for(0, points, [&](std::size_t p) {
    const std::size_t i = p / variants.size();
    const std::size_t jv = p % variants.size();
    ExperimentConfig config = base;
    config.workstations = k_values[i];
    config.shapes = variants[jv].shapes;
    values[p] = cluster_speedup(config, tasks);
  });

  for (std::size_t i = 0; i < k_values.size(); ++i) {
    std::vector<double> row{static_cast<double>(k_values[i])};
    for (std::size_t jv = 0; jv < variants.size(); ++jv) {
      row.push_back(values[i * variants.size() + jv]);
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace finwork::cluster
