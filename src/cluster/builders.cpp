#include "cluster/builders.h"

#include <cmath>
#include <stdexcept>

namespace finwork::cluster {

ServiceShape ServiceShape::exponential() {
  return {[](double mean) { return ph::PhaseType::exponential(1.0 / mean); },
          "Exp"};
}

ServiceShape ServiceShape::erlang(std::size_t stages) {
  return {[stages](double mean) { return ph::PhaseType::erlang(stages, mean); },
          "E" + std::to_string(stages)};
}

ServiceShape ServiceShape::hyperexponential(double scv) {
  return {[scv](double mean) { return ph::hyperexponential_balanced(mean, scv); },
          "H2(C2=" + std::to_string(scv) + ")"};
}

ServiceShape ServiceShape::from_scv(double scv) {
  return {[scv](double mean) { return ph::fit_scv(mean, scv); },
          "C2=" + std::to_string(scv)};
}

ServiceShape ServiceShape::power_tail(double alpha, std::size_t levels) {
  return {[alpha, levels](double mean) {
            return ph::truncated_power_tail(levels, alpha, mean);
          },
          "TPT(a=" + std::to_string(alpha) + ")"};
}

net::NetworkSpec central_cluster(std::size_t workstations,
                                 const ApplicationModel& app,
                                 const ClusterShapes& shapes,
                                 Contention contention) {
  if (workstations == 0) {
    throw std::invalid_argument("central_cluster: need >= 1 workstation");
  }
  app.validate();
  const double q = app.q();
  const double p1 = app.p1();
  const double p2 = app.p2();
  const std::size_t shared_mult =
      contention == Contention::kShared ? 1 : workstations;

  const bool scheduled = app.scheduler_overhead > 0.0;
  const std::size_t s = scheduled ? 5 : 4;

  std::vector<net::Station> stations;
  stations.push_back({"CPU", shapes.cpu.make(app.cpu_service()), workstations});
  stations.push_back(
      {"LDisk", shapes.local_disk.make(app.local_disk_service()), workstations});
  stations.push_back({"Comm", shapes.comm.make(app.comm_service()), shared_mult});
  stations.push_back(
      {"RDisk", shapes.remote_disk.make(app.remote_disk_service()), shared_mult});
  if (scheduled) {
    // One shared dispatcher every task crosses before its first CPU burst
    // (the paper's "scheduling overhead" extension hook).
    stations.push_back(
        {"Sched", ph::PhaseType::exponential(1.0 / app.scheduler_overhead), 1});
  }

  la::Vector entry(s, 0.0);
  entry[scheduled ? 4 : 0] = 1.0;
  la::Matrix routing(s, s, 0.0);
  routing(0, 1) = (1.0 - q) * p1;  // CPU -> local disk
  routing(0, 2) = (1.0 - q) * p2;  // CPU -> comm channel
  routing(1, 0) = 1.0;             // local disk -> CPU
  routing(2, 3) = 1.0;             // comm -> central disk
  routing(3, 0) = 1.0;             // central disk -> CPU
  if (scheduled) routing(4, 0) = 1.0;  // scheduler -> CPU
  la::Vector exit(s, 0.0);
  exit[0] = q;
  return net::NetworkSpec(std::move(stations), std::move(entry),
                          std::move(routing), std::move(exit));
}

net::NetworkSpec distributed_cluster(std::size_t workstations,
                                     const ApplicationModel& app,
                                     const ClusterShapes& shapes,
                                     const std::vector<double>& allocation,
                                     Contention contention) {
  if (workstations == 0) {
    throw std::invalid_argument("distributed_cluster: need >= 1 workstation");
  }
  app.validate();
  std::vector<double> alloc = allocation;
  if (alloc.empty()) {
    alloc.assign(workstations, 1.0 / static_cast<double>(workstations));
  }
  if (alloc.size() != workstations) {
    throw std::invalid_argument(
        "distributed_cluster: allocation size must equal workstations");
  }
  double asum = 0.0;
  for (double w : alloc) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "distributed_cluster: negative allocation weight");
    }
    asum += w;
  }
  if (std::abs(asum - 1.0) > 1e-9) {
    throw std::invalid_argument(
        "distributed_cluster: allocation must sum to 1");
  }

  const double q = app.q();
  const double p1 = app.p1();
  const double p2 = app.p2();
  const std::size_t shared_mult =
      contention == Contention::kShared ? 1 : workstations;
  const bool scheduled = app.scheduler_overhead > 0.0;
  // CPU, LDisk, Comm, D_1..D_K [, Sched]
  const std::size_t s = 3 + workstations + (scheduled ? 1 : 0);

  std::vector<net::Station> stations;
  stations.push_back({"CPU", shapes.cpu.make(app.cpu_service()), workstations});
  stations.push_back(
      {"LDisk", shapes.local_disk.make(app.local_disk_service()), workstations});
  stations.push_back({"Comm", shapes.comm.make(app.comm_service()), shared_mult});
  for (std::size_t i = 0; i < workstations; ++i) {
    stations.push_back({"D" + std::to_string(i + 1),
                        shapes.remote_disk.make(app.remote_disk_service()),
                        shared_mult});
  }
  if (scheduled) {
    stations.push_back(
        {"Sched", ph::PhaseType::exponential(1.0 / app.scheduler_overhead), 1});
  }

  la::Vector entry(s, 0.0);
  entry[scheduled ? s - 1 : 0] = 1.0;
  la::Matrix routing(s, s, 0.0);
  routing(0, 1) = (1.0 - q) * p1;
  routing(0, 2) = (1.0 - q) * p2;
  routing(1, 0) = 1.0;
  for (std::size_t i = 0; i < workstations; ++i) {
    routing(2, 3 + i) = alloc[i];  // comm fans out by the data allocation
    routing(3 + i, 0) = 1.0;       // disks return to the CPU
  }
  if (scheduled) routing(s - 1, 0) = 1.0;  // scheduler -> CPU
  la::Vector exit(s, 0.0);
  exit[0] = q;
  return net::NetworkSpec(std::move(stations), std::move(entry),
                          std::move(routing), std::move(exit));
}

}  // namespace finwork::cluster
