#include "cluster/config.h"

#include <stdexcept>

namespace finwork::cluster {

ServiceShape parse_shape(const io::JsonValue& value) {
  const std::string type = value.string_or("type", "exponential");
  if (type == "exponential" || type == "exp") {
    return ServiceShape::exponential();
  }
  if (type == "erlang") {
    const auto stages = static_cast<std::size_t>(value.at("stages").as_number());
    return ServiceShape::erlang(stages);
  }
  if (type == "hyperexponential" || type == "h2") {
    return ServiceShape::hyperexponential(value.at("scv").as_number());
  }
  if (type == "scv") {
    return ServiceShape::from_scv(value.at("scv").as_number());
  }
  if (type == "power_tail" || type == "tpt") {
    const double alpha = value.at("alpha").as_number();
    const auto levels =
        static_cast<std::size_t>(value.number_or("levels", 8.0));
    return ServiceShape::power_tail(alpha, levels);
  }
  throw std::invalid_argument("unknown shape type '" + type + "'");
}

ApplicationModel parse_application(const io::JsonValue& value) {
  ApplicationModel app;
  if (value.string_or("preset", "") == "coarse_grained") {
    app = ApplicationModel::coarse_grained();
  }
  app.local_time = value.number_or("local_time", app.local_time);
  app.cpu_fraction = value.number_or("cpu_fraction", app.cpu_fraction);
  app.remote_time = value.number_or("remote_time", app.remote_time);
  app.comm_factor = value.number_or("comm_factor", app.comm_factor);
  app.mean_cycles = value.number_or("mean_cycles", app.mean_cycles);
  app.remote_share = value.number_or("remote_share", app.remote_share);
  app.scheduler_overhead =
      value.number_or("scheduler_overhead", app.scheduler_overhead);
  app.validate();
  return app;
}

net::NetworkSpec parse_network(const io::JsonValue& value) {
  const auto& stations_json = value.at("stations").as_array();
  std::vector<net::Station> stations;
  stations.reserve(stations_json.size());
  for (const io::JsonValue& sj : stations_json) {
    const double mean = sj.at("mean").as_number();
    const auto mult =
        static_cast<std::size_t>(sj.number_or("multiplicity", 1.0));
    const ServiceShape shape = sj.contains("shape")
                                   ? parse_shape(sj.at("shape"))
                                   : ServiceShape::exponential();
    stations.push_back(
        {sj.string_or("name", "S" + std::to_string(stations.size())),
         shape.make(mean), mult});
  }
  const std::size_t s = stations.size();

  const auto parse_vector = [&](const std::string& key) {
    const auto& arr = value.at(key).as_array();
    la::Vector v(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) v[i] = arr[i].as_number();
    return v;
  };
  la::Vector entry = parse_vector("entry");
  la::Vector exit = parse_vector("exit");
  const auto& rows = value.at("routing").as_array();
  la::Matrix routing(rows.size(), s, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r].as_array();
    if (row.size() != s) {
      throw std::invalid_argument("routing row width mismatch");
    }
    for (std::size_t c = 0; c < s; ++c) routing(r, c) = row[c].as_number();
  }
  return net::NetworkSpec(std::move(stations), std::move(entry),
                          std::move(routing), std::move(exit));
}

ExperimentSpec parse_experiment(const io::JsonValue& value) {
  ExperimentSpec spec;
  spec.tasks = static_cast<std::size_t>(value.number_or("tasks", 1.0));
  if (spec.tasks == 0) throw std::invalid_argument("tasks must be >= 1");

  if (value.contains("network")) {
    spec.network = parse_network(value.at("network"));
    spec.workstations =
        static_cast<std::size_t>(value.number_or("workstations", 1.0));
  } else {
    ExperimentConfig cfg;
    const std::string arch = value.string_or("architecture", "central");
    if (arch == "central") {
      cfg.architecture = Architecture::kCentral;
    } else if (arch == "distributed") {
      cfg.architecture = Architecture::kDistributed;
    } else {
      throw std::invalid_argument("unknown architecture '" + arch + "'");
    }
    cfg.workstations =
        static_cast<std::size_t>(value.number_or("workstations", 5.0));
    if (value.contains("application")) {
      cfg.app = parse_application(value.at("application"));
    }
    if (value.contains("shapes")) {
      const io::JsonValue& shapes = value.at("shapes");
      if (shapes.contains("cpu")) cfg.shapes.cpu = parse_shape(shapes.at("cpu"));
      if (shapes.contains("local_disk")) {
        cfg.shapes.local_disk = parse_shape(shapes.at("local_disk"));
      }
      if (shapes.contains("comm")) {
        cfg.shapes.comm = parse_shape(shapes.at("comm"));
      }
      if (shapes.contains("remote_disk")) {
        cfg.shapes.remote_disk = parse_shape(shapes.at("remote_disk"));
      }
    }
    const std::string contention = value.string_or("contention", "shared");
    if (contention == "shared") {
      cfg.contention = Contention::kShared;
    } else if (contention == "none") {
      cfg.contention = Contention::kNone;
    } else {
      throw std::invalid_argument("unknown contention '" + contention + "'");
    }
    spec.workstations = cfg.workstations;
    spec.config = std::move(cfg);
  }

  if (value.contains("simulate")) {
    const io::JsonValue& simj = value.at("simulate");
    spec.replications =
        static_cast<std::size_t>(simj.number_or("replications", 1000.0));
    spec.seed = static_cast<std::uint64_t>(simj.number_or("seed", 1.0));
  }
  if (value.contains("outputs")) {
    for (const io::JsonValue& o : value.at("outputs").as_array()) {
      spec.outputs.push_back(o.as_string());
    }
  }
  if (value.contains("sweep")) {
    const io::JsonValue& sweep = value.at("sweep");
    spec.sweep_parameter = sweep.at("parameter").as_string();
    for (const io::JsonValue& v : sweep.at("values").as_array()) {
      spec.sweep_values.push_back(v.as_number());
    }
    if (spec.sweep_values.empty()) {
      throw std::invalid_argument("sweep: values must be non-empty");
    }
  }
  if (spec.workstations == 0) {
    throw std::invalid_argument("workstations must be >= 1");
  }
  return spec;
}

io::Table run_sweep(const ExperimentSpec& spec) {
  if (!spec.config) {
    throw std::invalid_argument("run_sweep: sweeps need the cluster form");
  }
  const std::string& param = spec.sweep_parameter;
  io::Table table({param, "makespan", "speedup", "prediction_error_pct"});
  for (double value : spec.sweep_values) {
    ExperimentConfig cfg = *spec.config;
    std::size_t tasks = spec.tasks;
    if (param == "workstations") {
      cfg.workstations = static_cast<std::size_t>(value);
      if (cfg.workstations == 0) {
        throw std::invalid_argument("run_sweep: workstations must be >= 1");
      }
    } else if (param == "tasks") {
      tasks = static_cast<std::size_t>(value);
      if (tasks == 0) {
        throw std::invalid_argument("run_sweep: tasks must be >= 1");
      }
    } else if (param == "remote_scv") {
      cfg.shapes.remote_disk = ServiceShape::from_scv(value);
    } else if (param == "cpu_scv") {
      cfg.shapes.cpu = ServiceShape::from_scv(value);
    } else {
      throw std::invalid_argument("run_sweep: unknown parameter '" + param +
                                  "'");
    }
    table.add_row({value, cluster_makespan(cfg, tasks),
                   cluster_speedup(cfg, tasks),
                   cluster_prediction_error(cfg, tasks)});
  }
  return table;
}

net::NetworkSpec ExperimentSpec::build() const {
  if (network) return *network;
  if (config) return build_cluster(*config);
  throw std::logic_error("ExperimentSpec: neither network nor config set");
}

}  // namespace finwork::cluster
