#pragma once
// The paper's application model (§5.1): a task is a geometric number of
// computation cycles, each cycle visiting the local CPU and then, with
// probability p1, the local disk or, with probability p2, the communication
// channel + remote storage.  The model is parameterised by *time totals*
//   X  = mean local time per task (CPU + local disk),
//   C  = fraction of X spent on the CPU,
//   Y  = mean remote-storage time per task,
//   B  = communication-time factor (mean comm time per task = B * Y),
// plus the mean number of cycles 1/q and the remote-visit share p2.  Device
// service times are *derived* so the totals hold exactly (inverting the
// paper's §5.4 equations, which guarantees p1 + p2 = 1 by construction).
//
// The paper's evaluation uses E(T) = 12 time units per task; the defaults
// here reproduce that: X + (1 + B) * Y = 10.5 + 1.25 * 1.2 = 12.  The split
// is calibrated so the shared storage is moderately loaded (utilization
// ~0.5 at K = 5 under exponential service): exponential clusters then show
// near-linear speedup (paper Fig. 14) while high-C^2 storage still degrades
// it visibly (Figs. 5, 8, 9).

#include <cstddef>
#include <stdexcept>

namespace finwork::cluster {

struct ApplicationModel {
  double local_time = 10.5;   ///< X
  double cpu_fraction = 0.5;  ///< C in (0, 1]
  double remote_time = 1.2;   ///< Y
  double comm_factor = 0.25;  ///< B; mean comm time per task = B * Y
  double mean_cycles = 20.0;  ///< 1/q, mean computation cycles per task
  double remote_share = 0.4;  ///< p2, probability a cycle goes remote
  /// Mean time the shared scheduler spends dispatching each task before it
  /// first runs (the paper's "scheduling overhead" extension hook); 0
  /// disables the scheduler station entirely.
  double scheduler_overhead = 0.0;

  /// Mean running time of a task alone in the system:
  /// scheduling + CX + (1-C)X + BY + Y.
  [[nodiscard]] double task_mean_time() const noexcept {
    return scheduler_overhead + local_time + (1.0 + comm_factor) * remote_time;
  }

  // Derived routing/service parameters (paper §5.4).
  [[nodiscard]] double q() const noexcept { return 1.0 / mean_cycles; }
  [[nodiscard]] double p1() const noexcept { return 1.0 - remote_share; }
  [[nodiscard]] double p2() const noexcept { return remote_share; }

  /// Per-visit mean service times making the totals exact.
  [[nodiscard]] double cpu_service() const noexcept {
    return q() * cpu_fraction * local_time;
  }
  [[nodiscard]] double local_disk_service() const noexcept {
    return q() * (1.0 - cpu_fraction) * local_time / (p1() * (1.0 - q()));
  }
  [[nodiscard]] double comm_service() const noexcept {
    return q() * comm_factor * remote_time / (p2() * (1.0 - q()));
  }
  [[nodiscard]] double remote_disk_service() const noexcept {
    return q() * remote_time / (p2() * (1.0 - q()));
  }

  /// Throws std::invalid_argument when a parameter is out of range.
  void validate() const;

  /// Fine-grained I/O-intensive application (the defaults): ~20 short
  /// compute cycles per task.  Per-visit distribution shapes at *shared*
  /// devices fully matter (their queues see each visit), but a dedicated
  /// CPU's per-visit C^2 largely averages out across the many visits.
  /// Use for the paper's §6.1 shared-server experiments (Figs. 3-9).
  [[nodiscard]] static ApplicationModel fine_grained() { return {}; }

  /// Coarse-grained compute-bound application: 2 long cycles per task, so
  /// the per-task running-time distribution inherits the CPU's C^2 almost
  /// directly.  Use for the paper's §6.2 dedicated-server experiments
  /// (Figs. 10-15), whose effects live in the transient and draining
  /// regions and scale with the *task* (not per-visit) variability.
  [[nodiscard]] static ApplicationModel coarse_grained() {
    ApplicationModel app;
    app.mean_cycles = 2.0;
    return app;
  }
};

}  // namespace finwork::cluster
