#pragma once
// Experiment drivers behind the paper's Figures 3-15.  Each driver builds the
// cluster(s), runs the transient solver and returns an io::Table whose
// columns mirror the figure's series.  The benches are thin mains over these
// functions, which keeps every experiment unit-testable.
//
// Sweeps are parallelised over the sweep points with the global thread pool
// (each point owns its solver; no shared mutable state).

#include <span>
#include <string>
#include <vector>

#include "cluster/builders.h"
#include "core/transient_solver.h"
#include "io/table.h"

namespace finwork::cluster {

enum class Architecture { kCentral, kDistributed };

/// A fully specified cluster experiment.
struct ExperimentConfig {
  Architecture architecture = Architecture::kCentral;
  std::size_t workstations = 5;
  ApplicationModel app;
  ClusterShapes shapes;
  Contention contention = Contention::kShared;
};

/// Build the NetworkSpec for a config.
[[nodiscard]] net::NetworkSpec build_cluster(const ExperimentConfig& config);

/// Total mean completion time E(T) of `tasks` tasks under a config.  The
/// model is shared through core::ModelCache::global(), so repeated calls for
/// the same cluster reuse its state space and factorizations.
[[nodiscard]] double cluster_makespan(const ExperimentConfig& config,
                                      std::size_t tasks);

/// E(T) for every workload size in `tasks` from one cached model and one
/// pass of the epoch recursion (TransientSolver::makespan_grid).
[[nodiscard]] std::vector<double> cluster_makespan_grid(
    const ExperimentConfig& config, std::span<const std::size_t> tasks);

/// Speedup versus serial execution: tasks * task_mean_time / E(T), where the
/// task mean is the config's no-contention single-task time.
[[nodiscard]] double cluster_speedup(const ExperimentConfig& config,
                                     std::size_t tasks);

/// The paper's exponential-assumption prediction error (%): compare the
/// config against the same cluster with every service exponentialized.
/// Both models come from the cache — across a C^2 sweep the exponentialized
/// cluster is the SAME model for every C^2 value, so it is built once.
[[nodiscard]] double cluster_prediction_error(const ExperimentConfig& config,
                                              std::size_t tasks);

/// Prediction error (%) for every workload size in `tasks`: two cached
/// models, one grid pass each.
[[nodiscard]] std::vector<double> cluster_prediction_error_grid(
    const ExperimentConfig& config, std::span<const std::size_t> tasks);

/// One labelled variant of a shape sweep (e.g. "Exp", "H2 C2=10").
struct ShapeVariant {
  std::string label;
  ClusterShapes shapes;
};

/// Figures 3/4/10/11: per-epoch mean inter-departure times.  Columns:
/// task order, then one column per variant.
[[nodiscard]] io::Table interdeparture_series(const ExperimentConfig& base,
                                              const std::vector<ShapeVariant>& variants,
                                              std::size_t tasks);

/// Figure 5: steady-state inter-departure time versus the shared remote
/// disk's C^2, with and without contention.  Columns: C2, t_ss(contention),
/// t_ss(no contention).
[[nodiscard]] io::Table steady_state_vs_scv(const ExperimentConfig& base,
                                            const std::vector<double>& scv_values);

/// Figures 6/7: prediction error (%) versus the shared remote storage's C^2
/// for several workload sizes.  Columns: C2, then E% per N.
[[nodiscard]] io::Table prediction_error_vs_scv(
    const ExperimentConfig& base, const std::vector<double>& scv_values,
    const std::vector<std::size_t>& task_counts);

/// Figures 8/9: speedup versus the shared remote storage's C^2.
/// Columns: C2, then SP per N.
[[nodiscard]] io::Table speedup_vs_scv(const ExperimentConfig& base,
                                       const std::vector<double>& scv_values,
                                       const std::vector<std::size_t>& task_counts);

/// Figures 12/13: prediction error (%) versus the *dedicated CPU's* C^2.
/// Columns: C2, then E% per N.
[[nodiscard]] io::Table prediction_error_vs_cpu_scv(
    const ExperimentConfig& base, const std::vector<double>& scv_values,
    const std::vector<std::size_t>& task_counts);

/// Figure 14: speedup versus cluster size for several workload sizes, all
/// services exponential.  Columns: K, then SP per N.
[[nodiscard]] io::Table speedup_vs_k(const ExperimentConfig& base,
                                     const std::vector<std::size_t>& k_values,
                                     const std::vector<std::size_t>& task_counts);

/// Figure 15: speedup versus cluster size for several CPU service shapes at
/// a fixed workload.  Columns: K, then SP per shape.
[[nodiscard]] io::Table speedup_vs_k_shapes(const ExperimentConfig& base,
                                            const std::vector<std::size_t>& k_values,
                                            const std::vector<ShapeVariant>& variants,
                                            std::size_t tasks);

}  // namespace finwork::cluster
