#include "cluster/app_model.h"

namespace finwork::cluster {

void ApplicationModel::validate() const {
  if (local_time <= 0.0) {
    throw std::invalid_argument("ApplicationModel: local_time must be > 0");
  }
  if (cpu_fraction <= 0.0 || cpu_fraction > 1.0) {
    throw std::invalid_argument(
        "ApplicationModel: cpu_fraction must be in (0, 1]");
  }
  if (remote_time <= 0.0) {
    throw std::invalid_argument("ApplicationModel: remote_time must be > 0");
  }
  if (comm_factor < 0.0) {
    throw std::invalid_argument("ApplicationModel: comm_factor must be >= 0");
  }
  if (mean_cycles <= 1.0) {
    throw std::invalid_argument("ApplicationModel: mean_cycles must be > 1");
  }
  if (remote_share <= 0.0 || remote_share >= 1.0) {
    throw std::invalid_argument(
        "ApplicationModel: remote_share must be in (0, 1)");
  }
  if (scheduler_overhead < 0.0) {
    throw std::invalid_argument(
        "ApplicationModel: scheduler_overhead must be >= 0");
  }
}

}  // namespace finwork::cluster
