#pragma once
// Builders for the paper's two cluster architectures (§5.4, §5.5):
//
//   central:      CPU bank --> local disk bank --> shared comm --> one shared
//                 central disk, cycle back to the CPU.
//   distributed:  the shared data lives on K per-workstation disks instead of
//                 one central store; the comm channel fans requests out
//                 according to a data-allocation vector.
//
// CPU and local-disk are *dedicated* devices (one per workstation, a task
// never queues for them); comm and remote storage are *shared*.  Service
// distributions are pluggable per device class via ServiceShape so the
// paper's Exp / Erlang / Hyperexponential sweeps are one-liners.

#include <functional>
#include <string>
#include <vector>

#include "cluster/app_model.h"
#include "network/network_spec.h"
#include "ph/fitting.h"

namespace finwork::cluster {

/// A service-time *shape*: given the mean, produce the distribution.
struct ServiceShape {
  std::function<ph::PhaseType(double mean)> make;
  std::string label = "Exp";

  [[nodiscard]] static ServiceShape exponential();
  /// Erlang with a fixed number of stages (C^2 = 1/stages).
  [[nodiscard]] static ServiceShape erlang(std::size_t stages);
  /// Balanced-means two-branch hyperexponential with the given C^2 (>= 1).
  [[nodiscard]] static ServiceShape hyperexponential(double scv);
  /// Any C^2 > 0: dispatches to mixed Erlang / exponential / H2.
  [[nodiscard]] static ServiceShape from_scv(double scv);
  /// Lipsky truncated power tail with the given index and level count.
  [[nodiscard]] static ServiceShape power_tail(double alpha,
                                               std::size_t levels = 8);
};

/// Per-device-class shapes; defaults are all exponential.
struct ClusterShapes {
  ServiceShape cpu = ServiceShape::exponential();
  ServiceShape local_disk = ServiceShape::exponential();
  ServiceShape comm = ServiceShape::exponential();
  ServiceShape remote_disk = ServiceShape::exponential();
};

/// Whether shared storage is a contended single server (the paper's normal
/// case) or replicated per task (its "no contention" comparison, where the
/// service distribution provably stops mattering for means).
enum class Contention { kShared, kNone };

/// Central-storage cluster of `workstations` nodes (paper §5.4): stations
/// {CPU bank, local-disk bank, comm channel, central disk}.
[[nodiscard]] net::NetworkSpec central_cluster(
    std::size_t workstations, const ApplicationModel& app,
    const ClusterShapes& shapes = {},
    Contention contention = Contention::kShared);

/// Distributed-storage cluster (paper §5.5): stations {CPU bank, local-disk
/// bank, comm channel, D_1..D_K}.  `allocation[i]` is the fraction of remote
/// requests served by node i's disk (defaults to uniform).  The remote-time
/// total Y is preserved regardless of the allocation.
[[nodiscard]] net::NetworkSpec distributed_cluster(
    std::size_t workstations, const ApplicationModel& app,
    const ClusterShapes& shapes = {},
    const std::vector<double>& allocation = {},
    Contention contention = Contention::kShared);

}  // namespace finwork::cluster
