#include "sim/simulator.h"

#include <deque>
#include <mutex>
#include <queue>
#include <stdexcept>

#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace finwork::sim {

namespace {

struct Event {
  double time = 0.0;
  std::uint64_t sequence = 0;  // FIFO tie-break for equal times
  std::size_t customer = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }
};

struct Customer {
  std::size_t station = 0;
  std::size_t phase = 0;
  bool in_service = false;
};

struct StationState {
  std::size_t busy = 0;
  std::deque<std::size_t> waiting;  // FCFS customer ids
};

/// Sample an index from a cumulative probability row; `size` entries.
template <typename Cum>
std::size_t sample_cumulative(const Cum& cum, std::size_t size, double u) {
  for (std::size_t i = 0; i + 1 < size; ++i) {
    if (u < cum[i]) return i;
  }
  return size - 1;
}

}  // namespace

NetworkSimulator::NetworkSimulator(net::NetworkSpec spec,
                                   std::size_t workstations)
    : spec_(std::move(spec)), k_(workstations) {
  if (k_ == 0) {
    throw std::invalid_argument("NetworkSimulator: workstations must be >= 1");
  }
}

std::vector<double> NetworkSimulator::run_once(
    std::size_t tasks, rng::Xoshiro256& rng,
    std::vector<StationTally>* tallies) const {
  if (tasks == 0) {
    throw std::invalid_argument("NetworkSimulator: need >= 1 task");
  }
  obs::counter_add(obs::Counter::kSimReplications);
  const std::size_t s = spec_.num_stations();

  // Precompute cumulative rows: entry over stations; routing row j has s
  // station targets followed by the implicit system exit.
  std::vector<double> entry_cum(s);
  {
    double acc = 0.0;
    for (std::size_t j = 0; j < s; ++j) {
      acc += spec_.entry()[j];
      entry_cum[j] = acc;
    }
  }
  std::vector<std::vector<double>> route_cum(s, std::vector<double>(s));
  for (std::size_t j = 0; j < s; ++j) {
    double acc = 0.0;
    for (std::size_t l = 0; l < s; ++l) {
      acc += spec_.routing()(j, l);
      route_cum[j][l] = acc;
    }
  }

  std::vector<Customer> customers;
  customers.reserve(k_);
  std::vector<StationState> stations(s);
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t sequence = 0;
  double now = 0.0;
  std::size_t not_yet_admitted = tasks;
  std::vector<double> departures;
  departures.reserve(tasks);

  // Time-integrated per-station occupancy for the optional tallies.
  std::vector<std::size_t> present(s, 0);
  std::vector<double> busy_integral(s, 0.0);
  std::vector<double> queue_integral(s, 0.0);
  const auto advance_time = [&](double to) {
    if (tallies != nullptr && to > now) {
      const double dt = to - now;
      for (std::size_t j = 0; j < s; ++j) {
        busy_integral[j] += dt * static_cast<double>(stations[j].busy);
        queue_integral[j] += dt * static_cast<double>(present[j]);
      }
    }
    now = to;
  };

  auto schedule_phase = [&](std::size_t cid) {
    const Customer& c = customers[cid];
    const ph::PhaseType& svc = spec_.station(c.station).service;
    const double dt = rng::exponential(rng, svc.phase_rate(c.phase));
    events.push({now + dt, sequence++, cid});
  };

  auto begin_service = [&](std::size_t cid) {
    Customer& c = customers[cid];
    const ph::PhaseType& svc = spec_.station(c.station).service;
    c.phase = svc.sample_entry_phase(rng);
    c.in_service = true;
    ++stations[c.station].busy;
    schedule_phase(cid);
  };

  auto arrive_at = [&](std::size_t cid, std::size_t station) {
    Customer& c = customers[cid];
    c.station = station;
    c.in_service = false;
    ++present[station];
    StationState& st = stations[station];
    if (st.busy < spec_.station(station).multiplicity) {
      begin_service(cid);
    } else {
      st.waiting.push_back(cid);
    }
  };

  auto admit_task = [&](std::size_t cid) {
    const double u = rng::uniform01(rng);
    arrive_at(cid, sample_cumulative(entry_cum, s, u));
    --not_yet_admitted;
  };

  // Fill the system with the first K tasks (fewer if tasks < K).
  const std::size_t initial = std::min(tasks, k_);
  for (std::size_t i = 0; i < initial; ++i) {
    customers.push_back({});
    admit_task(customers.size() - 1);
  }

  while (departures.size() < tasks) {
    if (events.empty()) {
      throw std::logic_error("NetworkSimulator: event queue ran dry");
    }
    const Event ev = events.top();
    events.pop();
    advance_time(ev.time);
    Customer& c = customers[ev.customer];
    const std::size_t j = c.station;
    const ph::PhaseType& svc = spec_.station(j).service;

    const std::size_t next_phase = svc.sample_next_phase(rng, c.phase);
    if (next_phase < svc.phases()) {
      c.phase = next_phase;  // internal jump, still in service
      schedule_phase(ev.customer);
      continue;
    }

    // Service completed: free the server, start the next waiting customer.
    StationState& st = stations[j];
    --st.busy;
    --present[j];
    c.in_service = false;
    if (!st.waiting.empty()) {
      const std::size_t next_cid = st.waiting.front();
      st.waiting.pop_front();
      begin_service(next_cid);
    }

    // Route the completing customer.
    const double u = rng::uniform01(rng);
    const double route_total = route_cum[j].empty() ? 0.0 : route_cum[j][s - 1];
    if (u < route_total) {
      arrive_at(ev.customer, sample_cumulative(route_cum[j], s, u));
    } else {
      // System departure; the freed slot admits the next task (reusing the
      // customer record).
      departures.push_back(now);
      if (not_yet_admitted > 0) admit_task(ev.customer);
    }
  }
  if (tallies != nullptr) {
    tallies->assign(s, {});
    const double horizon = departures.back();
    for (std::size_t j = 0; j < s; ++j) {
      (*tallies)[j].utilization =
          busy_integral[j] /
          (horizon * static_cast<double>(spec_.station(j).multiplicity));
      (*tallies)[j].mean_queue_length = queue_integral[j] / horizon;
    }
  }
  return departures;
}

SimulationResult NetworkSimulator::run(std::size_t tasks,
                                       const SimulationOptions& options) const {
  const obs::ObsSpan span("sim/run");
  SimulationResult result;
  result.tasks = tasks;
  result.workstations = k_;
  result.departure_time.resize(tasks);
  result.interdeparture.resize(tasks);
  result.utilization.resize(spec_.num_stations());
  result.queue_length.resize(spec_.num_stations());

  const rng::Xoshiro256 root(options.seed);
  std::mutex merge_mutex;

  auto run_replication = [&](std::size_t rep) {
    rng::Xoshiro256 rng = root.split(rep);
    std::vector<StationTally> tallies;
    const std::vector<double> dep = run_once(tasks, rng, &tallies);
    std::lock_guard lock(merge_mutex);
    double prev = 0.0;
    for (std::size_t i = 0; i < tasks; ++i) {
      result.departure_time[i].add(dep[i]);
      result.interdeparture[i].add(dep[i] - prev);
      prev = dep[i];
    }
    result.makespan.add(dep.back());
    for (std::size_t j = 0; j < tallies.size(); ++j) {
      result.utilization[j].add(tallies[j].utilization);
      result.queue_length[j].add(tallies[j].mean_queue_length);
    }
  };

  if (options.parallel) {
    par::parallel_for(0, options.replications, run_replication);
  } else {
    for (std::size_t rep = 0; rep < options.replications; ++rep) {
      run_replication(rep);
    }
  }
  return result;
}

}  // namespace finwork::sim
