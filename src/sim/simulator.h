#pragma once
// Discrete-event simulation of the same closed finite-workload network the
// transient solver analyses: N iid tasks, at most K admitted, FCFS
// multi-server stations with exact phase-type service sampling.  Used to
// validate every analytic number independently (the paper itself reports no
// independent check).
//
// The simulator supports the *general* station configuration — including
// multi-server PH stations the analytic reduced-product space rejects — so it
// also serves as the reference model when exploring beyond the paper.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "network/network_spec.h"
#include "ph/rng.h"
#include "stats/online_stats.h"

namespace finwork::sim {

struct SimulationOptions {
  std::uint64_t seed = 0x5EEDF00DULL;
  std::size_t replications = 200;
  bool parallel = true;  ///< spread replications over the global thread pool
};

/// Time-averaged per-station measures of one replication.
struct StationTally {
  double utilization = 0.0;       ///< busy-server fraction (of multiplicity)
  double mean_queue_length = 0.0; ///< time-averaged customers present
};

/// Replication-averaged results.
struct SimulationResult {
  std::size_t tasks = 0;
  std::size_t workstations = 0;
  /// Statistics of the i-th departure instant across replications.
  std::vector<stats::OnlineStats> departure_time;
  /// Statistics of the i-th inter-departure gap across replications.
  std::vector<stats::OnlineStats> interdeparture;
  /// Statistics of the total completion time.
  stats::OnlineStats makespan;
  /// Per-station time-averaged utilization and queue length across
  /// replications (averaged over each replication's full run).
  std::vector<stats::OnlineStats> utilization;
  std::vector<stats::OnlineStats> queue_length;
};

/// Event-driven simulator over a NetworkSpec.
class NetworkSimulator {
 public:
  /// `workstations` is K: the admission limit (tasks beyond K wait outside).
  NetworkSimulator(net::NetworkSpec spec, std::size_t workstations);

  [[nodiscard]] const net::NetworkSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t workstations() const noexcept { return k_; }

  /// One replication: returns the N departure instants in order.  When
  /// `tallies` is non-null it receives one time-averaged entry per station.
  [[nodiscard]] std::vector<double> run_once(
      std::size_t tasks, rng::Xoshiro256& rng,
      std::vector<StationTally>* tallies = nullptr) const;

  /// Replicated run with confidence statistics.
  [[nodiscard]] SimulationResult run(std::size_t tasks,
                                     const SimulationOptions& options) const;

 private:
  net::NetworkSpec spec_;
  std::size_t k_;
};

}  // namespace finwork::sim
