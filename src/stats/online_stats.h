#pragma once
// Numerically stable online statistics (Welford) and confidence intervals,
// used by the simulator's replication engine and the benchmark harness.

#include <cstddef>

namespace finwork::stats {

/// Welford single-pass accumulator for mean and variance.
class OnlineStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator (parallel reduction of per-thread stats).
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double std_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the confidence interval for the mean at the given level
  /// (two-sided), using Student's t for small n and the normal limit above
  /// n = 120.  Supported levels: 0.90, 0.95, 0.99 (others fall back to 0.95).
  [[nodiscard]] double ci_half_width(double level = 0.95) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Squared coefficient of variation C^2 = var / mean^2 given the first two
/// raw moments E[X], E[X^2].
[[nodiscard]] double squared_cv(double mean, double second_moment) noexcept;

}  // namespace finwork::stats
