#include "stats/online_stats.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace finwork::stats {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::std_error() const noexcept {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

namespace {

// Two-sided Student-t critical values, rows: level index {90, 95, 99},
// columns: df 1..30 then the normal limit.
double t_critical(std::size_t df, double level) noexcept {
  static constexpr std::array<double, 30> t90 = {
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  static constexpr std::array<double, 30> t95 = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr std::array<double, 30> t99 = {
      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
  const std::array<double, 30>* table = &t95;
  double normal = 1.960;
  if (level >= 0.985) {
    table = &t99;
    normal = 2.576;
  } else if (level < 0.925) {
    table = &t90;
    normal = 1.645;
  }
  if (df == 0) return (*table)[0];
  if (df <= 30) return (*table)[df - 1];
  if (df <= 120) {
    // Linear interpolation between df=30 and the normal limit.
    const double w = static_cast<double>(df - 30) / 90.0;
    return (1.0 - w) * (*table)[29] + w * normal;
  }
  return normal;
}

}  // namespace

double OnlineStats::ci_half_width(double level) const noexcept {
  if (n_ < 2) return 0.0;
  return t_critical(n_ - 1, level) * std_error();
}

double squared_cv(double mean, double second_moment) noexcept {
  if (mean == 0.0) return 0.0;
  const double var = second_moment - mean * mean;
  return var / (mean * mean);
}

}  // namespace finwork::stats
