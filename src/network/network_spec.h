#pragma once
// A closed network of stations with finite workload: station-level entrance
// probabilities, routing matrix and exit probabilities.  This is the "S" of
// the paper's Section 3, before population expansion.

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "network/station.h"

namespace finwork::net {

/// Single-customer LAQT matrices of a network, at *phase* granularity: the
/// paper's p, P, M, B = M(I-P), V = B^-1 and the time-components vector pV.
struct SingleCustomerView {
  la::Vector p;            ///< entrance over phases
  la::Matrix transition;   ///< P over phases
  la::Vector rates;        ///< diag of M over phases
  la::Matrix b;            ///< B = M (I - P)
  la::Vector exit;         ///< per-phase probability of leaving the system
  /// Mean total time a lone task spends in each phase: the paper's pV.
  la::Vector time_components;
  /// Mean time for one task alone in the network: Psi[V] = p V eps.
  double mean_task_time = 0.0;
  /// Which station each phase belongs to.
  std::vector<std::size_t> phase_station;
};

/// Station-level network description with validation and the derived
/// single-customer view.
class NetworkSpec {
 public:
  /// `entry[j]`: probability a task starts at station j (sums to 1).
  /// `routing(j, l)`: probability a task finishing service at station j moves
  /// to station l.  `exit[j]`: probability it leaves the system instead.
  /// Each row of `routing` plus `exit[j]` must sum to 1.
  NetworkSpec(std::vector<Station> stations, la::Vector entry,
              la::Matrix routing, la::Vector exit);

  [[nodiscard]] std::size_t num_stations() const noexcept {
    return stations_.size();
  }
  [[nodiscard]] const Station& station(std::size_t j) const {
    return stations_.at(j);
  }
  [[nodiscard]] const std::vector<Station>& stations() const noexcept {
    return stations_;
  }
  [[nodiscard]] const la::Vector& entry() const noexcept { return entry_; }
  [[nodiscard]] const la::Matrix& routing() const noexcept { return routing_; }
  [[nodiscard]] const la::Vector& exit() const noexcept { return exit_; }

  /// Expand to phase granularity for a single customer (paper §3.1): the
  /// basis of the k = 1 level and of visit-ratio computations.
  [[nodiscard]] SingleCustomerView single_customer() const;

  /// Station visit ratios: expected number of visits to each station per
  /// task (entrance counted).  Solves v = entry + v * routing.
  [[nodiscard]] la::Vector visit_ratios() const;

  /// The running time of one task alone in the network, as an explicit
  /// phase-type distribution <p, B> over the network's phases.  Gives the
  /// task-level C^2, density and quantiles — e.g. to check how much of a
  /// device's per-visit variability survives aggregation over the visits.
  [[nodiscard]] ph::PhaseType task_time_distribution() const;

  /// Mean service demand per task at each station:
  /// visit ratio * mean service time.
  [[nodiscard]] la::Vector service_demands() const;

  /// Structural sanity for solvers: every station reachable from the
  /// entrance must also reach the system exit (otherwise tasks circulate
  /// forever and first-passage quantities diverge), and the entrance mass
  /// must land on reachable stations.  Throws std::invalid_argument with
  /// the offending station's name.
  void validate_connectivity() const;

  /// Returns a copy with station `j`'s service distribution replaced.
  [[nodiscard]] NetworkSpec with_service(std::size_t j,
                                         ph::PhaseType service) const;
  /// Returns a copy where every station's service is replaced by an
  /// exponential with the same mean (the paper's "exponential assumption").
  [[nodiscard]] NetworkSpec exponentialized() const;

 private:
  std::vector<Station> stations_;
  la::Vector entry_;
  la::Matrix routing_;
  la::Vector exit_;
};

}  // namespace finwork::net
