#pragma once
// Naive tagged-task (Kronecker product space) reference model.
//
// The paper contrasts the Kronecker-product formulation — every task
// tracked individually, D(K) = (2K+1)^K states for the central cluster —
// with the reduced-product space this library uses.  This module implements
// the naive formulation directly: the joint state is one (station, phase)
// slot per *named* task, and mean times come from dense absorbing-chain
// solves.  It is exponentially larger but algorithmically independent of
// the level-matrix machinery, which makes it the gold standard the
// reduced-product solver is tested against (the lumping proof made
// executable).
//
// Restrictions: stations with queueing (multiplicity < population) must be
// exponential; service there is treated as random-order, which has the same
// aggregate law as FCFS for exponential servers.  Dedicated (ample)
// stations may have any phase-type service.  Intended for tiny populations
// (the space is |codes|^K).

#include <cstddef>

#include "network/network_spec.h"

namespace finwork::net {

struct TaggedReferenceResult {
  /// Mean time until the first of the K tasks leaves the system.
  double first_departure = 0.0;
  /// Mean time until all K tasks have left (N = K makespan).
  double makespan = 0.0;
  /// Size of the tagged product space (including the per-task done slot).
  std::size_t states = 0;
};

/// Solve the tagged model for `population` named tasks all entering at
/// time zero.  Throws std::invalid_argument for unsupported stations
/// (queued non-exponential) or an infeasibly large space (> ~200k states).
[[nodiscard]] TaggedReferenceResult tagged_reference(const NetworkSpec& spec,
                                                     std::size_t population);

}  // namespace finwork::net
