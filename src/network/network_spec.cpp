#include "network/network_spec.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/lu.h"

namespace finwork::net {

namespace {
constexpr double kProbTol = 1e-9;
}

NetworkSpec::NetworkSpec(std::vector<Station> stations, la::Vector entry,
                         la::Matrix routing, la::Vector exit)
    : stations_(std::move(stations)),
      entry_(std::move(entry)),
      routing_(std::move(routing)),
      exit_(std::move(exit)) {
  const std::size_t s = stations_.size();
  if (s == 0) throw std::invalid_argument("NetworkSpec: no stations");
  if (entry_.size() != s || exit_.size() != s || routing_.rows() != s ||
      routing_.cols() != s) {
    throw std::invalid_argument("NetworkSpec: dimension mismatch");
  }
  double esum = 0.0;
  for (std::size_t j = 0; j < s; ++j) {
    if (entry_[j] < -kProbTol) {
      throw std::invalid_argument("NetworkSpec: negative entry probability");
    }
    esum += entry_[j];
  }
  if (std::abs(esum - 1.0) > kProbTol) {
    throw std::invalid_argument("NetworkSpec: entry must sum to 1");
  }
  for (std::size_t j = 0; j < s; ++j) {
    double row = exit_[j];
    if (exit_[j] < -kProbTol) {
      throw std::invalid_argument("NetworkSpec: negative exit probability");
    }
    for (std::size_t l = 0; l < s; ++l) {
      if (routing_(j, l) < -kProbTol) {
        throw std::invalid_argument("NetworkSpec: negative routing probability");
      }
      row += routing_(j, l);
    }
    if (std::abs(row - 1.0) > kProbTol) {
      throw std::invalid_argument(
          "NetworkSpec: routing row + exit must sum to 1 (station " +
          stations_[j].name + ")");
    }
  }
}

void NetworkSpec::validate_connectivity() const {
  const std::size_t s = stations_.size();
  // Forward reachability from the entrance.
  std::vector<bool> reachable(s, false);
  std::vector<std::size_t> frontier;
  for (std::size_t j = 0; j < s; ++j) {
    if (entry_[j] > 0.0) {
      reachable[j] = true;
      frontier.push_back(j);
    }
  }
  while (!frontier.empty()) {
    const std::size_t j = frontier.back();
    frontier.pop_back();
    for (std::size_t l = 0; l < s; ++l) {
      if (!reachable[l] && routing_(j, l) > 0.0) {
        reachable[l] = true;
        frontier.push_back(l);
      }
    }
  }
  // Backward reachability of the exit.
  std::vector<bool> exits(s, false);
  for (std::size_t j = 0; j < s; ++j) {
    if (exit_[j] > 0.0) {
      exits[j] = true;
      frontier.push_back(j);
    }
  }
  while (!frontier.empty()) {
    const std::size_t l = frontier.back();
    frontier.pop_back();
    for (std::size_t j = 0; j < s; ++j) {
      if (!exits[j] && routing_(j, l) > 0.0) {
        exits[j] = true;
        frontier.push_back(j);
      }
    }
  }
  for (std::size_t j = 0; j < s; ++j) {
    if (reachable[j] && !exits[j]) {
      throw std::invalid_argument(
          "NetworkSpec: tasks reaching station '" + stations_[j].name +
          "' can never leave the system (exit unreachable)");
    }
  }
}

SingleCustomerView NetworkSpec::single_customer() const {
  const std::size_t s = stations_.size();
  // Phase offsets per station.
  std::vector<std::size_t> offset(s + 1, 0);
  for (std::size_t j = 0; j < s; ++j) {
    offset[j + 1] = offset[j] + stations_[j].service.phases();
  }
  const std::size_t total = offset[s];

  SingleCustomerView view;
  view.p = la::Vector(total, 0.0);
  view.transition = la::Matrix(total, total, 0.0);
  view.rates = la::Vector(total, 0.0);
  view.exit = la::Vector(total, 0.0);
  view.phase_station.resize(total);

  for (std::size_t j = 0; j < s; ++j) {
    const ph::PhaseType& svc = stations_[j].service;
    const std::size_t m = svc.phases();
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t gi = offset[j] + i;
      view.phase_station[gi] = j;
      view.p[gi] = entry_[j] * svc.entry()[i];
      view.rates[gi] = svc.phase_rate(i);
      // internal jumps within the station's PH
      for (std::size_t i2 = 0; i2 < m; ++i2) {
        const double pij = svc.jump_probability(i, i2);
        if (pij > 0.0) view.transition(gi, offset[j] + i2) += pij;
      }
      // station completion: route to the next station's entrance phases or
      // leave the system
      const double q = svc.exit_probability(i);
      if (q > 0.0) {
        for (std::size_t l = 0; l < s; ++l) {
          const double rjl = routing_(j, l);
          if (rjl <= 0.0) continue;
          const ph::PhaseType& dst = stations_[l].service;
          for (std::size_t i2 = 0; i2 < dst.phases(); ++i2) {
            const double pe = dst.entry()[i2];
            if (pe > 0.0) view.transition(gi, offset[l] + i2) += q * rjl * pe;
          }
        }
        view.exit[gi] = q * exit_[j];
      }
    }
  }

  // B = M (I - P)
  view.b = la::Matrix(total, total, 0.0);
  for (std::size_t r = 0; r < total; ++r) {
    for (std::size_t c = 0; c < total; ++c) {
      const double eye = (r == c) ? 1.0 : 0.0;
      view.b(r, c) = view.rates[r] * (eye - view.transition(r, c));
    }
  }

  // time components pV: solve x B = p, i.e. x = p V.
  view.time_components = la::solve_left(view.b, view.p);
  view.mean_task_time = view.time_components.sum();
  return view;
}

ph::PhaseType NetworkSpec::task_time_distribution() const {
  const SingleCustomerView view = single_customer();
  return ph::PhaseType(view.p, view.b, "task-time");
}

la::Vector NetworkSpec::visit_ratios() const {
  // v = entry + v * routing  =>  v (I - routing) = entry
  const std::size_t s = stations_.size();
  la::Matrix a = la::identity(s);
  a -= routing_;
  return la::solve_left(a, entry_);
}

la::Vector NetworkSpec::service_demands() const {
  la::Vector v = visit_ratios();
  for (std::size_t j = 0; j < stations_.size(); ++j) {
    v[j] *= stations_[j].service.mean();
  }
  return v;
}

NetworkSpec NetworkSpec::with_service(std::size_t j,
                                      ph::PhaseType service) const {
  if (j >= stations_.size()) {
    throw std::out_of_range("NetworkSpec::with_service");
  }
  std::vector<Station> st = stations_;
  st[j].service = std::move(service);
  return NetworkSpec(std::move(st), entry_, routing_, exit_);
}

NetworkSpec NetworkSpec::exponentialized() const {
  std::vector<Station> st = stations_;
  for (Station& s : st) {
    s.service = ph::PhaseType::exponential(1.0 / s.service.mean());
  }
  return NetworkSpec(std::move(st), entry_, routing_, exit_);
}

}  // namespace finwork::net
