#pragma once
// Reduced-product state space and the per-population-level matrices of the
// paper's Section 4/5: for each k in 1..K,
//   M_k : completion-rate diagonal (total event rate of each state),
//   P_k : embedded internal-transition probabilities (population stays k),
//   Q_k : exit probabilities into level k-1 (a task leaves the system),
//   R_k : entrance probabilities from level k-1 into level k.
// Row invariant: P_k eps + Q_k eps = eps (something always happens next);
// R_k is stochastic.
//
// A global state is one local code per station (see StationModel).  States
// are enumerated per level and indexed densely; matrices are CSR.

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/sparse.h"
#include "network/network_spec.h"
#include "network/station.h"

namespace finwork::net {

/// One global state: per-station local codes.
using GlobalState = std::vector<std::uint32_t>;

struct GlobalStateHash {
  std::size_t operator()(const GlobalState& s) const noexcept {
    // FNV-1a over the code words.
    std::size_t h = 1469598103934665603ULL;
    for (std::uint32_t w : s) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

/// Matrices of one population level k.
struct LevelMatrices {
  std::size_t level = 0;          ///< k
  la::Vector event_rates;         ///< diag of M_k (dimension D(k))
  double max_event_rate = 0.0;    ///< max of event_rates, cached at build time
  la::CsrMatrix p;                ///< P_k, D(k) x D(k)
  la::CsrMatrix q;                ///< Q_k, D(k) x D(k-1)
  la::CsrMatrix r;                ///< R_k, D(k-1) x D(k)
};

/// The reduced-product state space of a network for populations 0..K,
/// with level matrices built lazily and cached.
class StateSpace {
 public:
  StateSpace(const NetworkSpec& spec, std::size_t max_population);

  [[nodiscard]] const NetworkSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t max_population() const noexcept { return max_pop_; }
  [[nodiscard]] std::size_t num_stations() const noexcept {
    return models_.size();
  }
  [[nodiscard]] const StationModel& model(std::size_t j) const {
    return models_.at(j);
  }

  /// Number of states with exactly k customers, D(k).
  [[nodiscard]] std::size_t dimension(std::size_t k) const;
  /// The states of level k in index order.
  [[nodiscard]] const std::vector<GlobalState>& states(std::size_t k) const;
  /// Index of a state within its level.
  [[nodiscard]] std::size_t index_of(std::size_t k, const GlobalState& s) const;
  /// Customers at each station in state (k, idx).
  [[nodiscard]] std::vector<std::size_t> occupancy(std::size_t k,
                                                   std::size_t idx) const;
  /// Human-readable state description.
  [[nodiscard]] std::string describe(std::size_t k, std::size_t idx) const;

  /// Level matrices for population k (1 <= k <= K); built on first use.
  /// Thread-safe: concurrent callers for the same level block until one
  /// build completes, so the solver may prefetch levels on the thread pool
  /// while the caller starts using them.
  [[nodiscard]] const LevelMatrices& level(std::size_t k) const;

  /// The paper's initial vector p_K = p R_2 R_3 ... R_K: the state
  /// distribution right after the first K tasks have streamed in.
  [[nodiscard]] la::Vector initial_vector(std::size_t k) const;

  /// Closed-form reduced-product dimension C(M + k - 1, k) for M
  /// single-phase stations — the paper's D_RP; used in tests to check the
  /// enumeration, valid when every station has one phase.
  [[nodiscard]] static std::size_t reduced_product_dimension(
      std::size_t stations, std::size_t customers);

 private:
  void enumerate_level(std::size_t k);
  void build_level(std::size_t k) const;

  NetworkSpec spec_;
  std::size_t max_pop_;
  std::vector<StationModel> models_;
  std::vector<std::vector<GlobalState>> level_states_;
  std::vector<std::unordered_map<GlobalState, std::size_t, GlobalStateHash>>
      level_index_;
  mutable std::vector<LevelMatrices> level_matrices_;
  // One flag per level: call_once both serializes concurrent builders of the
  // same level and publishes the built matrices to later readers.
  mutable std::unique_ptr<std::once_flag[]> level_once_;
};

}  // namespace finwork::net
