#include "network/station.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace finwork::net {

namespace {

/// All compositions of n into m non-negative parts, lexicographically by the
/// first part descending recursion (stable enumeration order).
void enumerate_compositions(std::size_t n, std::size_t m,
                            std::vector<std::size_t>& current,
                            std::vector<std::vector<std::size_t>>& out) {
  if (m == 1) {
    current.push_back(n);
    out.push_back(current);
    current.pop_back();
    return;
  }
  for (std::size_t first = 0; first <= n; ++first) {
    current.push_back(first);
    enumerate_compositions(n - first, m - 1, current, out);
    current.pop_back();
  }
}

}  // namespace

StationModel::StationModel(Station station, std::size_t max_population)
    : station_(std::move(station)), max_pop_(max_population) {
  if (station_.multiplicity == 0) {
    throw std::invalid_argument("StationModel: multiplicity must be >= 1");
  }
  const std::size_t m = station_.service.phases();
  ample_ = station_.multiplicity >= max_pop_;
  if (!ample_ && m > 1 && station_.multiplicity != 1) {
    throw std::invalid_argument(
        "StationModel: multi-server stations with several phases are not "
        "supported exactly; use multiplicity 1 (shared) or >= population "
        "(dedicated) — station '" + station_.name + "'");
  }

  counts_.resize(max_pop_ + 1);
  offsets_.resize(max_pop_ + 1);
  if (ample_ && m > 1) {
    comps_.resize(max_pop_ + 1);
    std::vector<std::size_t> cur;
    for (std::size_t n = 0; n <= max_pop_; ++n) {
      enumerate_compositions(n, m, cur, comps_[n]);
      counts_[n] = comps_[n].size();
    }
  } else if (!ample_ && m > 1) {
    // queued single-server PH: (n, phase); one empty state at n = 0
    counts_[0] = 1;
    for (std::size_t n = 1; n <= max_pop_; ++n) counts_[n] = m;
  } else {
    // single-phase (exponential-like), ample or queued: just the count n
    for (std::size_t n = 0; n <= max_pop_; ++n) counts_[n] = 1;
  }
  std::size_t off = 0;
  for (std::size_t n = 0; n <= max_pop_; ++n) {
    offsets_[n] = off;
    off += counts_[n];
  }
}

std::size_t StationModel::count(std::size_t n) const {
  if (n > max_pop_) throw std::out_of_range("StationModel::count");
  return counts_[n];
}

std::size_t StationModel::code_offset(std::size_t n) const {
  if (n > max_pop_) throw std::out_of_range("StationModel::code_offset");
  return offsets_[n];
}

std::size_t StationModel::total_codes() const {
  return offsets_[max_pop_] + counts_[max_pop_];
}

std::pair<std::size_t, std::size_t> StationModel::decode(std::size_t code) const {
  if (code >= total_codes()) throw std::out_of_range("StationModel::decode");
  // offsets_ is sorted; find the n-block containing the code.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), code);
  const std::size_t n = static_cast<std::size_t>(it - offsets_.begin()) - 1;
  return {n, code - offsets_[n]};
}

std::size_t StationModel::comp_index(const std::vector<std::size_t>& c) const {
  const std::size_t n = std::accumulate(c.begin(), c.end(), std::size_t{0});
  const auto& block = comps_[n];
  const auto it = std::lower_bound(block.begin(), block.end(), c);
  if (it == block.end() || *it != c) {
    throw std::logic_error("StationModel: composition not found");
  }
  return static_cast<std::size_t>(it - block.begin());
}

std::vector<LocalActivity> StationModel::activities(std::size_t n,
                                                    std::size_t idx) const {
  if (n > max_pop_ || idx >= counts_[n]) {
    throw std::out_of_range("StationModel::activities");
  }
  std::vector<LocalActivity> acts;
  if (n == 0) return acts;
  const ph::PhaseType& svc = station_.service;
  const std::size_t m = svc.phases();

  if (ample_ && m > 1) {
    const std::vector<std::size_t>& alpha = comps_[n][idx];
    for (std::size_t i = 0; i < m; ++i) {
      if (alpha[i] == 0) continue;
      LocalActivity act;
      act.rate = static_cast<double>(alpha[i]) * svc.phase_rate(i);
      for (std::size_t j = 0; j < m; ++j) {
        const double pij = svc.jump_probability(i, j);
        if (pij <= 0.0) continue;
        std::vector<std::size_t> next = alpha;
        --next[i];
        ++next[j];
        act.internal.push_back({comp_index(next), pij});
      }
      const double q = svc.exit_probability(i);
      if (q > 0.0) {
        std::vector<std::size_t> next = alpha;
        --next[i];
        act.completion.push_back({comp_index(next), q});
      }
      acts.push_back(std::move(act));
    }
    return acts;
  }

  if (!ample_ && m > 1) {
    // queued single-server PH: local state (n, phase = idx)
    const std::size_t phase = idx;
    LocalActivity act;
    act.rate = svc.phase_rate(phase);
    for (std::size_t j = 0; j < m; ++j) {
      const double pij = svc.jump_probability(phase, j);
      if (pij > 0.0) act.internal.push_back({j, pij});
    }
    const double q = svc.exit_probability(phase);
    if (q > 0.0) {
      if (n == 1) {
        act.completion.push_back({0, q});  // station drains to its empty state
      } else {
        // next customer starts service: starting phase from the entrance
        // vector
        for (std::size_t j = 0; j < m; ++j) {
          const double pj = svc.entry()[j];
          if (pj > 0.0) act.completion.push_back({j, q * pj});
        }
      }
    }
    acts.push_back(std::move(act));
    return acts;
  }

  // single-phase station, ample or queued with multiplicity c
  const std::size_t busy = std::min(n, station_.multiplicity);
  LocalActivity act;
  act.rate = static_cast<double>(busy) * svc.phase_rate(0);
  const double self = svc.jump_probability(0, 0);
  if (self > 0.0) act.internal.push_back({0, self});
  const double q = svc.exit_probability(0);
  if (q > 0.0) act.completion.push_back({0, q});
  acts.push_back(std::move(act));
  return acts;
}

std::vector<LocalOutcome> StationModel::arrival(std::size_t n,
                                                std::size_t idx) const {
  if (n >= max_pop_ || idx >= counts_[n]) {
    throw std::out_of_range("StationModel::arrival");
  }
  const ph::PhaseType& svc = station_.service;
  const std::size_t m = svc.phases();
  std::vector<LocalOutcome> out;

  if (ample_ && m > 1) {
    const std::vector<std::size_t>& alpha = comps_[n][idx];
    for (std::size_t i = 0; i < m; ++i) {
      const double pi = svc.entry()[i];
      if (pi <= 0.0) continue;
      std::vector<std::size_t> next = alpha;
      ++next[i];
      out.push_back({comp_index(next), pi});
    }
    return out;
  }

  if (!ample_ && m > 1) {
    if (n == 0) {
      // arrival starts service immediately; phase from the entrance vector
      for (std::size_t i = 0; i < m; ++i) {
        const double pi = svc.entry()[i];
        if (pi > 0.0) out.push_back({i, pi});
      }
    } else {
      out.push_back({idx, 1.0});  // joins the queue; in-service phase unchanged
    }
    return out;
  }

  out.push_back({0, 1.0});
  return out;
}

std::vector<std::size_t> StationModel::phase_counts(std::size_t n,
                                                    std::size_t idx) const {
  if (n > max_pop_ || idx >= counts_[n]) {
    throw std::out_of_range("StationModel::phase_counts");
  }
  const std::size_t m = station_.service.phases();
  std::vector<std::size_t> counts(m, 0);
  if (n == 0) return counts;
  if (ample_ && m > 1) return comps_[n][idx];
  if (!ample_ && m > 1) {
    counts[idx] = 1;  // the in-service customer
    return counts;
  }
  counts[0] = std::min(n, station_.multiplicity);
  return counts;
}

std::string StationModel::describe(std::size_t n, std::size_t idx) const {
  std::ostringstream ss;
  const std::size_t m = station_.service.phases();
  if (ample_ && m > 1) {
    ss << '(';
    const auto& alpha = comps_[n][idx];
    for (std::size_t i = 0; i < alpha.size(); ++i) {
      if (i) ss << ',';
      ss << alpha[i];
    }
    ss << ')';
  } else if (!ample_ && m > 1) {
    ss << "n=" << n;
    if (n > 0) ss << " ph=" << idx;
  } else {
    ss << "n=" << n;
  }
  return ss.str();
}

}  // namespace finwork::net
