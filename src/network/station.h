#pragma once
// A station is one service device of the network (CPU bank, disk, channel).
// StationModel turns a station description into the *local* state machinery
// the reduced-product builder composes:
//
//   * ample stations (multiplicity >= population bound) — every customer has
//     its own server, so the phase counts (alpha_1..alpha_m) are a sufficient
//     local state; phase i completes at rate alpha_i * mu_i.  This is the
//     paper's "replace the server by m exponential stages" rule, which is
//     exact exactly in this case.
//   * queued exponential stations (1 phase, any multiplicity c) — local state
//     is the customer count n; service completes at rate min(n, c) * mu.
//   * queued single-server PH stations (multiplicity 1, m > 1 phases) — local
//     state is (n, phase of the in-service customer); on a completion with
//     n > 1 the next customer's starting phase is drawn from the entrance
//     vector.  This is the exact FCFS PH/./1 embedding (see DESIGN.md §3).
//
// Multi-server (1 < c < population) stations with more than one phase are
// rejected: their exact state space needs per-server phases, which the paper
// never uses.

#include <cstddef>
#include <string>
#include <vector>

#include "ph/phase_type.h"

namespace finwork::net {

/// Station description: name, service-time distribution, number of parallel
/// servers.  Use multiplicity >= the max population for dedicated devices.
struct Station {
  std::string name;
  ph::PhaseType service;
  std::size_t multiplicity = 1;
};

/// A probability-weighted local-state outcome.  `index` refers to a local
/// state at the population implied by context (same n for internal moves,
/// n-1 for completions, n+1 for arrivals).
struct LocalOutcome {
  std::size_t index = 0;
  double probability = 0.0;
};

/// One exponential activity of a local state: a Poisson event stream; when
/// the event fires the station either moves internally (customer count
/// unchanged) or completes one customer's service.  Internal and completion
/// probabilities sum to 1.
struct LocalActivity {
  double rate = 0.0;
  std::vector<LocalOutcome> internal;    ///< targets with n customers
  std::vector<LocalOutcome> completion;  ///< targets with n-1 customers
};

/// Expanded per-station state machinery for populations 0..max_population.
class StationModel {
 public:
  StationModel(Station station, std::size_t max_population);

  [[nodiscard]] const Station& station() const noexcept { return station_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return station_.name;
  }
  [[nodiscard]] std::size_t max_population() const noexcept { return max_pop_; }
  /// True when every customer present is always in service (no queueing).
  [[nodiscard]] bool is_ample() const noexcept { return ample_; }

  /// Number of local states with n customers present.
  [[nodiscard]] std::size_t count(std::size_t n) const;
  /// Sum of count(n') for n' < n: offset of the n-block in the local code.
  [[nodiscard]] std::size_t code_offset(std::size_t n) const;
  /// Total number of local codes (all n in 0..max_population).
  [[nodiscard]] std::size_t total_codes() const;
  /// Decode a local code into (n, index).
  [[nodiscard]] std::pair<std::size_t, std::size_t> decode(std::size_t code) const;

  /// Activities of local state (n, idx).  Empty when n == 0.
  [[nodiscard]] std::vector<LocalActivity> activities(std::size_t n,
                                                      std::size_t idx) const;
  /// Where an arriving customer lands: outcomes over states with n+1
  /// customers, given current state (n, idx).
  [[nodiscard]] std::vector<LocalOutcome> arrival(std::size_t n,
                                                  std::size_t idx) const;

  /// Per-phase counts of the customers currently *in service* in local state
  /// (n, idx); size is service.phases().  Waiting customers (possible only at
  /// queued stations) have no phase and are n minus the sum of the counts.
  [[nodiscard]] std::vector<std::size_t> phase_counts(std::size_t n,
                                                      std::size_t idx) const;
  /// Human-readable description of a local state, e.g. "(2,0,1)" or "n=3 ph=1".
  [[nodiscard]] std::string describe(std::size_t n, std::size_t idx) const;

 private:
  Station station_;
  std::size_t max_pop_;
  bool ample_;

  // Ample stations: compositions of n into m phases, per n, in enumeration
  // order; comp_index_ maps a composition to its index within its n-block.
  std::vector<std::vector<std::vector<std::size_t>>> comps_;
  [[nodiscard]] std::size_t comp_index(const std::vector<std::size_t>& c) const;

  std::vector<std::size_t> counts_;   // count(n)
  std::vector<std::size_t> offsets_;  // code_offset(n)
};

}  // namespace finwork::net
