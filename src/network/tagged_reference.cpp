#include "network/tagged_reference.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/lu.h"

namespace finwork::net {

namespace {

/// Per-task location code: one slot per (station, phase), plus "done".
struct CodeBook {
  std::vector<std::size_t> station_of;  // code -> station
  std::vector<std::size_t> phase_of;    // code -> phase within station
  std::vector<std::size_t> first_code;  // station -> first code
  std::size_t done = 0;                 // the departed slot

  explicit CodeBook(const NetworkSpec& spec) {
    for (std::size_t j = 0; j < spec.num_stations(); ++j) {
      first_code.push_back(station_of.size());
      for (std::size_t i = 0; i < spec.station(j).service.phases(); ++i) {
        station_of.push_back(j);
        phase_of.push_back(i);
      }
    }
    done = station_of.size();
  }
  [[nodiscard]] std::size_t size() const { return done + 1; }
};

}  // namespace

TaggedReferenceResult tagged_reference(const NetworkSpec& spec,
                                       std::size_t population) {
  if (population == 0) {
    throw std::invalid_argument("tagged_reference: population must be >= 1");
  }
  for (std::size_t j = 0; j < spec.num_stations(); ++j) {
    const Station& st = spec.station(j);
    if (st.multiplicity < population && st.service.phases() > 1) {
      throw std::invalid_argument(
          "tagged_reference: queued stations must be exponential (station '" +
          st.name + "')");
    }
  }

  const CodeBook book(spec);
  const std::size_t codes = book.size();
  double space = std::pow(static_cast<double>(codes),
                          static_cast<double>(population));
  if (space > 200000.0) {
    throw std::invalid_argument("tagged_reference: state space too large");
  }
  const auto total = static_cast<std::size_t>(space + 0.5);

  // State index = sum_t code_t * codes^t (mixed radix).
  std::vector<std::size_t> digits(population);
  const auto decode = [&](std::size_t s) {
    for (std::size_t t = 0; t < population; ++t) {
      digits[t] = s % codes;
      s /= codes;
    }
  };
  std::vector<std::size_t> pow_codes(population, 1);
  for (std::size_t t = 1; t < population; ++t) {
    pow_codes[t] = pow_codes[t - 1] * codes;
  }

  // Build the embedded-chain data for the two absorbing problems.  For each
  // state: total event rate and the transition distribution.  We assemble
  // the dense linear systems (I - P) tau = M^-1 eps restricted to transient
  // states; "first departure" treats any done-task as absorbing, "makespan"
  // absorbs only when every task is done.
  struct Move {
    std::size_t target;
    double probability;
  };

  const la::Matrix& routing = spec.routing();
  const la::Vector& sys_exit = spec.exit();

  const auto transitions_of = [&](std::size_t s, double& total_rate) {
    decode(s);
    std::vector<Move> moves;
    // occupancy per station
    std::vector<std::size_t> occ(spec.num_stations(), 0);
    for (std::size_t t = 0; t < population; ++t) {
      if (digits[t] != book.done) ++occ[book.station_of[digits[t]]];
    }
    total_rate = 0.0;
    for (std::size_t t = 0; t < population; ++t) {
      const std::size_t code = digits[t];
      if (code == book.done) continue;
      const std::size_t j = book.station_of[code];
      const std::size_t i = book.phase_of[code];
      const Station& st = spec.station(j);
      const ph::PhaseType& svc = st.service;
      double rate;
      if (st.multiplicity >= population) {
        rate = svc.phase_rate(i);  // dedicated: everyone served
      } else {
        // shared exponential, random-order equivalence
        const double busy =
            static_cast<double>(std::min(occ[j], st.multiplicity));
        rate = busy * svc.phase_rate(i) / static_cast<double>(occ[j]);
      }
      total_rate += rate;

      const auto move_to = [&](std::size_t new_code, double prob) {
        if (prob <= 0.0) return;
        const std::size_t target =
            s + (new_code - code) * pow_codes[t];
        moves.push_back({target, rate * prob});
      };
      // internal phase jumps
      for (std::size_t i2 = 0; i2 < svc.phases(); ++i2) {
        move_to(book.first_code[j] + i2, svc.jump_probability(i, i2));
      }
      // completion: route onward or leave
      const double q = svc.exit_probability(i);
      if (q > 0.0) {
        for (std::size_t l = 0; l < spec.num_stations(); ++l) {
          const double rjl = routing(j, l);
          if (rjl <= 0.0) continue;
          const ph::PhaseType& dst = spec.station(l).service;
          for (std::size_t i2 = 0; i2 < dst.phases(); ++i2) {
            move_to(book.first_code[l] + i2,
                    q * rjl * dst.entry()[i2]);
          }
        }
        move_to(book.done, q * sys_exit[j]);
      }
    }
    // normalize to probabilities
    for (Move& m : moves) m.probability /= total_rate;
    return moves;
  };

  const auto count_done = [&](std::size_t s) {
    decode(s);
    std::size_t done = 0;
    for (std::size_t t = 0; t < population; ++t) {
      if (digits[t] == book.done) ++done;
    }
    return done;
  };

  // Mean absorption time with a caller-chosen absorbing predicate, by dense
  // solve over the transient states.
  const auto mean_absorption = [&](auto&& absorbing) {
    std::vector<std::size_t> transient;
    std::vector<std::ptrdiff_t> index(total, -1);
    for (std::size_t s = 0; s < total; ++s) {
      if (!absorbing(s)) {
        index[s] = static_cast<std::ptrdiff_t>(transient.size());
        transient.push_back(s);
      }
    }
    const std::size_t n = transient.size();
    la::Matrix a = la::identity(n);
    la::Vector rhs(n);
    for (std::size_t r = 0; r < n; ++r) {
      double total_rate = 0.0;
      const auto moves = transitions_of(transient[r], total_rate);
      rhs[r] = 1.0 / total_rate;
      for (const Move& m : moves) {
        if (index[m.target] >= 0) {
          a(r, static_cast<std::size_t>(index[m.target])) -= m.probability;
        }
      }
    }
    const la::Vector tau = la::LuDecomposition(a).solve(rhs);
    // Average over the product entry distribution.
    double mean = 0.0;
    const auto accumulate_entry = [&](auto&& self, std::size_t task,
                                      std::size_t state,
                                      double prob) -> void {
      if (prob == 0.0) return;
      if (task == population) {
        if (index[state] >= 0) {
          mean += prob * tau[static_cast<std::size_t>(index[state])];
        }
        return;
      }
      for (std::size_t l = 0; l < spec.num_stations(); ++l) {
        const double pl = spec.entry()[l];
        if (pl <= 0.0) continue;
        const ph::PhaseType& svc = spec.station(l).service;
        for (std::size_t i = 0; i < svc.phases(); ++i) {
          const double pe = svc.entry()[i];
          if (pe <= 0.0) continue;
          self(self, task + 1,
               state + (book.first_code[l] + i) * pow_codes[task],
               prob * pl * pe);
        }
      }
    };
    accumulate_entry(accumulate_entry, 0, 0, 1.0);
    return mean;
  };

  TaggedReferenceResult result;
  result.states = total;
  result.first_departure =
      mean_absorption([&](std::size_t s) { return count_done(s) >= 1; });
  result.makespan = mean_absorption(
      [&](std::size_t s) { return count_done(s) == population; });
  return result;
}

}  // namespace finwork::net
