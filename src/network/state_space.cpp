#include "network/state_space.h"

#include <future>
#include <sstream>
#include <stdexcept>

#include "check/invariants.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace finwork::net {

StateSpace::StateSpace(const NetworkSpec& spec, std::size_t max_population)
    : spec_(spec), max_pop_(max_population) {
  if (max_pop_ == 0) {
    throw std::invalid_argument("StateSpace: population must be >= 1");
  }
  models_.reserve(spec_.num_stations());
  for (std::size_t j = 0; j < spec_.num_stations(); ++j) {
    models_.emplace_back(spec_.station(j), max_pop_);
  }
  level_states_.resize(max_pop_ + 1);
  level_index_.resize(max_pop_ + 1);
  level_matrices_.resize(max_pop_ + 1);
  level_once_ = std::make_unique<std::once_flag[]>(max_pop_ + 1);
  {
    const obs::ObsSpan span("state_space/enumerate");
    for (std::size_t k = 0; k <= max_pop_; ++k) enumerate_level(k);
  }
  if constexpr (obs::kEnabled) {
    std::uint64_t total = 0;
    for (const auto& states : level_states_) total += states.size();
    obs::counter_add(obs::Counter::kStatesEnumerated, total);
  }
}

void StateSpace::enumerate_level(std::size_t k) {
  const std::size_t s = models_.size();
  std::vector<GlobalState>& out = level_states_[k];
  GlobalState current(s, 0);

  // Distribute k customers over stations recursively; for each station count,
  // iterate its local states.
  auto recurse = [&](auto&& self, std::size_t station,
                     std::size_t remaining) -> void {
    if (station == s - 1) {
      if (remaining > max_pop_) return;
      const std::size_t cnt = models_[station].count(remaining);
      const std::size_t base = models_[station].code_offset(remaining);
      for (std::size_t idx = 0; idx < cnt; ++idx) {
        current[station] = static_cast<std::uint32_t>(base + idx);
        out.push_back(current);
      }
      return;
    }
    for (std::size_t n = 0; n <= remaining; ++n) {
      const std::size_t cnt = models_[station].count(n);
      const std::size_t base = models_[station].code_offset(n);
      for (std::size_t idx = 0; idx < cnt; ++idx) {
        current[station] = static_cast<std::uint32_t>(base + idx);
        self(self, station + 1, remaining - n);
      }
    }
  };
  recurse(recurse, 0, k);

  auto& index = level_index_[k];
  index.reserve(out.size() * 2);
  for (std::size_t i = 0; i < out.size(); ++i) index.emplace(out[i], i);
}

std::size_t StateSpace::dimension(std::size_t k) const {
  if (k > max_pop_) throw std::out_of_range("StateSpace::dimension");
  return level_states_[k].size();
}

const std::vector<GlobalState>& StateSpace::states(std::size_t k) const {
  if (k > max_pop_) throw std::out_of_range("StateSpace::states");
  return level_states_[k];
}

std::size_t StateSpace::index_of(std::size_t k, const GlobalState& s) const {
  const auto& index = level_index_.at(k);
  const auto it = index.find(s);
  if (it == index.end()) {
    throw std::out_of_range("StateSpace::index_of: unknown state");
  }
  return it->second;
}

std::vector<std::size_t> StateSpace::occupancy(std::size_t k,
                                               std::size_t idx) const {
  const GlobalState& s = states(k).at(idx);
  std::vector<std::size_t> occ(models_.size());
  for (std::size_t j = 0; j < models_.size(); ++j) {
    occ[j] = models_[j].decode(s[j]).first;
  }
  return occ;
}

std::string StateSpace::describe(std::size_t k, std::size_t idx) const {
  const GlobalState& s = states(k).at(idx);
  std::ostringstream ss;
  for (std::size_t j = 0; j < models_.size(); ++j) {
    if (j) ss << " | ";
    const auto [n, local] = models_[j].decode(s[j]);
    ss << models_[j].name() << ' ' << models_[j].describe(n, local);
  }
  return ss.str();
}

const LevelMatrices& StateSpace::level(std::size_t k) const {
  if (k == 0 || k > max_pop_) throw std::out_of_range("StateSpace::level");
  std::call_once(level_once_[k], [&] { build_level(k); });
  return level_matrices_[k];
}

void StateSpace::build_level(std::size_t k) const {
  const obs::ObsSpan span("state_space/build_level");
  obs::counter_add(obs::Counter::kLevelsBuilt);
  obs::gauge_raise(obs::Gauge::kMaxLevelDimension, level_states_[k].size());
  const std::size_t s = models_.size();
  const auto& states_k = level_states_[k];
  const auto& index_k = level_index_[k];
  const auto& index_km1 = level_index_[k - 1];
  const la::Matrix& routing = spec_.routing();
  const la::Vector& sys_exit = spec_.exit();
  const la::Vector& sys_entry = spec_.entry();

  LevelMatrices lm;
  lm.level = k;
  lm.event_rates = la::Vector(states_k.size(), 0.0);

  // Per-state transition assembly is embarrassingly parallel: each worker
  // fills its own triplet buffers (CsrMatrix sorts on construction, so
  // buffer order is irrelevant) and writes disjoint event_rates entries.
  const auto process_range = [&](std::size_t begin, std::size_t end,
                                 std::vector<la::Triplet>& p_trips,
                                 std::vector<la::Triplet>& q_trips) {
  for (std::size_t is = begin; is < end; ++is) {
    const GlobalState& state = states_k[is];

    // Gather activities across stations and the total event rate.
    double total_rate = 0.0;
    struct Act {
      std::size_t station;
      std::size_t n;
      LocalActivity activity;
    };
    std::vector<Act> acts;
    for (std::size_t j = 0; j < s; ++j) {
      const auto [n, local] = models_[j].decode(state[j]);
      if (n == 0) continue;
      for (LocalActivity& a : models_[j].activities(n, local)) {
        total_rate += a.rate;
        acts.push_back({j, n, std::move(a)});
      }
    }
    if (total_rate <= 0.0) {
      throw std::logic_error("StateSpace: state with no outgoing activity");
    }
    lm.event_rates[is] = total_rate;

    for (const Act& act : acts) {
      const std::size_t j = act.station;
      const double event_prob = act.activity.rate / total_rate;

      // Internal phase move within station j: population unchanged.
      for (const LocalOutcome& o : act.activity.internal) {
        GlobalState next = state;
        next[j] = static_cast<std::uint32_t>(models_[j].code_offset(act.n) +
                                             o.index);
        p_trips.push_back(
            {is, index_k.at(next), event_prob * o.probability});
      }

      // Service completion at station j: the customer routes onward.
      for (const LocalOutcome& done : act.activity.completion) {
        GlobalState after = state;
        after[j] = static_cast<std::uint32_t>(
            models_[j].code_offset(act.n - 1) + done.index);
        const double base = event_prob * done.probability;

        // Move to station l (population stays k): arrival applied on top of
        // the post-completion state (handles l == j correctly).
        for (std::size_t l = 0; l < s; ++l) {
          const double rjl = routing(j, l);
          if (rjl <= 0.0) continue;
          const auto [nl, locall] = models_[l].decode(after[l]);
          for (const LocalOutcome& arr : models_[l].arrival(nl, locall)) {
            GlobalState next = after;
            next[l] = static_cast<std::uint32_t>(
                models_[l].code_offset(nl + 1) + arr.index);
            p_trips.push_back(
                {is, index_k.at(next), base * rjl * arr.probability});
          }
        }
        // Leave the system: level drops to k-1.
        const double qj = sys_exit[j];
        if (qj > 0.0) {
          q_trips.push_back({is, index_km1.at(after), base * qj});
        }
      }
    }
  }
  };  // process_range

  std::vector<la::Triplet> p_trips;
  std::vector<la::Triplet> q_trips;
  const std::size_t d = states_k.size();
  constexpr std::size_t kParallelThreshold = 4096;
  // Stay serial on a pool worker: a chunked submit-and-wait from inside a
  // pool task can deadlock once every worker is blocked on queued subtasks.
  if (d < kParallelThreshold || par::ThreadPool::on_worker_thread()) {
    process_range(0, d, p_trips, q_trips);
  } else {
    par::ThreadPool& pool = par::ThreadPool::global();
    const std::size_t chunks = std::min<std::size_t>(pool.size() * 4,
                                                     (d + 1023) / 1024);
    const std::size_t step = (d + chunks - 1) / chunks;
    struct Buffers {
      std::vector<la::Triplet> p;
      std::vector<la::Triplet> q;
    };
    std::vector<std::future<Buffers>> futures;
    for (std::size_t lo = 0; lo < d; lo += step) {
      const std::size_t hi = std::min(d, lo + step);
      futures.push_back(pool.submit([&, lo, hi] {
        Buffers buf;
        process_range(lo, hi, buf.p, buf.q);
        return buf;
      }));
    }
    for (auto& f : futures) {
      Buffers buf = f.get();
      p_trips.insert(p_trips.end(), buf.p.begin(), buf.p.end());
      q_trips.insert(q_trips.end(), buf.q.begin(), buf.q.end());
    }
  }

  for (std::size_t i = 0; i < lm.event_rates.size(); ++i) {
    lm.max_event_rate = std::max(lm.max_event_rate, lm.event_rates[i]);
  }

  lm.p = la::CsrMatrix(states_k.size(), states_k.size(), std::move(p_trips));
  lm.q = la::CsrMatrix(states_k.size(), level_states_[k - 1].size(),
                       std::move(q_trips));

  // R_k: a new task enters the system at station l ~ sys_entry.
  std::vector<la::Triplet> r_trips;
  const auto& states_km1 = level_states_[k - 1];
  for (std::size_t is = 0; is < states_km1.size(); ++is) {
    const GlobalState& state = states_km1[is];
    for (std::size_t l = 0; l < s; ++l) {
      const double pl = sys_entry[l];
      if (pl <= 0.0) continue;
      const auto [nl, locall] = models_[l].decode(state[l]);
      for (const LocalOutcome& arr : models_[l].arrival(nl, locall)) {
        GlobalState next = state;
        next[l] = static_cast<std::uint32_t>(models_[l].code_offset(nl + 1) +
                                             arr.index);
        r_trips.push_back({is, index_k.at(next), pl * arr.probability});
      }
    }
  }
  lm.r = la::CsrMatrix(states_km1.size(), states_k.size(), std::move(r_trips));

  // The LAQT recursion assumes these laws; a violation here means the
  // assembly above is wrong, not the solver downstream.
  if constexpr (check::kEnabled) {
    check::check_positive_rates(lm.event_rates, "M_k", k);
    check::check_substochastic(lm.p, "P_k", k);
    check::check_level_flow(lm.p, lm.q, k);
    check::check_stochastic(lm.r, "R_k", k);
  }

  level_matrices_[k] = std::move(lm);
}

la::Vector StateSpace::initial_vector(std::size_t k) const {
  if (k == 0 || k > max_pop_) {
    throw std::out_of_range("StateSpace::initial_vector");
  }
  // Stream tasks in one at a time from the empty system: pi_0 = [1] on the
  // unique empty state, pi_j = pi_{j-1} R_j.
  la::Vector pi(1, 1.0);
  for (std::size_t j = 1; j <= k; ++j) {
    pi = level(j).r.apply_left(pi);
  }
  if constexpr (check::kEnabled) {
    check::check_probability_vector(pi, "p_k (initial vector)", k);
  }
  return pi;
}

std::size_t StateSpace::reduced_product_dimension(std::size_t stations,
                                                  std::size_t customers) {
  // C(stations + customers - 1, customers), computed stably in integers.
  std::size_t result = 1;
  for (std::size_t i = 1; i <= customers; ++i) {
    result = result * (stations - 1 + i) / i;
  }
  return result;
}

}  // namespace finwork::net
