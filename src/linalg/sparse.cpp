#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>

#include "obs/counters.h"

namespace finwork::la {

namespace {

/// Below this many stored entries the dispatch overhead of a panel fan-out
/// exceeds the SpMV itself; stay serial.
constexpr std::size_t kParallelNnzThreshold = 1 << 15;

/// Fixed row-panel boundaries for a pool of `workers` threads: a pure
/// function of (rows, workers), so repeated runs on the same pool split the
/// same way and stay deterministic.
std::vector<std::size_t> panel_bounds(std::size_t rows, std::size_t workers) {
  const std::size_t panels =
      std::max<std::size_t>(1, std::min(workers * 2, rows / 512));
  const std::size_t step = (rows + panels - 1) / panels;
  std::vector<std::size_t> bounds{0};
  for (std::size_t lo = 0; lo < rows; lo += step) {
    bounds.push_back(std::min(rows, lo + step));
  }
  return bounds;
}

}  // namespace

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      double v = triplets[i].value;
      const std::size_t c = triplets[i].col;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) {
        col_idx_.push_back(c);
        values_.push_back(v);
      }
    }
    row_ptr_[r + 1] = values_.size();
  }
}

Vector CsrMatrix::apply(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CSR apply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[r] = s;
  }
  return y;
}

Vector CsrMatrix::apply_left(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CSR apply_left: size mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += xr * values_[k];
    }
  }
  return y;
}

void CsrMatrix::apply_left_add(const Vector& x, Vector& y) const {
  if (x.size() != rows_ || y.size() != cols_) {
    throw std::invalid_argument("CSR apply_left_add: size mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += xr * values_[k];
    }
  }
}

Vector CsrMatrix::apply_parallel(const Vector& x, par::ThreadPool& pool) const {
  if (x.size() != cols_) throw std::invalid_argument("CSR apply: size mismatch");
  if (values_.size() < kParallelNnzThreshold || pool.size() <= 1 ||
      par::ThreadPool::on_worker_thread()) {
    return apply(x);
  }
  const std::vector<std::size_t> bounds = panel_bounds(rows_, pool.size());
  const std::size_t panels = bounds.size() - 1;
  if (panels <= 1) return apply(x);
  obs::counter_add(obs::Counter::kParallelSpmvChunks, panels);
  Vector y(rows_, 0.0);
  std::vector<std::future<void>> futures;
  futures.reserve(panels);
  for (std::size_t p = 0; p < panels; ++p) {
    futures.push_back(pool.submit([&, lo = bounds[p], hi = bounds[p + 1]] {
      for (std::size_t r = lo; r < hi; ++r) {
        double s = 0.0;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          s += values_[k] * x[col_idx_[k]];
        }
        y[r] = s;
      }
    }));
  }
  for (auto& f : futures) f.get();
  return y;
}

Vector CsrMatrix::apply_left_parallel(const Vector& x,
                                      par::ThreadPool& pool) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CSR apply_left: size mismatch");
  }
  if (values_.size() < kParallelNnzThreshold || pool.size() <= 1 ||
      par::ThreadPool::on_worker_thread()) {
    return apply_left(x);
  }
  const std::vector<std::size_t> bounds = panel_bounds(rows_, pool.size());
  const std::size_t panels = bounds.size() - 1;
  if (panels <= 1) return apply_left(x);
  obs::counter_add(obs::Counter::kParallelSpmvChunks, panels);
  // Scatter into per-panel accumulators, then merge in ascending panel
  // order: deterministic because the panel split and the merge order are
  // both fixed.
  std::vector<Vector> partial(panels);
  std::vector<std::future<void>> futures;
  futures.reserve(panels);
  for (std::size_t p = 0; p < panels; ++p) {
    futures.push_back(pool.submit([&, p, lo = bounds[p], hi = bounds[p + 1]] {
      Vector local(cols_, 0.0);
      for (std::size_t r = lo; r < hi; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
          local[col_idx_[k]] += xr * values_[k];
        }
      }
      partial[p] = std::move(local);
    }));
  }
  for (auto& f : futures) f.get();
  Vector y = std::move(partial[0]);
  for (std::size_t p = 1; p < panels; ++p) y += partial[p];
  return y;
}

Vector CsrMatrix::row_sums() const {
  Vector s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s[r] += values_[k];
    }
  }
  return s;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CSR at: out of range");
  const auto first = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

double CsrMatrix::norm_inf() const noexcept {
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += std::abs(values_[k]);
    }
    m = std::max(m, s);
  }
  return m;
}

CsrMatrix to_csr(const Matrix& a, double drop_tol) {
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c)) > drop_tol) trips.push_back({r, c, a(r, c)});
    }
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(trips));
}

}  // namespace finwork::la
