#include "linalg/sparse.h"

#include <algorithm>
#include <stdexcept>

namespace finwork::la {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("CsrMatrix: triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows + 1, 0);
  col_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      double v = triplets[i].value;
      const std::size_t c = triplets[i].col;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) {
        col_idx_.push_back(c);
        values_.push_back(v);
      }
    }
    row_ptr_[r + 1] = values_.size();
  }
}

Vector CsrMatrix::apply(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CSR apply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[r] = s;
  }
  return y;
}

Vector CsrMatrix::apply_left(const Vector& x) const {
  if (x.size() != rows_) {
    throw std::invalid_argument("CSR apply_left: size mismatch");
  }
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += xr * values_[k];
    }
  }
  return y;
}

Vector CsrMatrix::row_sums() const {
  Vector s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s[r] += values_[k];
    }
  }
  return s;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CSR at: out of range");
  const auto first = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

double CsrMatrix::norm_inf() const noexcept {
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += std::abs(values_[k]);
    }
    m = std::max(m, s);
  }
  return m;
}

CsrMatrix to_csr(const Matrix& a, double drop_tol) {
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c)) > drop_tol) trips.push_back({r, c, a(r, c)});
    }
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(trips));
}

}  // namespace finwork::la
