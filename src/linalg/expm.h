#pragma once
// Matrix exponential via Padé(13) with scaling and squaring, and the action
// exp(tA) applied to a row vector via uniformization for generator-like
// matrices.  Needed for PH distribution functions F(t) = 1 - p exp(-tB) eps.

#include "linalg/matrix.h"

namespace finwork::la {

/// exp(A) for a square matrix, Higham's scaling-and-squaring Padé(13)
/// approximant (the algorithm behind expm in MATLAB/SciPy, simplified to
/// always use the degree-13 approximant).
[[nodiscard]] Matrix expm(const Matrix& a);

/// Row-vector action x * exp(tA) computed by uniformization.  `a` must have
/// non-negative off-diagonal entries and non-positive row sums up to `tol`
/// (i.e. be a sub-generator, like -B for a PH matrix).  This never forms
/// exp(tA) and is stable for large state spaces.
[[nodiscard]] Vector expm_action_left(const Vector& x, const Matrix& a,
                                      double t, double tol = 1e-13);

}  // namespace finwork::la
