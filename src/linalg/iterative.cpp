#include "linalg/iterative.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "check/fault_inject.h"
#include "linalg/solver_error.h"
#include "obs/counters.h"

namespace finwork::la {

IterativeResult neumann_solve_left(const RowOperator& apply_p, const Vector& b,
                                   double tol, std::size_t max_iter) {
  IterativeResult res;
  res.x = b;
  if (check::fault_at("iterative/neumann")) {
    // Injected non-convergence: report failure exactly as an exhausted
    // iteration cap would, so callers exercise their real fallback path.
    res.residual = b.norm_inf();
    return res;
  }
  Vector term = b;
  for (std::size_t n = 1; n <= max_iter; ++n) {
    term = apply_p(term);
    res.x += term;
    res.iterations = n;
    const double t = term.norm_inf();
    if (t < tol) {
      res.converged = true;
      res.residual = t;
      obs::counter_add(obs::Counter::kNeumannIterations, res.iterations);
      return res;
    }
  }
  res.residual = term.norm_inf();
  obs::counter_add(obs::Counter::kNeumannIterations, res.iterations);
  return res;
}

IterativeResult bicgstab_left(const RowOperator& apply_a, const Vector& b,
                              double tol, std::size_t max_iter) {
  IterativeResult res;
  const std::size_t n = b.size();
  res.x = Vector(n, 0.0);
  if (check::fault_at("iterative/bicgstab")) {
    res.residual = b.norm2();
    return res;
  }
  Vector r = b;  // r = b - x A with x = 0
  Vector r_hat = r;
  Vector p(n, 0.0);
  Vector v(n, 0.0);
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  const double bnorm = std::max(b.norm2(), 1e-300);

  // Restart the recurrence (r_hat <- r) when the BiCG coefficients become
  // numerically degenerate instead of giving up — standard stabilization for
  // nearly-converged or unlucky shadow residuals.
  auto restart = [&] {
    r_hat = r;
    p.fill(0.0);
    v.fill(0.0);
    rho = alpha = omega = 1.0;
  };

  for (std::size_t k = 1; k <= max_iter; ++k) {
    double rho_next = dot(r_hat, r);
    if (std::abs(rho_next) < 1e-30 * r.norm2() * r_hat.norm2() + 1e-300) {
      restart();
      rho_next = dot(r_hat, r);
      if (std::abs(rho_next) < 1e-300) break;  // true breakdown: r ~ 0
    }
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    // p = r + beta (p - omega v)
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    v = apply_a(p);
    const double rhv = dot(r_hat, v);
    if (std::abs(rhv) < 1e-300) {
      restart();
      continue;
    }
    alpha = rho / rhv;
    Vector s = r;
    axpy(-alpha, v, s);
    if (s.norm2() / bnorm < tol) {
      axpy(alpha, p, res.x);
      res.iterations = k;
      res.converged = true;
      res.residual = s.norm2() / bnorm;
      obs::counter_add(obs::Counter::kBicgstabIterations, res.iterations);
      return res;
    }
    const Vector t = apply_a(s);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    axpy(alpha, p, res.x);
    axpy(omega, s, res.x);
    r = s;
    axpy(-omega, t, r);
    res.iterations = k;
    const double rel = r.norm2() / bnorm;
    res.residual = rel;
    if (rel < tol) {
      res.converged = true;
      obs::counter_add(obs::Counter::kBicgstabIterations, res.iterations);
      return res;
    }
    if (std::abs(omega) < 1e-300) restart();
  }
  obs::counter_add(obs::Counter::kBicgstabIterations, res.iterations);
  return res;
}

IterativeResult gmres_left(const RowOperator& apply_a, const Vector& b,
                           double tol, std::size_t max_iter,
                           std::size_t restart) {
  IterativeResult res;
  const std::size_t n = b.size();
  res.x = Vector(n, 0.0);
  if (check::fault_at("iterative/gmres")) {
    res.residual = b.norm2();
    return res;
  }
  const double bnorm = std::max(b.norm2(), 1e-300);
  const std::size_t m = std::max<std::size_t>(1, std::min(restart, n));
  // Column-major Hessenberg: h(i, j) = h[j * (m + 1) + i].
  std::vector<double> h((m + 1) * m, 0.0);
  std::vector<double> cs(m, 0.0);
  std::vector<double> sn(m, 0.0);
  std::vector<double> g(m + 1, 0.0);
  std::vector<Vector> basis;
  basis.reserve(m + 1);

  std::size_t applied = 0;
  while (applied < max_iter) {
    // r = b - x A; the restart residual is exact, not recurrence-drifted.
    Vector r = apply_a(res.x);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double beta = r.norm2();
    res.residual = beta / bnorm;
    if (res.residual < tol) {
      res.converged = true;
      obs::counter_add(obs::Counter::kGmresIterations, applied);
      return res;
    }
    std::fill(h.begin(), h.end(), 0.0);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    basis.clear();
    r /= beta;
    basis.push_back(std::move(r));

    // Arnoldi with modified Gram-Schmidt, the Hessenberg kept triangular by
    // Givens rotations so the least-squares residual |g[j+1]| is free.
    std::size_t cols = 0;
    bool breakdown = false;
    for (std::size_t j = 0; j < m && applied < max_iter; ++j) {
      Vector w = apply_a(basis[j]);
      ++applied;
      for (std::size_t i = 0; i <= j; ++i) {
        const double hij = dot(w, basis[i]);
        h[j * (m + 1) + i] = hij;
        axpy(-hij, basis[i], w);
      }
      const double hnext = w.norm2();
      for (std::size_t i = 0; i < j; ++i) {
        const double t =
            cs[i] * h[j * (m + 1) + i] + sn[i] * h[j * (m + 1) + i + 1];
        h[j * (m + 1) + i + 1] =
            -sn[i] * h[j * (m + 1) + i] + cs[i] * h[j * (m + 1) + i + 1];
        h[j * (m + 1) + i] = t;
      }
      const double denom = std::hypot(h[j * (m + 1) + j], hnext);
      if (denom < 1e-300) {
        breakdown = true;  // zero column: nothing more in this Krylov space
        break;
      }
      cs[j] = h[j * (m + 1) + j] / denom;
      sn[j] = hnext / denom;
      h[j * (m + 1) + j] = denom;
      g[j + 1] = -sn[j] * g[j];
      g[j] *= cs[j];
      cols = j + 1;
      if (std::abs(g[j + 1]) / bnorm < tol || hnext < 1e-300) {
        breakdown = hnext < 1e-300;  // happy breakdown: solution is exact
        break;
      }
      w /= hnext;
      basis.push_back(std::move(w));
    }
    // Back-substitute y from the triangularized H and accumulate x.
    std::vector<double> y(cols, 0.0);
    for (std::size_t i = cols; i-- > 0;) {
      double s = g[i];
      for (std::size_t j = i + 1; j < cols; ++j) s -= h[j * (m + 1) + i] * y[j];
      y[i] = s / h[i * (m + 1) + i];
    }
    for (std::size_t i = 0; i < cols; ++i) axpy(y[i], basis[i], res.x);
    res.iterations = applied;
    if (breakdown && cols == 0) break;  // stagnated: report non-convergence
  }
  Vector r = apply_a(res.x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  res.residual = r.norm2() / bnorm;
  res.converged = res.residual < tol;
  obs::counter_add(obs::Counter::kGmresIterations, applied);
  return res;
}

IterativeResult power_iteration_left(const RowOperator& apply_t,
                                     const Vector& initial, double tol,
                                     std::size_t max_iter) {
  IterativeResult res;
  Vector pi = initial;
  const double s0 = pi.sum();
  if (s0 == 0.0) {
    throw std::invalid_argument("power_iteration_left: initial sums to zero");
  }
  pi /= s0;
  for (std::size_t k = 1; k <= max_iter; ++k) {
    Vector next = apply_t(pi);
    const double s = next.sum();
    if (s <= 0.0) {
      SolverErrorContext ctx;
      ctx.dimension = pi.size();
      ctx.iterations = k;
      ctx.detail = "operator lost probability mass (iterate sum " +
                   std::to_string(s) + ")";
      throw SolverError(SolverErrorKind::kNumericalBreakdown,
                        SolverStage::kPowerIteration, std::move(ctx));
    }
    next /= s;
    Vector diff = next - pi;
    const double d = diff.norm_inf();
    pi = std::move(next);
    res.iterations = k;
    if (d < tol) {
      res.converged = true;
      res.residual = d;
      res.x = std::move(pi);
      obs::counter_add(obs::Counter::kPowerIterations, res.iterations);
      return res;
    }
    res.residual = d;
  }
  res.x = std::move(pi);
  obs::counter_add(obs::Counter::kPowerIterations, res.iterations);
  return res;
}

RowOperator row_operator(const CsrMatrix& m) {
  return [&m](const Vector& x) { return m.apply_left(x); };
}

RowOperator row_operator(const Matrix& m) {
  return [&m](const Vector& x) { return x * m; };
}

}  // namespace finwork::la
