#include "linalg/iterative.h"

#include <cmath>
#include <stdexcept>

#include "obs/counters.h"

namespace finwork::la {

IterativeResult neumann_solve_left(const RowOperator& apply_p, const Vector& b,
                                   double tol, std::size_t max_iter) {
  IterativeResult res;
  res.x = b;
  Vector term = b;
  for (std::size_t n = 1; n <= max_iter; ++n) {
    term = apply_p(term);
    res.x += term;
    res.iterations = n;
    const double t = term.norm_inf();
    if (t < tol) {
      res.converged = true;
      res.residual = t;
      obs::counter_add(obs::Counter::kNeumannIterations, res.iterations);
      return res;
    }
  }
  res.residual = term.norm_inf();
  obs::counter_add(obs::Counter::kNeumannIterations, res.iterations);
  return res;
}

IterativeResult bicgstab_left(const RowOperator& apply_a, const Vector& b,
                              double tol, std::size_t max_iter) {
  IterativeResult res;
  const std::size_t n = b.size();
  res.x = Vector(n, 0.0);
  Vector r = b;  // r = b - x A with x = 0
  Vector r_hat = r;
  Vector p(n, 0.0);
  Vector v(n, 0.0);
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  const double bnorm = std::max(b.norm2(), 1e-300);

  // Restart the recurrence (r_hat <- r) when the BiCG coefficients become
  // numerically degenerate instead of giving up — standard stabilization for
  // nearly-converged or unlucky shadow residuals.
  auto restart = [&] {
    r_hat = r;
    p.fill(0.0);
    v.fill(0.0);
    rho = alpha = omega = 1.0;
  };

  for (std::size_t k = 1; k <= max_iter; ++k) {
    double rho_next = dot(r_hat, r);
    if (std::abs(rho_next) < 1e-30 * r.norm2() * r_hat.norm2() + 1e-300) {
      restart();
      rho_next = dot(r_hat, r);
      if (std::abs(rho_next) < 1e-300) break;  // true breakdown: r ~ 0
    }
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    // p = r + beta (p - omega v)
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    v = apply_a(p);
    const double rhv = dot(r_hat, v);
    if (std::abs(rhv) < 1e-300) {
      restart();
      continue;
    }
    alpha = rho / rhv;
    Vector s = r;
    axpy(-alpha, v, s);
    if (s.norm2() / bnorm < tol) {
      axpy(alpha, p, res.x);
      res.iterations = k;
      res.converged = true;
      res.residual = s.norm2() / bnorm;
      obs::counter_add(obs::Counter::kBicgstabIterations, res.iterations);
      return res;
    }
    const Vector t = apply_a(s);
    const double tt = dot(t, t);
    if (tt < 1e-300) break;
    omega = dot(t, s) / tt;
    axpy(alpha, p, res.x);
    axpy(omega, s, res.x);
    r = s;
    axpy(-omega, t, r);
    res.iterations = k;
    const double rel = r.norm2() / bnorm;
    res.residual = rel;
    if (rel < tol) {
      res.converged = true;
      obs::counter_add(obs::Counter::kBicgstabIterations, res.iterations);
      return res;
    }
    if (std::abs(omega) < 1e-300) restart();
  }
  obs::counter_add(obs::Counter::kBicgstabIterations, res.iterations);
  return res;
}

IterativeResult power_iteration_left(const RowOperator& apply_t,
                                     const Vector& initial, double tol,
                                     std::size_t max_iter) {
  IterativeResult res;
  Vector pi = initial;
  const double s0 = pi.sum();
  if (s0 == 0.0) {
    throw std::invalid_argument("power_iteration_left: initial sums to zero");
  }
  pi /= s0;
  for (std::size_t k = 1; k <= max_iter; ++k) {
    Vector next = apply_t(pi);
    const double s = next.sum();
    if (s <= 0.0) {
      throw std::runtime_error(
          "power_iteration_left: operator lost probability mass");
    }
    next /= s;
    Vector diff = next - pi;
    const double d = diff.norm_inf();
    pi = std::move(next);
    res.iterations = k;
    if (d < tol) {
      res.converged = true;
      res.residual = d;
      res.x = std::move(pi);
      obs::counter_add(obs::Counter::kPowerIterations, res.iterations);
      return res;
    }
    res.residual = d;
  }
  res.x = std::move(pi);
  obs::counter_add(obs::Counter::kPowerIterations, res.iterations);
  return res;
}

RowOperator row_operator(const CsrMatrix& m) {
  return [&m](const Vector& x) { return m.apply_left(x); };
}

RowOperator row_operator(const Matrix& m) {
  return [&m](const Vector& x) { return x * m; };
}

}  // namespace finwork::la
