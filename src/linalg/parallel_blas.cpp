#include "linalg/parallel_blas.h"

#include <algorithm>
#include <stdexcept>

namespace finwork::la {

Matrix multiply_blocked(const Matrix& a, const Matrix& b,
                        par::ThreadPool& pool, std::size_t block) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply_blocked: inner dimensions disagree");
  }
  if (block == 0) {
    throw std::invalid_argument("multiply_blocked: block must be >= 1");
  }
  Matrix c(a.rows(), b.cols(), 0.0);
  const std::size_t rows = a.rows();
  const std::size_t inner = a.cols();
  const std::size_t cols = b.cols();

  // Parallel over independent row panels; within a panel, k is blocked for
  // cache reuse of B's row tiles but consumed in ascending order, so every
  // c(i, j) accumulates in exactly the serial order (bitwise reproducible).
  par::parallel_for(
      pool, 0, (rows + block - 1) / block,
      [&](std::size_t panel) {
        const std::size_t i0 = panel * block;
        const std::size_t i1 = std::min(rows, i0 + block);
        for (std::size_t k0 = 0; k0 < inner; k0 += block) {
          const std::size_t k1 = std::min(inner, k0 + block);
          for (std::size_t i = i0; i < i1; ++i) {
            auto crow = c.row(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const double aik = a(i, k);
              if (aik == 0.0) continue;
              const auto brow = b.row(k);
              for (std::size_t j = 0; j < cols; ++j) crow[j] += aik * brow[j];
            }
          }
        }
      });
  return c;
}

Matrix multiply_blocked(const Matrix& a, const Matrix& b) {
  return multiply_blocked(a, b, par::ThreadPool::global());
}

Vector multiply_left_parallel(const Vector& x, const Matrix& a,
                              par::ThreadPool& pool) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("multiply_left_parallel: dimensions disagree");
  }
  Vector y(a.cols(), 0.0);
  const std::size_t cols = a.cols();
  const std::size_t panel = std::max<std::size_t>(64, cols / (4 * pool.size() + 1));
  par::parallel_for(
      pool, 0, (cols + panel - 1) / panel,
      [&](std::size_t p) {
        const std::size_t j0 = p * panel;
        const std::size_t j1 = std::min(cols, j0 + panel);
        for (std::size_t i = 0; i < x.size(); ++i) {
          const double xi = x[i];
          if (xi == 0.0) continue;
          const auto arow = a.row(i);
          for (std::size_t j = j0; j < j1; ++j) y[j] += xi * arow[j];
        }
      });
  return y;
}

Vector multiply_parallel(const Matrix& a, const Vector& x,
                         par::ThreadPool& pool) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("multiply_parallel: dimensions disagree");
  }
  Vector y(a.rows(), 0.0);
  par::parallel_for(
      pool, 0, a.rows(),
      [&](std::size_t i) {
        const auto arow = a.row(i);
        double s = 0.0;
        for (std::size_t j = 0; j < arow.size(); ++j) s += arow[j] * x[j];
        y[i] = s;
      },
      /*grain=*/64);
  return y;
}

}  // namespace finwork::la
