#pragma once
// LU decomposition with partial pivoting, plus the solve flavours LAQT needs.
//
// LAQT works mostly with ROW vectors: state probabilities propagate as
// pi <- pi * A, and operators like Y_k act from the right.  Computing
// pi * (I - P)^-1 therefore needs a *transpose* solve (solve A^T x = pi^T),
// which the factorization supports without refactorizing.

#include <cstddef>

#include "linalg/matrix.h"

namespace finwork::la {

/// PLU factorization of a square matrix: P*A = L*U with unit-diagonal L.
/// The factorization is computed once and supports repeated solves with both
/// A and A^T, inversion, and the determinant.
class LuDecomposition {
 public:
  /// Factorizes a copy of `a`.  Throws std::invalid_argument if `a` is not
  /// square and finwork::SolverError (kind kSingular, with the dimension,
  /// pivot column and a pivot-ratio condition estimate in its context) if
  /// `a` is singular to working precision.
  explicit LuDecomposition(const Matrix& a);

  [[nodiscard]] std::size_t dim() const noexcept { return lu_.rows(); }

  /// Solve A x = b (column-vector right-hand side).
  [[nodiscard]] Vector solve(const Vector& b) const;
  /// Solve x A = b, i.e. A^T x^T = b^T (row-vector right-hand side).
  [[nodiscard]] Vector solve_left(const Vector& b) const;
  /// Solve A X = B column-by-column.
  [[nodiscard]] Matrix solve(const Matrix& b) const;
  /// Solve A X = B with the independent right-hand-side columns fanned out
  /// over the global thread pool (serial when nested inside a pool task or
  /// for small systems).  Column results are bitwise identical to solve().
  [[nodiscard]] Matrix solve_many(const Matrix& b) const;
  /// A^-1 (computed by solving against the identity).
  [[nodiscard]] Matrix inverse() const;
  /// det(A), including the pivot sign.
  [[nodiscard]] double determinant() const noexcept;
  /// Estimated reciprocal condition number in the infinity norm (cheap
  /// lower-bound style estimate; 0 means effectively singular).
  [[nodiscard]] double rcond_estimate() const;

 private:
  Matrix lu_;                     // packed L (below diag) and U (on/above diag)
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
  double norm_inf_a_ = 0.0;  // infinity norm of the original matrix
};

/// One-shot convenience wrappers.
[[nodiscard]] Vector solve(const Matrix& a, const Vector& b);
[[nodiscard]] Vector solve_left(const Matrix& a, const Vector& b);
[[nodiscard]] Matrix inverse(const Matrix& a);
[[nodiscard]] double determinant(const Matrix& a);

}  // namespace finwork::la
