#include "linalg/kron.h"

#include <stdexcept>

#include "obs/counters.h"
#include "obs/trace.h"

namespace finwork::la {

Matrix kron(const Matrix& a, const Matrix& b) {
  const obs::ObsSpan span("linalg/kron");
  obs::counter_add(obs::Counter::kKronProducts);
  Matrix k(a.rows() * b.rows(), a.cols() * b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double aij = a(i, j);
      if (aij == 0.0) continue;
      for (std::size_t r = 0; r < b.rows(); ++r) {
        for (std::size_t c = 0; c < b.cols(); ++c) {
          k(i * b.rows() + r, j * b.cols() + c) = aij * b(r, c);
        }
      }
    }
  }
  return k;
}

Matrix kron_sum(const Matrix& a, const Matrix& b) {
  if (!a.square() || !b.square()) {
    throw std::invalid_argument("kron_sum: matrices must be square");
  }
  return kron(a, identity(b.rows())) + kron(identity(a.rows()), b);
}

Vector kron(const Vector& a, const Vector& b) {
  Vector k(a.size() * b.size(), 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      k[i * b.size() + j] = a[i] * b[j];
    }
  }
  return k;
}

}  // namespace finwork::la
