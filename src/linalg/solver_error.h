#pragma once
// Structured error taxonomy for the numerical layer.
//
// Every failure the solver stack can hit — a singular factorization, a
// condition-number breach, an iterative backend that ran out of iterations,
// a model-cache build that died — used to surface as a bare
// std::runtime_error with a free-form message.  SolverError replaces those
// throws with a machine-readable (kind, stage, context) triple so callers
// can dispatch on *what* failed and *where* (fail-fast vs degrade, retry vs
// abort) and error reports carry enough numerical context (dimension, pivot,
// condition estimate, residual, iteration count) to debug a figure-scale
// sweep without rerunning it under a debugger.
//
// SolverError derives from std::runtime_error, so existing catch sites keep
// working unchanged.  See docs/ROBUSTNESS.md for the full taxonomy and the
// fallback ladder that produces these errors.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace finwork {

/// What failed.
enum class SolverErrorKind {
  kSingular,          ///< matrix singular to working precision
  kIllConditioned,    ///< condition estimate beyond the configured ceiling
  kNonConvergence,    ///< an iterative method exhausted its iteration cap
  kNumericalBreakdown,///< an invariant of the numerical method collapsed
  kCacheBuildFailure, ///< a ModelCache build flight failed
};

/// Where in the solve pipeline it failed.
enum class SolverStage {
  kLuFactorize,        ///< dense PLU factorization
  kLuSolve,            ///< triangular solve against a cached factorization
  kIterativeRefinement,///< residual-correction loop on an LU solution
  kNeumann,            ///< Neumann-series expansion of (I - P)^-1
  kBicgstab,           ///< BiCGSTAB Krylov backend
  kGmres,              ///< restarted GMRES Krylov backend
  kShiftedRetry,       ///< shifted-operator Richardson rescue
  kPowerIteration,     ///< dominant-eigenvector power iteration
  kExpm,               ///< matrix exponential / its action
  kModelBuild,         ///< ModelArtifacts level preparation
  kCacheBuild,         ///< ModelCache single-flight build
};

/// Stable lowercase names for logs and tests (e.g. "singular", "gmres").
[[nodiscard]] std::string_view solver_error_kind_name(
    SolverErrorKind kind) noexcept;
[[nodiscard]] std::string_view solver_stage_name(SolverStage stage) noexcept;

/// Numerical context of a failure.  Fields default to "unknown" sentinels;
/// only the ones the throw site can cheaply know are filled in.
struct SolverErrorContext {
  /// Sentinel for absent indices (level, pivot).
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  std::size_t level = kNoIndex;      ///< population level k, if any
  std::size_t dimension = 0;         ///< system dimension (0 = unknown)
  std::size_t pivot = kNoIndex;      ///< offending pivot column, if any
  double condition_estimate = 0.0;   ///< est. condition number (0 = unknown)
  double residual = -1.0;            ///< last residual norm (< 0 = unknown)
  std::size_t iterations = 0;        ///< iterations spent before giving up
  std::string detail;                ///< free-form amplification
};

/// The structured exception.  what() is generated from the triple, e.g.:
///   "solver error [singular] at stage lu_factorize: dim 40, pivot 17,
///    condition estimate 3.2e+18 (matrix is singular to working precision)"
class SolverError : public std::runtime_error {
 public:
  SolverError(SolverErrorKind kind, SolverStage stage,
              SolverErrorContext context = {});

  [[nodiscard]] SolverErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] SolverStage stage() const noexcept { return stage_; }
  [[nodiscard]] const SolverErrorContext& context() const noexcept {
    return context_;
  }

 private:
  SolverErrorKind kind_;
  SolverStage stage_;
  SolverErrorContext context_;
};

}  // namespace finwork
