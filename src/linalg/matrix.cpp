#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <stdexcept>

namespace finwork::la {

void Vector::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

double Vector::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Vector::norm2() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Vector::norm_inf() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Vector::norm1() const noexcept {
  double s = 0.0;
  for (double x : data_) s += std::abs(x);
  return s;
}

Vector& Vector::operator+=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  assert(size() == rhs.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::operator/=(double s) noexcept {
  for (double& x : data_) x /= s;
  return *this;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector v, double s) { return v *= s; }
Vector operator*(double s, Vector v) { return v *= s; }
Vector operator/(Vector v, double s) { return v /= s; }

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector ones(std::size_t n) { return Vector(n, 1.0); }

Vector unit(std::size_t n, std::size_t i) {
  Vector e(n, 0.0);
  e[i] = 1.0;
  return e;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::set_identity(std::size_t n) {
  rows_ = cols_ = n;
  data_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) data_[i * n + i] = 1.0;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::norm_frobenius() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::norm_inf() const noexcept {
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += std::abs((*this)(r, c));
    m = std::max(m, s);
  }
  return m;
}

double Matrix::norm1() const noexcept {
  double m = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) s += std::abs((*this)(r, c));
    m = std::max(m, s);
  }
  return m;
}

double Matrix::trace() const {
  if (!square()) throw std::invalid_argument("trace: matrix is not square");
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimensions disagree");
  }
  Matrix c(a.rows(), b.cols(), 0.0);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec: dimensions disagree");
  }
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += arow[j] * x[j];
    y[i] = s;
  }
  return y;
}

Vector operator*(const Vector& x, const Matrix& a) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("vecmat: dimensions disagree");
  }
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += xi * arow[j];
  }
  return y;
}

Matrix identity(std::size_t n) {
  Matrix m;
  m.set_identity(n);
  return m;
}

Matrix diagonal(const Vector& d) {
  Matrix m(d.size(), d.size(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Vector diag_of(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("diag_of: matrix is not square");
  Vector d(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) d[i] = a(i, i);
  return d;
}

bool allclose(const Matrix& a, const Matrix& b, double rtol, double atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c) - b(r, c)) > atol + rtol * std::abs(b(r, c))) {
        return false;
      }
    }
  }
  return true;
}

bool allclose(const Vector& a, const Vector& b, double rtol, double atol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  return os << ']';
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << '[';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r) os << ",\n ";
    os << '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c) os << ", ";
      os << m(r, c);
    }
    os << ']';
  }
  return os << ']';
}

}  // namespace finwork::la
