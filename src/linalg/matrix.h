#pragma once
// Dense row-major matrix and vector types for LAQT computations.
//
// These are deliberately simple value types: the state spaces the transient
// solver works with are small enough (up to a few tens of thousands of states)
// that a clear, cache-friendly row-major layout plus LAPACK-style LU beats
// anything clever.  All entries are double.

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

namespace finwork::la {

/// Dense vector of doubles.  A thin wrapper over std::vector that adds the
/// linear-algebra operations the solver needs (dot, axpy, norms, scaling).
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double value = 0.0) : data_(n, value) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<const double> span() const noexcept { return data_; }
  [[nodiscard]] std::span<double> span() noexcept { return data_; }

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  void resize(std::size_t n, double value = 0.0) { data_.resize(n, value); }
  void fill(double value);

  /// Sum of all components.
  [[nodiscard]] double sum() const noexcept;
  /// Euclidean norm.
  [[nodiscard]] double norm2() const noexcept;
  /// Max-abs norm.
  [[nodiscard]] double norm_inf() const noexcept;
  /// Sum of absolute values.
  [[nodiscard]] double norm1() const noexcept;

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s) noexcept;
  Vector& operator/=(double s) noexcept;

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

[[nodiscard]] Vector operator+(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator-(Vector lhs, const Vector& rhs);
[[nodiscard]] Vector operator*(Vector v, double s);
[[nodiscard]] Vector operator*(double s, Vector v);
[[nodiscard]] Vector operator/(Vector v, double s);

/// Dot product.  Sizes must match.
[[nodiscard]] double dot(const Vector& a, const Vector& b);
/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);
/// Vector of n ones — the LAQT epsilon column vector.
[[nodiscard]] Vector ones(std::size_t n);
/// Unit vector e_i of dimension n.
[[nodiscard]] Vector unit(std::size_t n, std::size_t i);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}
  /// Construct from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  void fill(double value);
  /// Set this to the n x n identity (resizing as needed).
  void set_identity(std::size_t n);

  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double norm_frobenius() const noexcept;
  /// Max absolute row sum (induced infinity norm).
  [[nodiscard]] double norm_inf() const noexcept;
  /// Max absolute column sum (induced 1-norm).
  [[nodiscard]] double norm1() const noexcept;
  /// Sum of diagonal entries; matrix must be square.
  [[nodiscard]] double trace() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix m, double s);
[[nodiscard]] Matrix operator*(double s, Matrix m);

/// Dense matrix product C = A * B.
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);
/// Column action y = A * x.
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);
/// Row action y = x^T * A (LAQT state vectors are row vectors).
[[nodiscard]] Vector operator*(const Vector& x, const Matrix& a);

/// n x n identity matrix.
[[nodiscard]] Matrix identity(std::size_t n);
/// Square matrix with d on the diagonal.
[[nodiscard]] Matrix diagonal(const Vector& d);
/// Extract the diagonal of a square matrix.
[[nodiscard]] Vector diag_of(const Matrix& a);

/// True when every |a_ij - b_ij| <= atol + rtol * |b_ij|.
[[nodiscard]] bool allclose(const Matrix& a, const Matrix& b,
                            double rtol = 1e-10, double atol = 1e-12);
[[nodiscard]] bool allclose(const Vector& a, const Vector& b,
                            double rtol = 1e-10, double atol = 1e-12);

std::ostream& operator<<(std::ostream& os, const Vector& v);
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace finwork::la
