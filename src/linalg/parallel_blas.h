#pragma once
// Cache-blocked, thread-parallel dense kernels.  The scalar operator* in
// matrix.h is fine for the solver's small state spaces; these kernels serve
// the large dense workloads (matrix exponentials of big PH compositions,
// the tagged reference model's product spaces) and demonstrate the blocked
// + pooled idiom for dense linear algebra.

#include "linalg/matrix.h"
#include "parallel/thread_pool.h"

namespace finwork::la {

/// C = A * B with cache blocking, parallelized over row panels on `pool`.
/// Bitwise-identical to the serial product (same per-element accumulation
/// order).
[[nodiscard]] Matrix multiply_blocked(const Matrix& a, const Matrix& b,
                                      par::ThreadPool& pool,
                                      std::size_t block = 64);

/// Convenience overload on the global pool.
[[nodiscard]] Matrix multiply_blocked(const Matrix& a, const Matrix& b);

/// y = x * A parallelized over column panels (row-vector action, the
/// dominant operation of the transient solver's dense path).
[[nodiscard]] Vector multiply_left_parallel(const Vector& x, const Matrix& a,
                                            par::ThreadPool& pool);

/// y = A * x parallelized over row panels (column action, used by the
/// moment recursions on the cached composite operator).  Each y[i] is
/// accumulated by exactly one panel in the serial order, so the result is
/// bitwise identical to the serial product.
[[nodiscard]] Vector multiply_parallel(const Matrix& a, const Vector& x,
                                       par::ThreadPool& pool);

}  // namespace finwork::la
