#include "linalg/expm.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "linalg/lu.h"
#include "linalg/solver_error.h"

namespace finwork::la {

namespace {

// Padé(13) coefficients from Higham, "The scaling and squaring method for the
// matrix exponential revisited", SIAM J. Matrix Anal. Appl. 26(4), 2005.
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: the largest ||A||_1 for which the degree-13 approximant meets
// double-precision accuracy without scaling.
constexpr double kTheta13 = 5.371920351148152;

}  // namespace

Matrix expm(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("expm: matrix is not square");
  const std::size_t n = a.rows();
  if (n == 0) return Matrix{};

  const double norm = a.norm1();
  int squarings = 0;
  if (norm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
  }
  Matrix as = a;
  if (squarings > 0) as *= std::ldexp(1.0, -squarings);

  const Matrix a2 = as * as;
  const Matrix a4 = a2 * a2;
  const Matrix a6 = a2 * a4;
  const Matrix eye = identity(n);

  // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
  Matrix w1 = kPade13[13] * a6 + kPade13[11] * a4 + kPade13[9] * a2;
  Matrix w2 = kPade13[7] * a6 + kPade13[5] * a4 + kPade13[3] * a2 +
              kPade13[1] * eye;
  const Matrix u = as * (a6 * w1 + w2);
  // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
  Matrix z1 = kPade13[12] * a6 + kPade13[10] * a4 + kPade13[8] * a2;
  Matrix z2 = kPade13[6] * a6 + kPade13[4] * a4 + kPade13[2] * a2 +
              kPade13[0] * eye;
  const Matrix v = a6 * z1 + z2;

  // exp(As) ~= (V - U)^-1 (V + U)
  Matrix r;
  try {
    r = LuDecomposition(v - u).solve(v + u);
  } catch (const SolverError& e) {
    // Re-stage: the caller sees the Padé denominator failure as an expm
    // failure, with the LU diagnostics carried along.
    SolverErrorContext ctx = e.context();
    ctx.detail = "expm: Pade denominator V - U is singular (" +
                 std::string(e.what()) + ")";
    throw SolverError(e.kind(), SolverStage::kExpm, std::move(ctx));
  }
  for (int s = 0; s < squarings; ++s) r = r * r;
  return r;
}

Vector expm_action_left(const Vector& x, const Matrix& a, double t,
                        double tol) {
  if (!a.square()) {
    throw std::invalid_argument("expm_action_left: matrix is not square");
  }
  const std::size_t n = a.rows();
  if (x.size() != n) {
    throw std::invalid_argument("expm_action_left: size mismatch");
  }
  if (t == 0.0 || n == 0) return x;
  if (t < 0.0) throw std::invalid_argument("expm_action_left: t must be >= 0");

  // Uniformization: exp(tA) = sum_k e^{-qt} (qt)^k / k! * Pu^k with
  // Pu = I + A/q, q >= max_i |a_ii|.  Valid for sub-generators.
  double q = 0.0;
  for (std::size_t i = 0; i < n; ++i) q = std::max(q, std::abs(a(i, i)));
  if (q == 0.0) return x;  // A has a zero diagonal and non-negative rows => A=0
  q *= 1.0001;             // margin keeps Pu's diagonal strictly positive

  const double qt = q * t;
  // Pu action from the left: y = v * Pu = v + (v * A)/q.
  auto step = [&](const Vector& v) {
    Vector y = v * a;
    y /= q;
    y += v;
    return y;
  };

  Vector term = x;  // v * Pu^k
  double weight = std::exp(-qt);
  Vector acc = term * weight;
  // Steffensen-style truncation: stop when remaining Poisson mass * current
  // term magnitude is below tol.
  double cumulative = weight;
  const std::size_t max_iter =
      static_cast<std::size_t>(qt + 12.0 * std::sqrt(qt) + 64.0);
  for (std::size_t k = 1; k <= max_iter; ++k) {
    term = step(term);
    weight *= qt / static_cast<double>(k);
    if (weight > 0.0) axpy(weight, term, acc);
    cumulative += weight;
    if ((1.0 - cumulative) * term.norm_inf() < tol && k > qt) break;
  }
  return acc;
}

}  // namespace finwork::la
