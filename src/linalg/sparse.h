#pragma once
// Compressed sparse row matrices for the transition structure of large state
// spaces.  P_k for a distributed cluster with K=8 has ~25k states but only a
// handful of transitions per state; dense storage would be gigabytes.

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "parallel/thread_pool.h"

namespace finwork::la {

/// Coordinate-format entry used while assembling a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix.  Build from triplets (duplicates are summed).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Assemble from triplets; duplicate (row, col) entries are summed and
  /// exact zeros are dropped.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x (column action).
  [[nodiscard]] Vector apply(const Vector& x) const;
  /// y = x A (row action; equivalently A^T x).
  [[nodiscard]] Vector apply_left(const Vector& x) const;
  /// y += x A, accumulated into a caller-owned (pre-zeroed or partial)
  /// buffer — the allocation-free row action the uniformization loops use.
  void apply_left_add(const Vector& x, Vector& y) const;

  /// y = A x partitioned into row panels on `pool`.  Each output entry is
  /// owned by exactly one panel and accumulated in the serial order, so the
  /// result is bitwise identical to apply().  Falls back to the serial
  /// kernel for small matrices and when called from a pool worker (nested
  /// fan-out would risk deadlock).
  [[nodiscard]] Vector apply_parallel(const Vector& x,
                                      par::ThreadPool& pool) const;
  /// y = x A on `pool`: row panels accumulate into per-panel buffers which
  /// are then merged in fixed ascending panel order — deterministic
  /// run-to-run (the panel split depends only on the matrix and pool size),
  /// though the merge reassociates additions relative to apply_left().
  [[nodiscard]] Vector apply_left_parallel(const Vector& x,
                                           par::ThreadPool& pool) const;

  /// Row sums, i.e. A * ones.
  [[nodiscard]] Vector row_sums() const;
  /// Element lookup (O(log nnz_row)); 0 if not stored.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  /// Densify (for tests / small matrices only).
  [[nodiscard]] Matrix to_dense() const;
  /// Infinity norm (max absolute row sum).
  [[nodiscard]] double norm_inf() const noexcept;

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Convert a dense matrix to CSR, dropping entries with |a_ij| <= drop_tol.
[[nodiscard]] CsrMatrix to_csr(const Matrix& a, double drop_tol = 0.0);

}  // namespace finwork::la
