#pragma once
// Iterative kernels for the large sparse systems the transient solver meets:
//   * x (I - P) = b with substochastic P   (Neumann series / BiCGSTAB)
//   * pi T = pi for a stochastic operator T (power iteration)
// All operators are passed as callables mapping a row vector to a row vector,
// so dense, CSR and matrix-free compositions (like Y_K R_K) share one code
// path.

#include <cstddef>
#include <functional>

#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace finwork::la {

/// Row-vector operator: y = x * Op.
using RowOperator = std::function<Vector(const Vector&)>;

/// Result of an iterative solve.
struct IterativeResult {
  Vector x;                  ///< solution (row vector)
  double residual = 0.0;     ///< final residual norm (inf-norm)
  std::size_t iterations = 0;
  bool converged = false;
};

/// Solve x (I - P) = b by the Neumann series x = sum_n b P^n.  Converges
/// whenever the spectral radius of P is < 1 (substochastic P with reachable
/// exit).  Cheap per-iteration; can be slow when exit probabilities are tiny.
[[nodiscard]] IterativeResult neumann_solve_left(const RowOperator& apply_p,
                                                 const Vector& b,
                                                 double tol = 1e-12,
                                                 std::size_t max_iter = 200000);

/// BiCGSTAB for x A = b given the row action y = x * A.  General-purpose
/// fallback when Neumann is slow.  No preconditioner (the systems are well
/// conditioned: I minus a substochastic matrix).
[[nodiscard]] IterativeResult bicgstab_left(const RowOperator& apply_a,
                                            const Vector& b,
                                            double tol = 1e-12,
                                            std::size_t max_iter = 10000);

/// Restarted GMRES(m) for x A = b given the row action y = x * A.  The
/// heavy-duty Krylov backend of the fallback ladder (docs/ROBUSTNESS.md):
/// monotone residual reduction where BiCGSTAB's two-term recurrences can
/// stagnate, at the cost of `restart` stored basis vectors.  `max_iter`
/// bounds the total operator applications across restarts.
[[nodiscard]] IterativeResult gmres_left(const RowOperator& apply_a,
                                         const Vector& b, double tol = 1e-12,
                                         std::size_t max_iter = 10000,
                                         std::size_t restart = 30);

/// Power iteration for the dominant left fixed point pi = pi * T of a
/// stochastic operator (spectral radius 1, Perron root simple).  The iterate
/// is renormalized to sum 1 each step; convergence is measured in inf-norm of
/// successive differences.
[[nodiscard]] IterativeResult power_iteration_left(const RowOperator& apply_t,
                                                   const Vector& initial,
                                                   double tol = 1e-13,
                                                   std::size_t max_iter = 100000);

/// Convenience row-operator over a CSR matrix.
[[nodiscard]] RowOperator row_operator(const CsrMatrix& m);
/// Convenience row-operator over a dense matrix.
[[nodiscard]] RowOperator row_operator(const Matrix& m);

}  // namespace finwork::la
