#include "linalg/lu.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/fault_inject.h"
#include "linalg/solver_error.h"
#include "obs/counters.h"
#include "parallel/thread_pool.h"

namespace finwork::la {

namespace {

/// Singularity diagnostics: the matrix dimension, the pivot column where
/// elimination died, and a pivot-ratio condition estimate — enough context
/// to localize the offending level of a figure-scale sweep from the error
/// alone.  `max_pivot` is the largest pivot seen before the breakdown; the
/// condition estimate is infinite for an exactly zero pivot.
[[noreturn]] void throw_singular(std::size_t n, std::size_t pivot_col,
                                 double max_pivot, double best,
                                 std::string detail) {
  SolverErrorContext ctx;
  ctx.dimension = n;
  ctx.pivot = pivot_col;
  ctx.condition_estimate =
      best > 0.0 ? max_pivot / best : std::numeric_limits<double>::infinity();
  ctx.detail = std::move(detail);
  throw SolverError(SolverErrorKind::kSingular, SolverStage::kLuFactorize,
                    std::move(ctx));
}

}  // namespace

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a) {
  if (!a.square()) {
    throw std::invalid_argument("LuDecomposition: matrix is not square");
  }
  obs::counter_add(obs::Counter::kLuFactorizations);
  norm_inf_a_ = a.norm_inf();
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

  if (check::fault_at("lu/factorize")) {
    throw_singular(n, 0, norm_inf_a_, 0.0, "injected singular factorization");
  }
  double max_pivot = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) {
      throw_singular(n, k, max_pivot, best,
                     "matrix is singular to working precision");
    }
    max_pivot = std::max(max_pivot, best);
    if (p != k) {
      auto rk = lu_.row(k);
      auto rp = lu_.row(p);
      std::swap_ranges(rk.begin(), rk.end(), rp.begin());
      std::swap(piv_[k], piv_[p]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      const auto rowk = lu_.row(k);
      auto rowi = lu_.row(i);
      for (std::size_t j = k + 1; j < n; ++j) rowi[j] -= m * rowk[j];
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = dim();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");
  Vector x(n);
  // Apply permutation, forward substitution with unit-lower L.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[piv_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Vector LuDecomposition::solve_left(const Vector& b) const {
  // x A = b  <=>  A^T x^T = b^T.  With P A = L U we get A^T = U^T L^T P, so
  // solve U^T z = b (forward), L^T w = z (backward), then x = P^T w,
  // i.e. x[piv[i]] = w[i].
  const std::size_t n = dim();
  if (b.size() != n) throw std::invalid_argument("LU solve_left: size mismatch");
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(j, i) * z[j];
    z[i] = s / lu_(i, i);
  }
  Vector w(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(j, ii) * w[j];
    w[ii] = s;
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[piv_[i]] = w[i];
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = dim();
  if (b.rows() != n) throw std::invalid_argument("LU solve: size mismatch");
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

Matrix LuDecomposition::solve_many(const Matrix& b) const {
  const std::size_t n = dim();
  if (b.rows() != n) throw std::invalid_argument("LU solve_many: size mismatch");
  obs::counter_add(obs::Counter::kMultiRhsSolves);
  Matrix x(n, b.cols());
  // Each column is an independent triangular-solve pair writing a disjoint
  // slice of x; parallel_for falls back to a serial loop for small ranges
  // and when already running on a pool worker.
  par::parallel_for(
      par::ThreadPool::global(), 0, b.cols(),
      [&](std::size_t c) {
        Vector col(n);
        for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
        const Vector sol = solve(col);
        for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
      },
      /*grain=*/8);
  return x;
}

Matrix LuDecomposition::inverse() const { return solve(identity(dim())); }

double LuDecomposition::determinant() const noexcept {
  double d = pivot_sign_;
  for (std::size_t i = 0; i < dim(); ++i) d *= lu_(i, i);
  return d;
}

double LuDecomposition::rcond_estimate() const {
  // Cheap estimate: 1 / (||A||_inf * ||A^-1 e||_inf-ish) via one solve with a
  // vector of alternating signs, which tends to excite the worst direction.
  const std::size_t n = dim();
  Vector probe(n);
  for (std::size_t i = 0; i < n; ++i) probe[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const Vector sol = solve(probe);
  const double inv_norm = sol.norm_inf();
  if (inv_norm == 0.0 || norm_inf_a_ == 0.0) return 0.0;
  return 1.0 / (norm_inf_a_ * inv_norm);
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

Vector solve_left(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve_left(b);
}

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

double determinant(const Matrix& a) {
  return LuDecomposition(a).determinant();
}

}  // namespace finwork::la
