#pragma once
// Kronecker product and sum.  The paper contrasts the naive
// Kronecker-product state space (2K+1)^K with the reduced-product space; we
// provide the operators both for that comparison and for composing
// independent PH stages.

#include "linalg/matrix.h"

namespace finwork::la {

/// Kronecker product A (x) B of sizes (ra*rb) x (ca*cb).
[[nodiscard]] Matrix kron(const Matrix& a, const Matrix& b);

/// Kronecker sum A (+) B = A (x) I_b + I_a (x) B; both must be square.
/// The generator of two independent Markov processes run jointly.
[[nodiscard]] Matrix kron_sum(const Matrix& a, const Matrix& b);

/// Kronecker product of row vectors: entrance vector of a joined process.
[[nodiscard]] Vector kron(const Vector& a, const Vector& b);

}  // namespace finwork::la
