#include "linalg/solver_error.h"

#include <sstream>

namespace finwork {

namespace {

std::string format_message(SolverErrorKind kind, SolverStage stage,
                           const SolverErrorContext& ctx) {
  std::ostringstream ss;
  ss << "solver error [" << solver_error_kind_name(kind) << "] at stage "
     << solver_stage_name(stage);
  if (ctx.level != SolverErrorContext::kNoIndex) {
    ss << ", level " << ctx.level;
  }
  if (ctx.dimension != 0) ss << ": dim " << ctx.dimension;
  if (ctx.pivot != SolverErrorContext::kNoIndex) ss << ", pivot " << ctx.pivot;
  if (ctx.condition_estimate != 0.0) {
    ss << ", condition estimate " << ctx.condition_estimate;
  }
  if (ctx.residual >= 0.0) ss << ", residual " << ctx.residual;
  if (ctx.iterations != 0) ss << ", after " << ctx.iterations << " iterations";
  if (!ctx.detail.empty()) ss << " (" << ctx.detail << ")";
  return ss.str();
}

}  // namespace

std::string_view solver_error_kind_name(SolverErrorKind kind) noexcept {
  switch (kind) {
    case SolverErrorKind::kSingular: return "singular";
    case SolverErrorKind::kIllConditioned: return "ill_conditioned";
    case SolverErrorKind::kNonConvergence: return "non_convergence";
    case SolverErrorKind::kNumericalBreakdown: return "numerical_breakdown";
    case SolverErrorKind::kCacheBuildFailure: return "cache_build_failure";
  }
  return "unknown";
}

std::string_view solver_stage_name(SolverStage stage) noexcept {
  switch (stage) {
    case SolverStage::kLuFactorize: return "lu_factorize";
    case SolverStage::kLuSolve: return "lu_solve";
    case SolverStage::kIterativeRefinement: return "iterative_refinement";
    case SolverStage::kNeumann: return "neumann";
    case SolverStage::kBicgstab: return "bicgstab";
    case SolverStage::kGmres: return "gmres";
    case SolverStage::kShiftedRetry: return "shifted_retry";
    case SolverStage::kPowerIteration: return "power_iteration";
    case SolverStage::kExpm: return "expm";
    case SolverStage::kModelBuild: return "model_build";
    case SolverStage::kCacheBuild: return "cache_build";
  }
  return "unknown";
}

SolverError::SolverError(SolverErrorKind kind, SolverStage stage,
                         SolverErrorContext context)
    : std::runtime_error(format_message(kind, stage, context)),
      kind_(kind),
      stage_(stage),
      context_(std::move(context)) {}

}  // namespace finwork
