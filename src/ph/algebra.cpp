#include "ph/algebra.h"

#include <stdexcept>

#include "linalg/kron.h"

namespace finwork::ph {

namespace {

/// Exit-rate column vector b' = B eps (rate of absorbing from each phase).
la::Vector exit_rates(const PhaseType& d) {
  return d.rate_matrix() * la::ones(d.phases());
}

}  // namespace

PhaseType convolve(const PhaseType& first, const PhaseType& second) {
  const std::size_t ma = first.phases();
  const std::size_t mb = second.phases();
  la::Vector p(ma + mb, 0.0);
  for (std::size_t i = 0; i < ma; ++i) p[i] = first.entry()[i];

  // Generator blocks: T = [[T_a, t_a p_b], [0, T_b]] with T = -B, so
  // B = [[B_a, -(B_a eps) p_b], [0, B_b]].
  la::Matrix b(ma + mb, ma + mb, 0.0);
  const la::Vector ta = exit_rates(first);
  for (std::size_t i = 0; i < ma; ++i) {
    for (std::size_t j = 0; j < ma; ++j) b(i, j) = first.rate_matrix()(i, j);
    for (std::size_t j = 0; j < mb; ++j) {
      b(i, ma + j) = -ta[i] * second.entry()[j];
    }
  }
  for (std::size_t i = 0; i < mb; ++i) {
    for (std::size_t j = 0; j < mb; ++j) {
      b(ma + i, ma + j) = second.rate_matrix()(i, j);
    }
  }
  return PhaseType(std::move(p), std::move(b),
                   first.name() + "+" + second.name());
}

PhaseType mixture(double weight, const PhaseType& a, const PhaseType& b) {
  if (weight < 0.0 || weight > 1.0) {
    throw std::invalid_argument("mixture: weight must be in [0, 1]");
  }
  const std::size_t ma = a.phases();
  const std::size_t mb = b.phases();
  la::Vector p(ma + mb, 0.0);
  for (std::size_t i = 0; i < ma; ++i) p[i] = weight * a.entry()[i];
  for (std::size_t i = 0; i < mb; ++i) p[ma + i] = (1.0 - weight) * b.entry()[i];
  la::Matrix m(ma + mb, ma + mb, 0.0);
  for (std::size_t i = 0; i < ma; ++i) {
    for (std::size_t j = 0; j < ma; ++j) m(i, j) = a.rate_matrix()(i, j);
  }
  for (std::size_t i = 0; i < mb; ++i) {
    for (std::size_t j = 0; j < mb; ++j) {
      m(ma + i, ma + j) = b.rate_matrix()(i, j);
    }
  }
  return PhaseType(std::move(p), std::move(m),
                   "mix(" + a.name() + "," + b.name() + ")");
}

PhaseType minimum(const PhaseType& a, const PhaseType& b) {
  // Joint process: generator T_a (+) T_b; absorption when either absorbs.
  // In B form the Kronecker sum carries over directly.
  la::Vector p = la::kron(a.entry(), b.entry());
  la::Matrix m = la::kron_sum(a.rate_matrix(), b.rate_matrix());
  return PhaseType(std::move(p), std::move(m),
                   "min(" + a.name() + "," + b.name() + ")");
}

PhaseType maximum(const PhaseType& a, const PhaseType& b) {
  // Blocks: [joint (ma*mb)] [a done, b running (mb)] [b done, a running (ma)].
  const std::size_t ma = a.phases();
  const std::size_t mb = b.phases();
  const std::size_t joint = ma * mb;
  const std::size_t total = joint + mb + ma;

  la::Vector p(total, 0.0);
  const la::Vector pj = la::kron(a.entry(), b.entry());
  for (std::size_t i = 0; i < joint; ++i) p[i] = pj[i];

  la::Matrix m(total, total, 0.0);
  const la::Matrix joint_b = la::kron_sum(a.rate_matrix(), b.rate_matrix());
  for (std::size_t i = 0; i < joint; ++i) {
    for (std::size_t j = 0; j < joint; ++j) m(i, j) = joint_b(i, j);
  }
  // a absorbs first: rate (B_a eps)_i while b stays in phase j -> block 2.
  const la::Vector ta = exit_rates(a);
  const la::Vector tb = exit_rates(b);
  for (std::size_t i = 0; i < ma; ++i) {
    for (std::size_t j = 0; j < mb; ++j) {
      m(i * mb + j, joint + j) -= ta[i];  // off-diagonal of B is -rate
      m(i * mb + j, joint + mb + i) -= tb[j];
    }
  }
  // Residual blocks run alone.
  for (std::size_t i = 0; i < mb; ++i) {
    for (std::size_t j = 0; j < mb; ++j) {
      m(joint + i, joint + j) = b.rate_matrix()(i, j);
    }
  }
  for (std::size_t i = 0; i < ma; ++i) {
    for (std::size_t j = 0; j < ma; ++j) {
      m(joint + mb + i, joint + mb + j) = a.rate_matrix()(i, j);
    }
  }
  return PhaseType(std::move(p), std::move(m),
                   "max(" + a.name() + "," + b.name() + ")");
}

PhaseType n_fold_sum(const PhaseType& dist, std::size_t n) {
  if (n == 0) throw std::invalid_argument("n_fold_sum: n must be >= 1");
  PhaseType acc = dist;
  for (std::size_t i = 1; i < n; ++i) acc = convolve(acc, dist);
  return acc;
}

PhaseType n_fold_maximum(const PhaseType& dist, std::size_t n) {
  if (n == 0) throw std::invalid_argument("n_fold_maximum: n must be >= 1");
  PhaseType acc = dist;
  for (std::size_t i = 1; i < n; ++i) acc = maximum(acc, dist);
  return acc;
}

}  // namespace finwork::ph
