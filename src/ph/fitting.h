#pragma once
// Moment-matching constructors for the distribution families the paper
// sweeps over: Erlangians (C^2 <= 1), Hyperexponentials (C^2 >= 1) with the
// paper's three closure rules (balanced means, fixed branch probability,
// matching the density at zero), and Lipsky's truncated power-tail class that
// motivates the study.

#include <cstddef>

#include "ph/phase_type.h"

namespace finwork::ph {

/// Two-branch hyperexponential matching `mean` and `scv` (>= 1) with the
/// balanced-means rule p1/mu1 = p2/mu2.  scv == 1 degenerates to exponential.
[[nodiscard]] PhaseType hyperexponential_balanced(double mean, double scv);

/// Two-branch hyperexponential matching `mean` and `scv` (> 1) with branch-1
/// probability fixed to `p1` (the paper's "fix the third parameter based on
/// the physical system").  Feasibility requires p1 in (0, 1) and
/// scv + 1 < 2 / min(p1, 1 - p1); throws std::domain_error otherwise.
[[nodiscard]] PhaseType hyperexponential_fixed_p(double mean, double scv,
                                                 double p1);

/// Two-branch hyperexponential matching `mean`, `scv` (> 1) and the density
/// at zero f(0) = p1*mu1 + p2*mu2 (the paper's third closure option).  Found
/// by bisection over the feasible p1 range; throws std::domain_error when no
/// H2 attains the requested f0.
[[nodiscard]] PhaseType hyperexponential_f0(double mean, double scv, double f0);

/// Mixed-Erlang fit for scv in (0, 1]: mixture of Erlang(k-1) and Erlang(k)
/// with a common rate (Tijms' rule), exact for mean and scv.  scv == 1/k for
/// integer k returns the pure Erlang-k.
[[nodiscard]] PhaseType erlang_mixture(double mean, double scv);

/// One-stop fit by squared coefficient of variation: exponential at scv == 1,
/// mixed Erlang below, balanced-means H2 above.
[[nodiscard]] PhaseType fit_scv(double mean, double scv);

/// Lipsky's M-level truncated power tail: a hyperexponential with
/// geometrically decaying branch probabilities theta^j and rates mu/gamma^j,
/// whose reliability approximates x^-alpha over more decades as M grows
/// (alpha = ln(1/theta)/ln(gamma)).  Normalized to the requested mean.
[[nodiscard]] PhaseType truncated_power_tail(std::size_t levels, double alpha,
                                             double mean, double gamma = 2.0);

}  // namespace finwork::ph
