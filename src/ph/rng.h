#pragma once
// Deterministic, splittable random number generation for samplers and the
// discrete-event simulator.  xoshiro256++ with splitmix64 seeding: fast,
// high quality, and reproducible across platforms (unlike std::mt19937_64's
// distribution wrappers, whose outputs are implementation-defined — we
// implement the variate transforms ourselves for bit-exact reproducibility).

#include <cmath>
#include <cstdint>

namespace finwork::rng {

/// splitmix64 step; used to seed xoshiro and to derive stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream for worker `index` (used to give each
  /// simulator replication its own generator deterministically).
  [[nodiscard]] constexpr Xoshiro256 split(std::uint64_t index) const noexcept {
    std::uint64_t sm = state_[0] ^ (0xA0761D6478BD642FULL * (index + 1));
    Xoshiro256 child(splitmix64(sm));
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

/// Uniform double in [0, 1) with 53 bits of randomness.
template <typename Rng>
[[nodiscard]] double uniform01(Rng& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in (0, 1] — safe to pass to log().
template <typename Rng>
[[nodiscard]] double uniform01_open_low(Rng& rng) noexcept {
  return 1.0 - uniform01(rng);
}

/// Exponential variate with the given rate (mean 1/rate).
template <typename Rng>
[[nodiscard]] double exponential(Rng& rng, double rate) noexcept {
  return -std::log(uniform01_open_low(rng)) / rate;
}

/// Index in [0, n) chosen uniformly.
template <typename Rng>
[[nodiscard]] std::size_t uniform_index(Rng& rng, std::size_t n) noexcept {
  return static_cast<std::size_t>(uniform01(rng) * static_cast<double>(n));
}

}  // namespace finwork::rng
