#pragma once
// Closure operations on phase-type distributions.  PH is closed under
// convolution, finite mixture, minimum and maximum; the constructions are
// the classical block/Kronecker forms (Neuts).  These let users compose
// task models (sequential phases of work, probabilistic branches,
// fork/join synchronization) and give the order-statistics module exact
// counterparts to cross-check its quadrature.

#include "ph/phase_type.h"

namespace finwork::ph {

/// X + Y for independent PH X, Y: the absorbing flow of `first` feeds the
/// entrance vector of `second`.
[[nodiscard]] PhaseType convolve(const PhaseType& first,
                                 const PhaseType& second);

/// With probability `weight` draw from `a`, else from `b`.
[[nodiscard]] PhaseType mixture(double weight, const PhaseType& a,
                                const PhaseType& b);

/// min(X, Y) for independent PH: both phase processes run jointly
/// (Kronecker sum); the first absorption wins.
[[nodiscard]] PhaseType minimum(const PhaseType& a, const PhaseType& b);

/// max(X, Y) for independent PH: joint phases plus two "one finished"
/// blocks.
[[nodiscard]] PhaseType maximum(const PhaseType& a, const PhaseType& b);

/// n-fold convolution: sum of n iid copies (Erlang generalization).
[[nodiscard]] PhaseType n_fold_sum(const PhaseType& dist, std::size_t n);

/// Maximum of n iid copies — the exact fork/join wave time.  The phase
/// count grows combinatorially; intended for small n.
[[nodiscard]] PhaseType n_fold_maximum(const PhaseType& dist, std::size_t n);

}  // namespace finwork::ph
