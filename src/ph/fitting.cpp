#include "ph/fitting.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace finwork::ph {

namespace {
constexpr double kScvTol = 1e-12;
}

PhaseType hyperexponential_balanced(double mean, double scv) {
  if (mean <= 0.0) throw std::invalid_argument("H2 balanced: mean must be > 0");
  if (scv < 1.0 - kScvTol) {
    throw std::domain_error("H2 balanced: requires scv >= 1");
  }
  if (scv <= 1.0 + kScvTol) return PhaseType::exponential(1.0 / mean);
  // Balanced means: p1/mu1 = p2/mu2 = mean/2.
  const double p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double p2 = 1.0 - p1;
  const double mu1 = 2.0 * p1 / mean;
  const double mu2 = 2.0 * p2 / mean;
  return PhaseType::hyperexponential({p1, p2}, {mu1, mu2});
}

PhaseType hyperexponential_fixed_p(double mean, double scv, double p1) {
  if (mean <= 0.0) throw std::invalid_argument("H2 fixed-p: mean must be > 0");
  if (p1 <= 0.0 || p1 >= 1.0) {
    throw std::invalid_argument("H2 fixed-p: p1 must be in (0, 1)");
  }
  if (scv <= 1.0 + kScvTol) {
    throw std::domain_error("H2 fixed-p: requires scv > 1");
  }
  // Match m1 = p1 x + p2 y and m2 = 2 (p1 x^2 + p2 y^2) with x = 1/mu1,
  // y = 1/mu2.  Substituting x from the first equation gives a quadratic in y.
  const double p2 = 1.0 - p1;
  const double m2 = (scv + 1.0) * mean * mean;  // second raw moment
  // p1 x^2 + p2 y^2 = m2/2, x = (mean - p2 y)/p1
  // => (p2^2/p1 + p2) y^2 - 2 mean p2/p1 y + mean^2/p1 - m2/2 = 0
  const double a = p2 * p2 / p1 + p2;
  const double b = -2.0 * mean * p2 / p1;
  const double c = mean * mean / p1 - 0.5 * m2;
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) {
    throw std::domain_error("H2 fixed-p: no real fit for these parameters");
  }
  // Both quadratic roots satisfy the moment equations; they differ only in
  // which branch is the slow one.  Prefer the root with branch 2 slow, but
  // fall back to the other when it drives branch 1's mean negative.
  const double sq = std::sqrt(disc);
  for (const double y : {(-b + sq) / (2.0 * a), (-b - sq) / (2.0 * a)}) {
    const double x = (mean - p2 * y) / p1;
    if (x > 0.0 && y > 0.0) {
      return PhaseType::hyperexponential({p1, p2}, {1.0 / x, 1.0 / y});
    }
  }
  throw std::domain_error("H2 fixed-p: fit produced non-positive mean stage");
}

PhaseType hyperexponential_f0(double mean, double scv, double f0) {
  if (f0 <= 0.0) throw std::invalid_argument("H2 f0: f0 must be > 0");
  if (scv <= 1.0 + kScvTol) {
    throw std::domain_error("H2 f0: requires scv > 1");
  }
  // f(0) = p1 mu1 + p2 mu2 is monotone in p1 along the fixed-p family, so
  // bisection over p1 finds the member with the requested density at zero.
  auto f0_of = [&](double p1) {
    const PhaseType h = hyperexponential_fixed_p(mean, scv, p1);
    return h.entry()[0] * h.rate_matrix()(0, 0) +
           h.entry()[1] * h.rate_matrix()(1, 1);
  };
  // Scan for a bracketing interval in (0, 1).
  const int kGrid = 400;
  double lo = -1.0, hi = -1.0, flo = 0.0, fhi = 0.0;
  double prev_p = -1.0, prev_v = 0.0;
  for (int g = 1; g < kGrid; ++g) {
    const double p1 = static_cast<double>(g) / kGrid;
    double v;
    try {
      v = f0_of(p1) - f0;
    } catch (const std::domain_error&) {
      prev_p = -1.0;
      continue;
    }
    if (prev_p > 0.0 && v * prev_v <= 0.0) {
      lo = prev_p;
      hi = p1;
      flo = prev_v;
      fhi = v;
      break;
    }
    prev_p = p1;
    prev_v = v;
  }
  if (lo < 0.0) {
    throw std::domain_error("H2 f0: requested f(0) not attainable");
  }
  for (int it = 0; it < 200 && hi - lo > 1e-14; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double v = f0_of(mid) - f0;
    if (v * flo <= 0.0) {
      hi = mid;
      fhi = v;
    } else {
      lo = mid;
      flo = v;
    }
  }
  (void)fhi;
  return hyperexponential_fixed_p(mean, scv, 0.5 * (lo + hi));
}

PhaseType erlang_mixture(double mean, double scv) {
  if (mean <= 0.0) throw std::invalid_argument("erlang_mixture: mean must be > 0");
  if (scv <= 0.0 || scv > 1.0 + kScvTol) {
    throw std::domain_error("erlang_mixture: requires scv in (0, 1]");
  }
  if (scv >= 1.0 - kScvTol) return PhaseType::exponential(1.0 / mean);
  const auto k = static_cast<std::size_t>(std::ceil(1.0 / scv));
  const double kd = static_cast<double>(k);
  // Pure Erlang when 1/scv is (numerically) an integer.
  if (std::abs(kd * scv - 1.0) < 1e-9) return PhaseType::erlang(k, mean);
  // Tijms: with prob p serve k-1 stages, else k stages, common rate lambda.
  const double p =
      (kd * scv - std::sqrt(kd * (1.0 + scv) - kd * kd * scv)) / (1.0 + scv);
  const double lambda = (kd - p) / mean;
  // Chain of k stages; entering at stage 2 skips one stage (k-1 total).
  la::Vector entry(k, 0.0);
  if (k >= 2) {
    entry[1] = p;
    entry[0] = 1.0 - p;
  } else {
    entry[0] = 1.0;
  }
  la::Matrix b(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    b(i, i) = lambda;
    if (i + 1 < k) b(i, i + 1) = -lambda;
  }
  return PhaseType(std::move(entry), std::move(b), "MixedErlang");
}

PhaseType fit_scv(double mean, double scv) {
  if (scv <= 0.0) throw std::domain_error("fit_scv: scv must be > 0");
  if (std::abs(scv - 1.0) <= kScvTol) return PhaseType::exponential(1.0 / mean);
  if (scv < 1.0) return erlang_mixture(mean, scv);
  return hyperexponential_balanced(mean, scv);
}

PhaseType truncated_power_tail(std::size_t levels, double alpha, double mean,
                               double gamma) {
  if (levels == 0) throw std::invalid_argument("TPT: need >= 1 level");
  if (alpha <= 0.0) throw std::invalid_argument("TPT: alpha must be > 0");
  if (gamma <= 1.0) throw std::invalid_argument("TPT: gamma must be > 1");
  if (mean <= 0.0) throw std::invalid_argument("TPT: mean must be > 0");
  const double theta = std::pow(gamma, -alpha);
  std::vector<double> probs(levels);
  std::vector<double> rates(levels);
  double norm = 0.0;
  for (std::size_t j = 0; j < levels; ++j) norm += std::pow(theta, static_cast<double>(j));
  double raw_mean = 0.0;
  for (std::size_t j = 0; j < levels; ++j) {
    probs[j] = std::pow(theta, static_cast<double>(j)) / norm;
    rates[j] = std::pow(gamma, -static_cast<double>(j));  // slower deeper levels
    raw_mean += probs[j] / rates[j];
  }
  const double scale = raw_mean / mean;  // rate multiplier to hit the mean
  for (double& r : rates) r *= scale;
  return PhaseType::hyperexponential(std::move(probs), std::move(rates));
}

}  // namespace finwork::ph
