#pragma once
// Matrix-exponential (phase-type) service distributions in LAQT form.
//
// A distribution is the pair <p, B>: p is the entrance (row) vector over the
// internal phases and B is the service-rate matrix, B = M (I - P_internal).
// Then (Lipsky, "Queueing Theory: A Linear Algebraic Approach"):
//     F(t)   = 1 - Psi[exp(-tB)]          (PDF of completion by t)
//     b(t)   = Psi[exp(-tB) B]
//     R(t)   = Psi[exp(-tB)]
//     E(T^n) = n! Psi[V^n],  V = B^-1
// with Psi[X] := p X eps.
//
// The class also exposes the pieces a *network* embedding needs: per-phase
// total rates, internal jump probabilities and per-phase exit probabilities.

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "ph/rng.h"

namespace finwork::ph {

/// A phase-type distribution <p, B> with helpers for moments, density,
/// network embedding and exact sampling.
class PhaseType {
 public:
  /// Construct from an entrance vector and service-rate matrix.  `entry` must
  /// be a probability vector (non-negative, sums to 1); `rate_matrix` must be
  /// a nonsingular matrix whose negation is a sub-generator (positive
  /// diagonal, non-positive off-diagonal, non-negative "exit" row sums).
  PhaseType(la::Vector entry, la::Matrix rate_matrix, std::string name = {});

  // ---- named constructors -------------------------------------------------

  /// Exponential with the given rate (C^2 = 1).
  [[nodiscard]] static PhaseType exponential(double rate);
  /// Erlang-m with the given overall mean (C^2 = 1/m).
  [[nodiscard]] static PhaseType erlang(std::size_t stages, double mean);
  /// Hyperexponential with explicit branch probabilities and rates.
  [[nodiscard]] static PhaseType hyperexponential(std::vector<double> probs,
                                                  std::vector<double> rates);

  // ---- accessors ----------------------------------------------------------

  [[nodiscard]] std::size_t phases() const noexcept { return entry_.size(); }
  [[nodiscard]] const la::Vector& entry() const noexcept { return entry_; }
  [[nodiscard]] const la::Matrix& rate_matrix() const noexcept { return b_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Total departure rate of phase i (the diagonal of M).
  [[nodiscard]] double phase_rate(std::size_t i) const;
  /// Probability that a completion in phase i jumps to internal phase j.
  [[nodiscard]] double jump_probability(std::size_t i, std::size_t j) const;
  /// Probability that a completion in phase i leaves the distribution.
  [[nodiscard]] double exit_probability(std::size_t i) const;

  // ---- distribution functions ----------------------------------------------

  /// n-th raw moment E(T^n) = n! Psi[V^n].
  [[nodiscard]] double moment(std::size_t n) const;
  [[nodiscard]] double mean() const { return moment(1); }
  [[nodiscard]] double variance() const;
  /// Squared coefficient of variation C^2 = Var/mean^2.
  [[nodiscard]] double scv() const;

  /// Density b(t) = Psi[exp(-tB) B].
  [[nodiscard]] double pdf(double t) const;
  /// CDF F(t) = 1 - Psi[exp(-tB)].
  [[nodiscard]] double cdf(double t) const;
  /// Reliability R(t) = Psi[exp(-tB)].
  [[nodiscard]] double reliability(double t) const;

  /// Psi[X] = p X eps for an arbitrary square matrix of matching dimension.
  [[nodiscard]] double psi(const la::Matrix& x) const;

  /// Returns a copy rescaled so that its mean equals `new_mean` (time-scale
  /// change; C^2 and shape are preserved).
  [[nodiscard]] PhaseType with_mean(double new_mean) const;

  // ---- sampling -------------------------------------------------------------

  /// Draw one service time by simulating the phase process exactly.
  [[nodiscard]] double sample(rng::Xoshiro256& rng) const;
  /// Draw the entrance phase only (used by the network simulator, which
  /// advances phases itself).
  [[nodiscard]] std::size_t sample_entry_phase(rng::Xoshiro256& rng) const;
  /// Given a completed phase, draw the next phase or "exit".  Returns
  /// phases() to signal exit.
  [[nodiscard]] std::size_t sample_next_phase(rng::Xoshiro256& rng,
                                              std::size_t from) const;

 private:
  la::Vector entry_;
  la::Matrix b_;
  std::string name_;
  // Cached embedding pieces derived from B.
  la::Vector phase_rates_;          // M_ii
  la::Matrix jump_probs_;           // P_internal
  la::Vector exit_probs_;           // q_i = 1 - sum_j P_ij
};

}  // namespace finwork::ph
