#include "ph/phase_type.h"

#include <cmath>
#include <stdexcept>

#include "check/invariants.h"
#include "linalg/expm.h"
#include "linalg/lu.h"

namespace finwork::ph {

namespace {
constexpr double kProbTol = 1e-9;
}

PhaseType::PhaseType(la::Vector entry, la::Matrix rate_matrix, std::string name)
    : entry_(std::move(entry)), b_(std::move(rate_matrix)), name_(std::move(name)) {
  const std::size_t m = entry_.size();
  if (m == 0) throw std::invalid_argument("PhaseType: empty entrance vector");
  if (b_.rows() != m || b_.cols() != m) {
    throw std::invalid_argument("PhaseType: B dimension mismatch");
  }
  double psum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (entry_[i] < -kProbTol) {
      throw std::invalid_argument("PhaseType: negative entrance probability");
    }
    psum += entry_[i];
  }
  if (std::abs(psum - 1.0) > kProbTol) {
    throw std::invalid_argument("PhaseType: entrance vector must sum to 1");
  }

  // Derive the embedding pieces: B = M (I - P) with M = diag(B) gives
  // P = I - M^-1 B.
  phase_rates_ = la::Vector(m);
  jump_probs_ = la::Matrix(m, m, 0.0);
  exit_probs_ = la::Vector(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double rate = b_(i, i);
    if (rate <= 0.0) {
      throw std::invalid_argument("PhaseType: B diagonal must be positive");
    }
    phase_rates_[i] = rate;
    double row_jump = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const double pij = -b_(i, j) / rate;
      if (pij < -kProbTol) {
        throw std::invalid_argument(
            "PhaseType: positive off-diagonal in B (not a sub-generator)");
      }
      jump_probs_(i, j) = std::max(0.0, pij);
      row_jump += jump_probs_(i, j);
    }
    if (row_jump > 1.0 + kProbTol) {
      throw std::invalid_argument("PhaseType: internal jump mass exceeds 1");
    }
    exit_probs_[i] = std::max(0.0, 1.0 - row_jump);
  }
  if constexpr (check::kEnabled) {
    // Re-validate the derived embedding: the ad-hoc input screening above
    // guards user input, these guard the derivation itself.
    check::check_probability_vector(entry_, "PhaseType entry vector",
                                    check::kNoLevel, kProbTol);
    check::check_positive_rates(phase_rates_, "diag(M)");
    check::check_finite(exit_probs_, "PhaseType exit probabilities");
  }
}

PhaseType PhaseType::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  return PhaseType(la::Vector{1.0}, la::Matrix{{rate}}, "Exp");
}

PhaseType PhaseType::erlang(std::size_t stages, double mean) {
  if (stages == 0) throw std::invalid_argument("erlang: need >= 1 stage");
  if (mean <= 0.0) throw std::invalid_argument("erlang: mean must be > 0");
  const double rate = static_cast<double>(stages) / mean;
  la::Vector p(stages, 0.0);
  p[0] = 1.0;
  la::Matrix b(stages, stages, 0.0);
  for (std::size_t i = 0; i < stages; ++i) {
    b(i, i) = rate;
    if (i + 1 < stages) b(i, i + 1) = -rate;
  }
  return PhaseType(std::move(p), std::move(b),
                   "E" + std::to_string(stages));
}

PhaseType PhaseType::hyperexponential(std::vector<double> probs,
                                      std::vector<double> rates) {
  if (probs.empty() || probs.size() != rates.size()) {
    throw std::invalid_argument("hyperexponential: probs/rates mismatch");
  }
  const std::size_t m = probs.size();
  la::Vector p(m);
  la::Matrix b(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (rates[i] <= 0.0) {
      throw std::invalid_argument("hyperexponential: rates must be > 0");
    }
    p[i] = probs[i];
    b(i, i) = rates[i];
  }
  return PhaseType(std::move(p), std::move(b),
                   "H" + std::to_string(m));
}

double PhaseType::phase_rate(std::size_t i) const {
  if (i >= phases()) throw std::out_of_range("phase_rate");
  return phase_rates_[i];
}

double PhaseType::jump_probability(std::size_t i, std::size_t j) const {
  if (i >= phases() || j >= phases()) throw std::out_of_range("jump_probability");
  return jump_probs_(i, j);
}

double PhaseType::exit_probability(std::size_t i) const {
  if (i >= phases()) throw std::out_of_range("exit_probability");
  return exit_probs_[i];
}

double PhaseType::moment(std::size_t n) const {
  if (n == 0) return 1.0;
  // E(T^n) = n! Psi[V^n]; computed with n solves against eps instead of
  // forming V: x_0 = eps, x_k = V x_{k-1} = B^-1 x_{k-1}.
  const la::LuDecomposition lu(b_);
  la::Vector x = la::ones(phases());
  double factorial = 1.0;
  for (std::size_t k = 1; k <= n; ++k) {
    x = lu.solve(x);
    factorial *= static_cast<double>(k);
  }
  return factorial * la::dot(entry_, x);
}

double PhaseType::variance() const {
  const double m1 = moment(1);
  return moment(2) - m1 * m1;
}

double PhaseType::scv() const {
  const double m1 = moment(1);
  return variance() / (m1 * m1);
}

double PhaseType::pdf(double t) const {
  if (t < 0.0) return 0.0;
  // p exp(-tB) B eps; exit rates vector B eps first, then the expm action.
  const la::Vector exit_rates = b_ * la::ones(phases());
  la::Matrix neg_b = b_;
  neg_b *= -1.0;
  const la::Vector w = la::expm_action_left(entry_, neg_b, t);
  return la::dot(w, exit_rates);
}

double PhaseType::cdf(double t) const {
  if (t <= 0.0) return 0.0;
  return 1.0 - reliability(t);
}

double PhaseType::reliability(double t) const {
  if (t <= 0.0) return 1.0;
  la::Matrix neg_b = b_;
  neg_b *= -1.0;
  const la::Vector w = la::expm_action_left(entry_, neg_b, t);
  return w.sum();
}

double PhaseType::psi(const la::Matrix& x) const {
  if (x.rows() != phases() || x.cols() != phases()) {
    throw std::invalid_argument("psi: dimension mismatch");
  }
  return la::dot(entry_ * x, la::ones(phases()));
}

PhaseType PhaseType::with_mean(double new_mean) const {
  if (new_mean <= 0.0) throw std::invalid_argument("with_mean: mean must be > 0");
  const double factor = mean() / new_mean;  // rates scale by old/new
  la::Matrix b = b_;
  b *= factor;
  return PhaseType(entry_, std::move(b), name_);
}

double PhaseType::sample(rng::Xoshiro256& rng) const {
  std::size_t phase = sample_entry_phase(rng);
  double t = 0.0;
  while (phase < phases()) {
    t += rng::exponential(rng, phase_rates_[phase]);
    phase = sample_next_phase(rng, phase);
  }
  return t;
}

std::size_t PhaseType::sample_entry_phase(rng::Xoshiro256& rng) const {
  const double u = rng::uniform01(rng);
  double acc = 0.0;
  for (std::size_t i = 0; i < phases(); ++i) {
    acc += entry_[i];
    if (u < acc) return i;
  }
  return phases() - 1;  // guard against rounding
}

std::size_t PhaseType::sample_next_phase(rng::Xoshiro256& rng,
                                         std::size_t from) const {
  if (from >= phases()) throw std::out_of_range("sample_next_phase");
  const double u = rng::uniform01(rng);
  double acc = 0.0;
  for (std::size_t j = 0; j < phases(); ++j) {
    acc += jump_probs_(from, j);
    if (u < acc) return j;
  }
  return phases();  // exit
}

}  // namespace finwork::ph
