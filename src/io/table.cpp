#include "io/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace finwork::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(const std::vector<double>& values) {
  if (values.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

double Table::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= headers_.size()) {
    throw std::out_of_range("Table: index out of range");
  }
  return data_[row * headers_.size() + col];
}

void Table::print(std::ostream& os, int precision) const {
  const std::size_t ncol = headers_.size();
  std::vector<std::size_t> width(ncol);
  std::vector<std::vector<std::string>> cells(rows_);
  for (std::size_t c = 0; c < ncol; ++c) width[c] = headers_[c].size();
  for (std::size_t r = 0; r < rows_; ++r) {
    cells[r].resize(ncol);
    for (std::size_t c = 0; c < ncol; ++c) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(precision) << at(r, c);
      cells[r][c] = ss.str();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  for (std::size_t c = 0; c < ncol; ++c) {
    os << std::setw(static_cast<int>(width[c]) + 2) << headers_[c];
  }
  os << '\n';
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < ncol; ++c) {
      os << std::setw(static_cast<int>(width[c]) + 2) << cells[r][c];
    }
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << headers_[c];
  }
  os << '\n';
  os << std::setprecision(17);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ',';
      os << at(r, c);
    }
    os << '\n';
  }
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table: cannot open " + path);
  print_csv(out);
  if (!out) throw std::runtime_error("Table: write failed for " + path);
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace finwork::io
