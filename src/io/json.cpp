#include "io/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace finwork::io {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON error at offset " + std::to_string(pos_) + ": " +
                    what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid hex digit in \\u escape");
            }
            // Encode as UTF-8 (surrogate pairs unsupported: configs are ASCII).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc{} || result.ptr != token.data() + token.size()) {
      fail("invalid number '" + std::string(token) + "'");
    }
    if (!std::isfinite(value)) fail("number out of range");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw JsonError("value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw JsonError("value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw JsonError("value is not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  return contains(key) ? at(key).as_string() : std::move(fallback);
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

}  // namespace finwork::io
