#pragma once
// Minimal JSON parser for the CLI tool's experiment configs.  Supports the
// full JSON grammar (objects, arrays, strings with escapes, numbers, bools,
// null) with a nesting-depth limit; no external dependencies.

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace finwork::io {

/// Parse or access error with position/context information.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An immutable JSON document node.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parse a complete JSON document; trailing non-whitespace is an error.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member access; throws JsonError naming the missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Typed member access with defaults for optional config fields.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace finwork::io
