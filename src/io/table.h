#pragma once
// Small table writer used by the benchmark harness: collects named columns,
// prints an aligned human-readable table and a machine-readable CSV block so
// each figure binary's stdout is both inspectable and plottable.

#include <iosfwd>
#include <string>
#include <vector>

namespace finwork::io {

/// Column-oriented table of doubles with string headers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  [[nodiscard]] std::size_t num_columns() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_; }

  /// Append one row; must match the number of columns.
  void add_row(const std::vector<double>& values);

  /// Value accessor (row-major).
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// Aligned fixed-precision text table.
  void print(std::ostream& os, int precision = 4) const;
  /// CSV block (headers + rows, full precision).
  void print_csv(std::ostream& os) const;
  /// Write CSV to a file; throws on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<double> data_;  // row-major
  std::size_t rows_ = 0;
};

/// Print a titled section marker around a figure's output.
void print_section(std::ostream& os, const std::string& title);

}  // namespace finwork::io
