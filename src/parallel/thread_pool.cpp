#include "parallel/thread_pool.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"

namespace finwork::par {

namespace {
// Set for the lifetime of each worker's loop; queried by on_worker_thread().
thread_local bool t_on_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  // Workers may record spans/counters during static teardown; constructing
  // the obs registries first guarantees they outlive the pool.
  obs::ensure_initialized();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  Task task{std::move(fn), 0};
  if constexpr (obs::kEnabled) task.enqueue_ns = obs::now_ns();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
    queue_.push(std::move(task));
    obs::gauge_raise(obs::Gauge::kMaxQueueDepth, queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    if constexpr (obs::kEnabled) {
      obs::counter_add(obs::Counter::kPoolTasksExecuted);
      obs::counter_add(obs::Counter::kPoolTaskWaitNs,
                       obs::now_ns() - task.enqueue_ns);
    }
    task.fn();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);

  // Run inline when the range is small or when already on a pool worker:
  // submitting from a worker and blocking on the futures can deadlock once
  // every worker is parked waiting for subtasks none of them can run.
  if (n <= chunk || ThreadPool::on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::vector<std::future<void>> futures;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, body, grain);
}

double parallel_sum(ThreadPool& pool, std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& map,
                    std::size_t grain) {
  if (begin >= end) return 0.0;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = pool.size() * 4;
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);

  if (n <= chunk || ThreadPool::on_worker_thread()) {
    // Same chunk boundaries as the dispatched path, combined in the same
    // left-to-right order, so inline and pooled runs agree bitwise.
    double total = 0.0;
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      const std::size_t hi = std::min(end, lo + chunk);
      double s = 0.0;
      for (std::size_t i = lo; i < hi; ++i) s += map(i);
      total += s;
    }
    return total;
  }

  std::vector<std::future<double>> futures;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &map] {
      double s = 0.0;
      for (std::size_t i = lo; i < hi; ++i) s += map(i);
      return s;
    }));
  }
  // Combine in chunk order: deterministic independent of scheduling.
  double total = 0.0;
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      total += f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return total;
}

}  // namespace finwork::par
