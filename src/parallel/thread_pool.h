#pragma once
// A small fixed-size thread pool with a blocking task queue, plus
// parallel_for / parallel_reduce helpers used by the sweep drivers and the
// simulator's replication engine.
//
// Design notes (C++ Core Guidelines CP.*): tasks are type-erased
// move-only callables; the pool owns its threads (RAII — the destructor joins
// them); no detached threads anywhere; waiting uses condition variables, not
// spinning.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace finwork::par {

/// Fixed-size worker pool.  Submit returns a std::future; parallel_for blocks
/// until all chunks finish and rethrows the first exception raised by a chunk.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::packaged_task<R()>(std::forward<F>(f));
    std::future<R> fut = task.get_future();
    enqueue([t = std::make_shared<std::packaged_task<R()>>(std::move(task))] {
      (*t)();
    });
    return fut;
  }

  /// The process-wide default pool (lazily constructed, hardware-sized).
  static ThreadPool& global();

  /// True when the calling thread is a worker of *any* ThreadPool.  Nested
  /// fan-out helpers (parallel_for, the parallel linalg kernels) consult this
  /// and run inline instead of submitting: a worker that blocks on futures
  /// for subtasks queued behind other blocked workers deadlocks the pool.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  /// A queued task plus its enqueue timestamp (obs task-latency counter;
  /// zero when the observability layer is compiled out).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  /// Locks, pushes, and notifies; also feeds the obs queue-depth gauge.
  /// Lives in the .cpp so the header carries no obs dependency.
  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run body(i) for i in [begin, end) across the pool in contiguous chunks.
/// Blocks until complete.  `grain` is the minimum chunk size.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Same, on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Deterministic parallel reduction: result = reduce over i of map(i),
/// combined left-to-right by chunk index so the result does not depend on
/// thread scheduling.
double parallel_sum(ThreadPool& pool, std::size_t begin, std::size_t end,
                    const std::function<double(std::size_t)>& map,
                    std::size_t grain = 1);

}  // namespace finwork::par
