#include "pf/order_statistics.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace finwork::pf {

namespace {

/// Adaptive Simpson on [a, b].
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double fa, double fm, double fb, double eps,
                        int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * eps) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson(f, a, m, fa, flm, fm, 0.5 * eps, depth - 1) +
         adaptive_simpson(f, m, b, fm, frm, fb, 0.5 * eps, depth - 1);
}

double integrate_tail(const std::function<double(double)>& integrand,
                      double mean_scale, double rel_tol) {
  // Integrate over [0, T] windows that double until the window contributes
  // a negligible fraction — PH tails decay exponentially so this terminates.
  double total = 0.0;
  double lo = 0.0;
  double window = 4.0 * mean_scale;
  for (int iter = 0; iter < 64; ++iter) {
    const double hi = lo + window;
    const double fa = integrand(lo);
    const double fm = integrand(0.5 * (lo + hi));
    const double fb = integrand(hi);
    const double piece = adaptive_simpson(integrand, lo, hi, fa, fm, fb,
                                          rel_tol * mean_scale, 40);
    total += piece;
    if (std::abs(piece) < rel_tol * std::max(total, mean_scale) &&
        integrand(hi) < rel_tol) {
      return total;
    }
    lo = hi;
    window *= 2.0;
  }
  return total;
}

}  // namespace

double expected_maximum(const ph::PhaseType& dist, std::size_t k,
                        double rel_tol) {
  if (k == 0) throw std::invalid_argument("expected_maximum: k must be >= 1");
  const double kd = static_cast<double>(k);
  const auto integrand = [&](double t) {
    const double r = dist.reliability(t);
    // 1 - (1 - R)^k, computed stably for small R via log1p.
    if (r <= 0.0) return 0.0;
    if (r >= 1.0) return 1.0;
    return -std::expm1(kd * std::log1p(-r));
  };
  return integrate_tail(integrand, dist.mean(), rel_tol);
}

double expected_minimum(const ph::PhaseType& dist, std::size_t k,
                        double rel_tol) {
  if (k == 0) throw std::invalid_argument("expected_minimum: k must be >= 1");
  const double kd = static_cast<double>(k);
  const auto integrand = [&](double t) {
    return std::pow(dist.reliability(t), kd);
  };
  return integrate_tail(integrand, dist.mean(), rel_tol);
}

double fork_join_makespan(const ph::PhaseType& dist, std::size_t tasks,
                          std::size_t processors) {
  if (tasks == 0) throw std::invalid_argument("fork_join_makespan: no tasks");
  if (processors == 0) {
    throw std::invalid_argument("fork_join_makespan: no processors");
  }
  const std::size_t full_waves = tasks / processors;
  const std::size_t remainder = tasks % processors;
  double total = static_cast<double>(full_waves) *
                 expected_maximum(dist, processors);
  if (remainder > 0) total += expected_maximum(dist, remainder);
  return total;
}

double fork_join_speedup(const ph::PhaseType& dist, std::size_t tasks,
                         std::size_t processors) {
  const double serial = static_cast<double>(tasks) * dist.mean();
  return serial / fork_join_makespan(dist, tasks, processors);
}

}  // namespace finwork::pf
