#pragma once
// Steady-state product-form baselines the paper compares against:
//   * Buzen's convolution algorithm with load-dependent stations (exact for
//     every cluster this library builds: single-server, c-server and ample
//     stations with exponential-equivalent mean rates),
//   * exact Mean Value Analysis for networks of single-server FCFS and
//     infinite-server (delay) stations,
//   * an open Jackson network solver (traffic equations + M/M/c stations).
//
// For non-exponential service these are the *exponential approximations*
// whose error the paper quantifies; for exponential service the transient
// solver's steady state must agree with them exactly (tested).

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "network/network_spec.h"

namespace finwork::pf {

/// Station throughputs/utilizations of a closed product-form network.
struct ClosedNetworkResult {
  double system_throughput = 0.0;  ///< task completions per unit time
  double cycle_time = 0.0;         ///< 1 / throughput: mean inter-departure
  la::Vector station_throughput;   ///< per-station completion rates
  la::Vector utilization;          ///< fraction of servers busy (per station)
  la::Vector mean_queue_length;    ///< time-average customers at each station
};

/// Buzen's convolution algorithm on the reduced-product space with
/// load-dependent completion rates mu_j(n) = min(n, c_j) / mean_service_j.
/// Uses only the stations' mean service times (the exponential assumption).
[[nodiscard]] ClosedNetworkResult convolution(const net::NetworkSpec& spec,
                                              std::size_t population);

/// Exact MVA; stations with multiplicity 1 are FCFS queues, stations with
/// multiplicity >= population are delay (infinite-server) stations.  Throws
/// std::invalid_argument for intermediate multiplicities (use convolution).
[[nodiscard]] ClosedNetworkResult exact_mva(const net::NetworkSpec& spec,
                                            std::size_t population);

/// Per-station metrics of an open Jackson network.
struct OpenNetworkResult {
  bool stable = false;
  la::Vector arrival_rates;       ///< lambda_j from the traffic equations
  la::Vector utilization;         ///< rho_j = lambda_j / (c_j mu_j)
  la::Vector mean_customers;      ///< L_j (M/M/c formulas)
  la::Vector mean_response_time;  ///< W_j = L_j / lambda_j
  double total_mean_customers = 0.0;
  double system_response_time = 0.0;  ///< mean sojourn per task (Little)
};

/// Open Jackson network fed by Poisson arrivals at rate `lambda` routed by
/// the spec's entry vector.  Service uses exponential(mean) at each station.
[[nodiscard]] OpenNetworkResult open_jackson(const net::NetworkSpec& spec,
                                             double lambda);

}  // namespace finwork::pf
