#include "pf/product_form.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/lu.h"

namespace finwork::pf {

namespace {

/// Per-station convolution factors F_j(n) = y_j^n / prod_{i<=n} a_j(i) with
/// a_j(i) = min(i, c_j), where y_j is the (scaled) service demand.
std::vector<double> station_factors(double demand, std::size_t servers,
                                    std::size_t population) {
  std::vector<double> f(population + 1);
  f[0] = 1.0;
  for (std::size_t n = 1; n <= population; ++n) {
    const double a = static_cast<double>(std::min(n, servers));
    f[n] = f[n - 1] * demand / a;
  }
  return f;
}

/// Convolve g with a station's factors, producing the partial normalizing
/// vector including that station.
std::vector<double> convolve(const std::vector<double>& g,
                             const std::vector<double>& f) {
  std::vector<double> out(g.size(), 0.0);
  for (std::size_t n = 0; n < g.size(); ++n) {
    double s = 0.0;
    for (std::size_t m = 0; m <= n; ++m) s += f[m] * g[n - m];
    out[n] = s;
  }
  return out;
}

}  // namespace

ClosedNetworkResult convolution(const net::NetworkSpec& spec,
                                std::size_t population) {
  if (population == 0) {
    throw std::invalid_argument("convolution: population must be >= 1");
  }
  const std::size_t s = spec.num_stations();
  const la::Vector visits = spec.visit_ratios();

  // Scaled demands keep G(n) in floating range for large populations.
  la::Vector demand(s);
  double beta = 0.0;
  for (std::size_t j = 0; j < s; ++j) {
    demand[j] = visits[j] * spec.station(j).service.mean();
    beta = std::max(beta, demand[j]);
  }
  if (beta <= 0.0) throw std::invalid_argument("convolution: zero demands");

  std::vector<std::vector<double>> factors(s);
  for (std::size_t j = 0; j < s; ++j) {
    factors[j] = station_factors(demand[j] / beta,
                                 spec.station(j).multiplicity, population);
  }

  std::vector<double> g(population + 1, 0.0);
  g[0] = 1.0;
  for (std::size_t j = 0; j < s; ++j) g = convolve(g, factors[j]);

  ClosedNetworkResult res;
  res.system_throughput = g[population - 1] / g[population] / beta;
  res.cycle_time = 1.0 / res.system_throughput;
  res.station_throughput = la::Vector(s);
  res.utilization = la::Vector(s);
  res.mean_queue_length = la::Vector(s);

  for (std::size_t j = 0; j < s; ++j) {
    res.station_throughput[j] = visits[j] * res.system_throughput;
    // Marginal distribution of station j: convolution of all other stations.
    std::vector<double> gc(population + 1, 0.0);
    gc[0] = 1.0;
    for (std::size_t l = 0; l < s; ++l) {
      if (l != j) gc = convolve(gc, factors[l]);
    }
    const std::size_t c = spec.station(j).multiplicity;
    double q = 0.0, busy = 0.0;
    for (std::size_t n = 0; n <= population; ++n) {
      const double pn = factors[j][n] * gc[population - n] / g[population];
      q += static_cast<double>(n) * pn;
      busy += static_cast<double>(std::min(n, c)) * pn;
    }
    res.mean_queue_length[j] = q;
    res.utilization[j] = busy / static_cast<double>(c);
  }
  return res;
}

ClosedNetworkResult exact_mva(const net::NetworkSpec& spec,
                              std::size_t population) {
  if (population == 0) {
    throw std::invalid_argument("exact_mva: population must be >= 1");
  }
  const std::size_t s = spec.num_stations();
  const la::Vector visits = spec.visit_ratios();
  std::vector<bool> is_delay(s);
  for (std::size_t j = 0; j < s; ++j) {
    const std::size_t c = spec.station(j).multiplicity;
    if (c >= population) {
      is_delay[j] = true;
    } else if (c == 1) {
      is_delay[j] = false;
    } else {
      throw std::invalid_argument(
          "exact_mva: station '" + spec.station(j).name +
          "' has intermediate multiplicity; use convolution()");
    }
  }

  la::Vector q(s, 0.0);  // Q_j(n - 1) across iterations
  double x = 0.0;
  la::Vector r(s, 0.0);
  for (std::size_t n = 1; n <= population; ++n) {
    double denom = 0.0;
    for (std::size_t j = 0; j < s; ++j) {
      const double sj = spec.station(j).service.mean();
      r[j] = is_delay[j] ? sj : sj * (1.0 + q[j]);
      denom += visits[j] * r[j];
    }
    x = static_cast<double>(n) / denom;
    for (std::size_t j = 0; j < s; ++j) q[j] = x * visits[j] * r[j];
  }

  ClosedNetworkResult res;
  res.system_throughput = x;
  res.cycle_time = 1.0 / x;
  res.station_throughput = la::Vector(s);
  res.utilization = la::Vector(s);
  res.mean_queue_length = q;
  for (std::size_t j = 0; j < s; ++j) {
    res.station_throughput[j] = visits[j] * x;
    const double c = static_cast<double>(spec.station(j).multiplicity);
    res.utilization[j] =
        std::min(1.0, x * visits[j] * spec.station(j).service.mean() / c);
  }
  return res;
}

namespace {

/// Erlang-C probability of waiting for an M/M/c queue with offered load a
/// and utilization rho = a / c < 1.
double erlang_c(double a, std::size_t c) {
  double term = 1.0;  // a^k / k!
  double sum = 1.0;   // k = 0
  for (std::size_t k = 1; k < c; ++k) {
    term *= a / static_cast<double>(k);
    sum += term;
  }
  const double ac = term * a / static_cast<double>(c);  // a^c / c!
  const double rho = a / static_cast<double>(c);
  return (ac / (1.0 - rho)) / (sum + ac / (1.0 - rho));
}

}  // namespace

OpenNetworkResult open_jackson(const net::NetworkSpec& spec, double lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("open_jackson: lambda must be > 0");
  }
  const std::size_t s = spec.num_stations();
  // Traffic equations: lam = lambda * entry + lam * routing.
  la::Matrix a = la::identity(s);
  a -= spec.routing();
  la::Vector rhs = spec.entry();
  rhs *= lambda;
  OpenNetworkResult res;
  res.arrival_rates = la::solve_left(a, rhs);
  res.utilization = la::Vector(s);
  res.mean_customers = la::Vector(s);
  res.mean_response_time = la::Vector(s);
  res.stable = true;
  for (std::size_t j = 0; j < s; ++j) {
    const std::size_t c = spec.station(j).multiplicity;
    const double offered = res.arrival_rates[j] * spec.station(j).service.mean();
    const double rho = offered / static_cast<double>(c);
    res.utilization[j] = rho;
    if (rho >= 1.0) {
      res.stable = false;
      continue;
    }
    const double pw = erlang_c(offered, c);
    const double lq = pw * rho / (1.0 - rho);
    res.mean_customers[j] = lq + offered;
    res.mean_response_time[j] = res.mean_customers[j] / res.arrival_rates[j];
  }
  if (res.stable) {
    res.total_mean_customers = res.mean_customers.sum();
    res.system_response_time = res.total_mean_customers / lambda;
  }
  return res;
}

}  // namespace finwork::pf
