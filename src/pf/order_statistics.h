#pragma once
// Order-statistics model for independent fork/join workloads — the
// alternative analysis the paper's introduction contrasts with queueing
// models.  When K iid tasks run on K private processors with NO shared
// resources, the wave completes at the maximum of K iid service times and a
// job of N tasks takes ceil(N/K) waves (synchronized scheduling) or follows
// the renewal-ish bound (greedy scheduling).

#include <cstddef>

#include "ph/phase_type.h"

namespace finwork::pf {

/// E[max of k iid draws] of a phase-type variable, by adaptive Simpson
/// quadrature of the tail identity E[max] = int_0^inf (1 - F(t)^k) dt.
[[nodiscard]] double expected_maximum(const ph::PhaseType& dist, std::size_t k,
                                      double rel_tol = 1e-9);

/// E[min of k iid draws] = int_0^inf R(t)^k dt.
[[nodiscard]] double expected_minimum(const ph::PhaseType& dist, std::size_t k,
                                      double rel_tol = 1e-9);

/// Makespan of N iid tasks on K private processors under *synchronized*
/// (wave) scheduling: full waves of K plus a final partial wave.
[[nodiscard]] double fork_join_makespan(const ph::PhaseType& dist,
                                        std::size_t tasks,
                                        std::size_t processors);

/// Speedup of the fork/join model versus serial execution.
[[nodiscard]] double fork_join_speedup(const ph::PhaseType& dist,
                                       std::size_t tasks,
                                       std::size_t processors);

}  // namespace finwork::pf
