#pragma once
// Compile-time switch for the runtime invariant checker.
//
// The checker functions in check/invariants.h are always compiled and
// callable (tests exercise them directly), but the *call sites* in solver
// hot paths are guarded by `if constexpr (finwork::check::kEnabled)` so a
// release build pays nothing for them.  The CMake option
// FINWORK_CHECK_INVARIANTS (default ON for Debug builds) defines the macro
// below on every target that links finwork_check.

namespace finwork::check {

#if defined(FINWORK_CHECK_INVARIANTS) && FINWORK_CHECK_INVARIANTS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

}  // namespace finwork::check
