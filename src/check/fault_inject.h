#pragma once
// Deterministic fault-injection framework for the numerical-robustness layer.
//
// Every degradation path of the fallback ladder (docs/ROBUSTNESS.md) has a
// *named site* where a forced failure can be armed: a factorization can be
// made to look singular, an iterative backend can be made to report
// non-convergence, a ModelCache build can be made to throw.  Tests arm a
// site for a bounded number of firings, trigger the code path, and assert
// that the fallback produced the right numbers and telemetry — so the
// degradation paths are exercised in CI instead of trusted on faith.
//
// The probes compile to `false` (zero code) unless the build enables
// FINWORK_FAULT_INJECT (CMake option, default OFF; see the debug-fault
// preset).  The control API stays declared in every build so tests link; it
// throws std::logic_error when the framework is compiled out.
//
// Sites are a fixed registry (see kFaultSites in fault_inject.cpp and the
// table in docs/ROBUSTNESS.md); arming an unknown site throws, so a typo in
// a test fails loudly instead of silently never firing.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

// Inclusion marker: lets the compile-out test prove that hot-path headers do
// not drag the framework in (probes belong in .cpp files only).
#define FINWORK_FAULT_INJECT_INCLUDED 1

namespace finwork::check {

#if defined(FINWORK_FAULT_INJECT) && FINWORK_FAULT_INJECT
inline constexpr bool kFaultInjectEnabled = true;
#else
inline constexpr bool kFaultInjectEnabled = false;
#endif

namespace detail {
[[nodiscard]] bool should_fail_impl(std::string_view site) noexcept;
}  // namespace detail

/// Hot-path probe: true when an armed fault at `site` fires, consuming one
/// armed failure.  Always false — and zero generated code — when the
/// framework is compiled out.
[[nodiscard]] inline bool fault_at(std::string_view site) noexcept {
  if constexpr (kFaultInjectEnabled) return detail::should_fail_impl(site);
  return false;
}

/// The full site registry, in declaration order.
[[nodiscard]] std::vector<std::string_view> fault_sites();

/// Arm `site` to fire on its next `failures` probes.  Re-arming replaces the
/// remaining count.  Throws std::logic_error if the framework is compiled
/// out or `site` is not in the registry.
void arm_fault(std::string_view site, std::size_t failures = 1);

/// Cancel any remaining armed failures at `site` (unknown site throws).
void disarm_fault(std::string_view site);

/// Cancel every armed failure (safe no-op when compiled out).
void disarm_all_faults() noexcept;

/// Times `site` has actually fired since process start (0 when compiled
/// out; unknown site throws).
[[nodiscard]] std::uint64_t fault_fire_count(std::string_view site);

}  // namespace finwork::check
