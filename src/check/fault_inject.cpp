#include "check/fault_inject.h"

#include <array>
#include <atomic>
#include <stdexcept>
#include <string>

namespace finwork::check {

namespace {

// The site registry.  One entry per forced-failure point; keep in sync with
// the table in docs/ROBUSTNESS.md.
constexpr std::array<std::string_view, 7> kFaultSites = {
    "lu/factorize",        // dense PLU reports the matrix singular
    "ladder/refine",       // iterative refinement fails to reduce the residual
    "ladder/rescue",       // the shifted-retry rescue stage is skipped
    "iterative/neumann",   // Neumann series reports non-convergence
    "iterative/bicgstab",  // BiCGSTAB reports non-convergence
    "iterative/gmres",     // GMRES reports non-convergence
    "cache/build",         // ModelCache single-flight build throws
};

struct SiteState {
  std::atomic<std::size_t> armed{0};
  std::atomic<std::uint64_t> fired{0};
};

// Zero-initialized globals, trivially destructible: probes from worker
// threads during static teardown can never touch a dead object.
std::array<SiteState, kFaultSites.size()> g_sites{};

std::size_t site_index(std::string_view site) {
  for (std::size_t i = 0; i < kFaultSites.size(); ++i) {
    if (kFaultSites[i] == site) return i;
  }
  throw std::logic_error("fault_inject: unknown site '" + std::string(site) +
                         "'");
}

}  // namespace

namespace detail {

bool should_fail_impl(std::string_view site) noexcept {
  for (std::size_t i = 0; i < kFaultSites.size(); ++i) {
    if (kFaultSites[i] != site) continue;
    SiteState& st = g_sites[i];
    std::size_t armed = st.armed.load(std::memory_order_relaxed);
    while (armed > 0) {
      if (st.armed.compare_exchange_weak(armed, armed - 1,
                                         std::memory_order_relaxed)) {
        st.fired.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }
  return false;  // unknown site: probes never fire (arming validates names)
}

}  // namespace detail

std::vector<std::string_view> fault_sites() {
  return {kFaultSites.begin(), kFaultSites.end()};
}

void arm_fault(std::string_view site, std::size_t failures) {
  const std::size_t i = site_index(site);
  if constexpr (!kFaultInjectEnabled) {
    throw std::logic_error(
        "fault_inject: framework compiled out (build with "
        "FINWORK_FAULT_INJECT=ON to arm faults)");
  }
  g_sites[i].armed.store(failures, std::memory_order_relaxed);
}

void disarm_fault(std::string_view site) {
  g_sites[site_index(site)].armed.store(0, std::memory_order_relaxed);
}

void disarm_all_faults() noexcept {
  for (SiteState& st : g_sites) st.armed.store(0, std::memory_order_relaxed);
}

std::uint64_t fault_fire_count(std::string_view site) {
  return g_sites[site_index(site)].fired.load(std::memory_order_relaxed);
}

}  // namespace finwork::check
