#pragma once
// Runtime invariant checker for the LAQT transient recursion.
//
// The recursion V_k = (I - P_k)^-1 M_k^-1, Y_k = V_k M_k Q_k and the epoch
// sums over Y_K R_K silently produce garbage the moment a matrix stops
// being substochastic or a probability vector drifts off the simplex.  The
// checkers here state those laws explicitly and, on violation, throw an
// InvariantViolation that names the offending matrix/vector, the population
// level k, and the first offending row — enough to localize the defect
// without a debugger.
//
// All checkers are always compiled; hot-path call sites guard them with
// `if constexpr (check::kEnabled)` (see check_config.h) so release builds
// pay nothing.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "check/check_config.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace finwork::check {

/// Sentinel for checks on objects without a population level (e.g. a
/// phase-type entrance vector).
inline constexpr std::size_t kNoLevel = static_cast<std::size_t>(-1);

/// Default absolute tolerance for probability-mass comparisons.
inline constexpr double kDefaultTolerance = 1e-9;

/// Thrown when a model invariant fails.  Carries enough structure for tests
/// and callers to dispatch on where the violation happened.
class InvariantViolation : public std::logic_error {
 public:
  InvariantViolation(std::string_view invariant, std::string_view object,
                     std::size_t level, std::size_t row, std::string detail);

  /// Short name of the violated law, e.g. "substochastic".
  [[nodiscard]] const std::string& invariant() const noexcept {
    return invariant_;
  }
  /// Name of the offending matrix or vector, e.g. "P_k".
  [[nodiscard]] const std::string& object() const noexcept { return object_; }
  /// Population level k, or kNoLevel.
  [[nodiscard]] std::size_t level() const noexcept { return level_; }
  /// First offending row/index, or kNoLevel if not row-specific.
  [[nodiscard]] std::size_t row() const noexcept { return row_; }

 private:
  std::string invariant_;
  std::string object_;
  std::size_t level_;
  std::size_t row_;
};

/// Every entry finite (no NaN/Inf propagation).
void check_finite(const la::Vector& v, std::string_view name,
                  std::size_t level = kNoLevel);

/// Non-negative entries summing to 1 within `tol` (entrance vectors,
/// steady-state distributions).
void check_probability_vector(const la::Vector& pi, std::string_view name,
                              std::size_t level = kNoLevel,
                              double tol = kDefaultTolerance);

/// Strictly positive, finite entries (the diagonal of M_k).
void check_positive_rates(const la::Vector& rates, std::string_view name,
                          std::size_t level = kNoLevel);

/// Non-negative entries, every row sum <= 1 + tol (P_k).
void check_substochastic(const la::CsrMatrix& m, std::string_view name,
                         std::size_t level = kNoLevel,
                         double tol = kDefaultTolerance);

/// Non-negative entries, every row sum == 1 within tol (R_k).
void check_stochastic(const la::CsrMatrix& m, std::string_view name,
                      std::size_t level = kNoLevel,
                      double tol = kDefaultTolerance);

/// Row conservation of one level: P_k eps + Q_k eps = eps (something always
/// happens next — internal move or departure).
void check_level_flow(const la::CsrMatrix& p, const la::CsrMatrix& q,
                      std::size_t level, double tol = kDefaultTolerance);

/// Fixed-point residual: ||pi_next - pi||_inf <= tol, used for the
/// steady-state law p_ss Y_K R_K = p_ss after the power iteration reports
/// convergence.
void check_fixed_point(const la::Vector& pi, const la::Vector& pi_next,
                       std::string_view name, std::size_t level,
                       double tol);

}  // namespace finwork::check
