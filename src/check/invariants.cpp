#include "check/invariants.h"

#include <cmath>
#include <sstream>

#include "obs/counters.h"
#include "obs/sink.h"

namespace finwork::check {

namespace {

std::string format_message(std::string_view invariant, std::string_view object,
                           std::size_t level, std::size_t row,
                           const std::string& detail) {
  std::ostringstream ss;
  ss << "invariant violation [" << invariant << "] in " << object;
  if (level != kNoLevel) ss << " at population level " << level;
  if (row != kNoLevel) ss << ", row " << row;
  ss << ": " << detail;
  return ss.str();
}

[[noreturn]] void fail(std::string_view invariant, std::string_view object,
                       std::size_t level, std::size_t row,
                       std::string detail) {
  // Violations surface twice: as a structured obs event (machine-readable,
  // exported with the trace) and as the InvariantViolation the caller sees.
  obs::counter_add(obs::Counter::kInvariantViolations);
  obs::emit_event(std::string("invariant-violation/") + std::string(invariant),
                  std::string(object), level, row, detail);
  throw InvariantViolation(invariant, object, level, row, std::move(detail));
}

std::string number(double x) {
  std::ostringstream ss;
  ss.precision(17);
  ss << x;
  return ss.str();
}

/// Row sums of a CSR matrix with per-entry sign screening; calls `fail` on
/// the first negative entry.
la::Vector nonneg_row_sums(const la::CsrMatrix& m, std::string_view invariant,
                           std::string_view name, std::size_t level) {
  la::Vector sums(m.rows(), 0.0);
  const auto& row_ptr = m.row_ptr();
  const auto& values = m.values();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t idx = row_ptr[r]; idx < row_ptr[r + 1]; ++idx) {
      const double v = values[idx];
      if (!std::isfinite(v)) {
        fail(invariant, name, level, r, "non-finite entry " + number(v));
      }
      if (v < 0.0) {
        fail(invariant, name, level, r, "negative entry " + number(v));
      }
      sums[r] += v;
    }
  }
  return sums;
}

}  // namespace

InvariantViolation::InvariantViolation(std::string_view invariant,
                                       std::string_view object,
                                       std::size_t level, std::size_t row,
                                       std::string detail)
    : std::logic_error(
          format_message(invariant, object, level, row, detail)),
      invariant_(invariant),
      object_(object),
      level_(level),
      row_(row) {}

void check_finite(const la::Vector& v, std::string_view name,
                  std::size_t level) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      fail("finite", name, level, i, "entry is " + number(v[i]));
    }
  }
}

void check_probability_vector(const la::Vector& pi, std::string_view name,
                              std::size_t level, double tol) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  double sum = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (!std::isfinite(pi[i])) {
      fail("probability-vector", name, level, i,
           "non-finite entry " + number(pi[i]));
    }
    if (pi[i] < -tol) {
      fail("probability-vector", name, level, i,
           "negative entry " + number(pi[i]));
    }
    sum += pi[i];
  }
  if (std::abs(sum - 1.0) > tol) {
    fail("probability-vector", name, level, kNoLevel,
         "mass " + number(sum) + " differs from 1 by more than " +
             number(tol));
  }
}

void check_positive_rates(const la::Vector& rates, std::string_view name,
                          std::size_t level) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (!std::isfinite(rates[i]) || rates[i] <= 0.0) {
      fail("positive-rates", name, level, i,
           "rate " + number(rates[i]) + " is not a positive finite number");
    }
  }
}

void check_substochastic(const la::CsrMatrix& m, std::string_view name,
                         std::size_t level, double tol) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  const la::Vector sums = nonneg_row_sums(m, "substochastic", name, level);
  for (std::size_t r = 0; r < sums.size(); ++r) {
    if (sums[r] > 1.0 + tol) {
      fail("substochastic", name, level, r,
           "row sum " + number(sums[r]) + " exceeds 1");
    }
  }
}

void check_stochastic(const la::CsrMatrix& m, std::string_view name,
                      std::size_t level, double tol) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  const la::Vector sums = nonneg_row_sums(m, "stochastic", name, level);
  for (std::size_t r = 0; r < sums.size(); ++r) {
    if (std::abs(sums[r] - 1.0) > tol) {
      fail("stochastic", name, level, r,
           "row sum " + number(sums[r]) + " differs from 1");
    }
  }
}

void check_level_flow(const la::CsrMatrix& p, const la::CsrMatrix& q,
                      std::size_t level, double tol) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  if (p.rows() != q.rows()) {
    fail("level-flow", "P_k/Q_k", level, kNoLevel,
         "row-count mismatch: P has " + std::to_string(p.rows()) +
             " rows, Q has " + std::to_string(q.rows()));
  }
  const la::Vector ps = p.row_sums();
  const la::Vector qs = q.row_sums();
  for (std::size_t r = 0; r < ps.size(); ++r) {
    const double total = ps[r] + qs[r];
    if (!std::isfinite(total) || std::abs(total - 1.0) > tol) {
      fail("level-flow", "P_k + Q_k", level, r,
           "P row sum " + number(ps[r]) + " + Q row sum " + number(qs[r]) +
               " differs from 1");
    }
  }
}

void check_fixed_point(const la::Vector& pi, const la::Vector& pi_next,
                       std::string_view name, std::size_t level, double tol) {
  obs::counter_add(obs::Counter::kInvariantChecks);
  if (pi.size() != pi_next.size()) {
    fail("fixed-point", name, level, kNoLevel,
         "size mismatch: " + std::to_string(pi.size()) + " vs " +
             std::to_string(pi_next.size()));
  }
  double worst = 0.0;
  std::size_t worst_row = kNoLevel;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const double r = std::abs(pi_next[i] - pi[i]);
    if (!std::isfinite(r)) {
      fail("fixed-point", name, level, i, "non-finite residual");
    }
    if (r > worst) {
      worst = r;
      worst_row = i;
    }
  }
  if (worst > tol) {
    fail("fixed-point", name, level, worst_row,
         "residual " + number(worst) + " exceeds tolerance " + number(tol));
  }
}

}  // namespace finwork::check
