#pragma once
// Shared main() for the perf harnesses: run google-benchmark as usual (the
// console table still prints), then write a machine-readable finwork perf
// record so repeated runs are diffable (obs/perf_record.h documents the
// schema).  The record lands in BENCH_<tool>.json in the working directory
// unless --perf-out=PATH says otherwise; --perf-out is consumed here and
// never reaches google-benchmark.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/perf_record.h"

namespace finwork::bench {

/// Console output plus capture of every finished run into PerfEntry rows.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      obs::PerfEntry entry;
      entry.name = run.benchmark_name();
      entry.real_seconds = run.real_accumulated_time;
      entry.iterations = static_cast<std::uint64_t>(run.iterations);
      entry.metrics["cpu_seconds"] = run.cpu_accumulated_time;
      for (const auto& [name, counter] : run.counters) {
        entry.metrics[name] = counter.value;
      }
      entries_.push_back(std::move(entry));
    }
  }

  std::vector<obs::PerfEntry> take_entries() { return std::move(entries_); }

 private:
  std::vector<obs::PerfEntry> entries_;
};

inline int perf_record_main(const char* tool, int argc, char** argv) {
  std::string out_path = std::string("BENCH_") + tool + ".json";
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--perf-out=", 0) == 0) {
      out_path = arg.substr(11);
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());

  obs::PerfRecord record(tool);
  RecordingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  for (obs::PerfEntry& entry : reporter.take_entries()) {
    record.add_entry(std::move(entry));
  }
  record.set_meta("benchmarks_run", std::to_string(ran));
  benchmark::Shutdown();

  if (!record.write_file(out_path)) {
    std::cerr << "perf_record: cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "perf record written to " << out_path << '\n';
  return 0;
}

}  // namespace finwork::bench

#define FINWORK_PERF_RECORD_MAIN(tool)                            \
  int main(int argc, char** argv) {                               \
    return finwork::bench::perf_record_main(tool, argc, argv);    \
  }
