// Scaling study: transient-solver cost versus cluster size and architecture,
// and the dense-LU versus matrix-free iterative path on the same network.
// This is the ablation DESIGN.md calls out for the solver-backend choice.

#include <benchmark/benchmark.h>

#include "perf_record_main.h"

#include "cluster/experiments.h"
#include "core/transient_solver.h"

namespace {

using namespace finwork;

cluster::ExperimentConfig config(cluster::Architecture arch, std::size_t k,
                                 double remote_scv) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = arch;
  cfg.workstations = k;
  if (remote_scv != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(remote_scv);
  }
  return cfg;
}

void BM_CentralMakespanVsK(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kCentral, k, 10.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  for (auto _ : state) {
    core::TransientSolver solver(spec, k);
    benchmark::DoNotOptimize(solver.makespan(30));
  }
  state.counters["states"] =
      static_cast<double>(net::StateSpace(spec, k).dimension(k));
}
BENCHMARK(BM_CentralMakespanVsK)->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedMakespanVsK(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, k, 1.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  for (auto _ : state) {
    core::TransientSolver solver(spec, k);
    benchmark::DoNotOptimize(solver.makespan(2 * k));
  }
  state.counters["states"] =
      static_cast<double>(net::StateSpace(spec, k).dimension(k));
}
BENCHMARK(BM_DistributedMakespanVsK)->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_DenseBackend(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, k, 4.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  core::SolverOptions opts;  // defaults choose dense below the threshold
  for (auto _ : state) {
    core::TransientSolver solver(spec, k, opts);
    benchmark::DoNotOptimize(solver.makespan(2 * k));
  }
}
BENCHMARK(BM_DenseBackend)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

// Saturated-phase cost versus workload size N on a fixed K=6 distributed
// cluster (D(6) = 3003, dense path).  With the quasi-steady-state
// fast-forward the curve must go near-flat once N exceeds the mixing time;
// without it the cost is linear in N.  The solver is built once — the
// per-iteration work is the epoch recursion itself.
void BM_SaturatedPhaseVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, 6, 1.0);
  static const net::NetworkSpec spec = cluster::build_cluster(cfg);
  static core::TransientSolver solver(spec, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.makespan(n));
  }
  state.counters["tasks"] = static_cast<double>(n);
}
BENCHMARK(BM_SaturatedPhaseVsN)
    ->RangeMultiplier(10)
    ->Range(100, 1000000)
    ->Unit(benchmark::kMillisecond);

void BM_IterativeBackend(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, k, 4.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  core::SolverOptions opts;
  opts.dense_threshold = 0;  // force the matrix-free sparse path
  for (auto _ : state) {
    core::TransientSolver solver(spec, k, opts);
    benchmark::DoNotOptimize(solver.makespan(2 * k));
  }
}
BENCHMARK(BM_IterativeBackend)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

FINWORK_PERF_RECORD_MAIN("solver")
