// Scaling study: transient-solver cost versus cluster size and architecture,
// and the dense-LU versus matrix-free iterative path on the same network.
// This is the ablation DESIGN.md calls out for the solver-backend choice.

#include <benchmark/benchmark.h>

#include "perf_record_main.h"

#include "cluster/experiments.h"
#include "core/metrics.h"
#include "core/model_cache.h"
#include "core/transient_solver.h"
#include "obs/counters.h"

namespace {

using namespace finwork;

cluster::ExperimentConfig config(cluster::Architecture arch, std::size_t k,
                                 double remote_scv) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = arch;
  cfg.workstations = k;
  if (remote_scv != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(remote_scv);
  }
  return cfg;
}

void BM_CentralMakespanVsK(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kCentral, k, 10.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  for (auto _ : state) {
    core::TransientSolver solver(spec, k);
    benchmark::DoNotOptimize(solver.makespan(30));
  }
  state.counters["states"] =
      static_cast<double>(net::StateSpace(spec, k).dimension(k));
}
BENCHMARK(BM_CentralMakespanVsK)->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedMakespanVsK(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, k, 1.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  for (auto _ : state) {
    core::TransientSolver solver(spec, k);
    benchmark::DoNotOptimize(solver.makespan(2 * k));
  }
  state.counters["states"] =
      static_cast<double>(net::StateSpace(spec, k).dimension(k));
}
BENCHMARK(BM_DistributedMakespanVsK)->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_DenseBackend(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, k, 4.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  core::SolverOptions opts;  // defaults choose dense below the threshold
  for (auto _ : state) {
    core::TransientSolver solver(spec, k, opts);
    benchmark::DoNotOptimize(solver.makespan(2 * k));
  }
}
BENCHMARK(BM_DenseBackend)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

// Saturated-phase cost versus workload size N on a fixed K=6 distributed
// cluster (D(6) = 3003, dense path).  With the quasi-steady-state
// fast-forward the curve must go near-flat once N exceeds the mixing time;
// without it the cost is linear in N.  The solver is built once — the
// per-iteration work is the epoch recursion itself.
void BM_SaturatedPhaseVsN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, 6, 1.0);
  static const net::NetworkSpec spec = cluster::build_cluster(cfg);
  static core::TransientSolver solver(spec, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.makespan(n));
  }
  state.counters["tasks"] = static_cast<double>(n);
}
BENCHMARK(BM_SaturatedPhaseVsN)
    ->RangeMultiplier(10)
    ->Range(100, 1000000)
    ->Unit(benchmark::kMillisecond);

// Figure-scale sweep throughput: the prediction-error family (3 C^2 values
// x 3 workloads) through the content-addressed model cache and the
// single-pass N grid, versus the per-point baseline below that rebuilds
// both solvers for every grid point.  The global cache is cleared inside
// the timed region, so each iteration pays the true cold-sweep cost:
// O(distinct models x one pass) against the baseline's
// O(points x build+solve).
const std::vector<double>& sweep_scvs() {
  static const std::vector<double> v{0.5, 4.0, 10.0};
  return v;
}
const std::vector<std::size_t>& sweep_tasks() {
  static const std::vector<std::size_t> v{100, 1000, 10000};
  return v;
}

void BM_FigureSweep(benchmark::State& state) {
  const auto base = config(cluster::Architecture::kCentral, 10, 1.0);
  const std::uint64_t misses_before =
      obs::counter_value(obs::Counter::kModelCacheMisses);
  for (auto _ : state) {
    // The clear forces every iteration to pay the cold-sweep cost; the
    // flush itself (and freeing the previous iteration's artifacts) is
    // measurement scaffolding, not sweep work, so it stays untimed.
    state.PauseTiming();
    core::ModelCache::global().clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        cluster::prediction_error_vs_scv(base, sweep_scvs(), sweep_tasks()));
  }
  // Distinct models per cold sweep: one per C^2 plus ONE shared
  // exponentialized comparison model (identical across the whole sweep).
  state.counters["model_misses_per_sweep"] =
      static_cast<double>(obs::counter_value(
          obs::Counter::kModelCacheMisses) -
                          misses_before) /
      static_cast<double>(state.iterations());
  state.counters["grid_points"] =
      static_cast<double>(sweep_scvs().size() * sweep_tasks().size());
}
BENCHMARK(BM_FigureSweep)->Unit(benchmark::kMillisecond);

void BM_FigureSweepBaseline(benchmark::State& state) {
  // The pre-cache shape of the sweep: every grid point constructs the
  // actual AND the exponentialized solver from scratch and runs its own
  // full recursion.
  const auto base = config(cluster::Architecture::kCentral, 10, 1.0);
  for (auto _ : state) {
    double acc = 0.0;
    for (double scv : sweep_scvs()) {
      for (std::size_t n : sweep_tasks()) {
        cluster::ExperimentConfig cfg = base;
        cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(scv);
        const net::NetworkSpec spec = cluster::build_cluster(cfg);
        const core::TransientSolver actual(spec, cfg.workstations);
        const core::TransientSolver expo(spec.exponentialized(),
                                         cfg.workstations);
        acc += core::prediction_error_percent(actual.makespan(n),
                                              expo.makespan(n));
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FigureSweepBaseline)->Unit(benchmark::kMillisecond);

void BM_IterativeBackend(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto cfg = config(cluster::Architecture::kDistributed, k, 4.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  core::SolverOptions opts;
  opts.dense_threshold = 0;  // force the matrix-free sparse path
  for (auto _ : state) {
    core::TransientSolver solver(spec, k, opts);
    benchmark::DoNotOptimize(solver.makespan(2 * k));
  }
}
BENCHMARK(BM_IterativeBackend)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

FINWORK_PERF_RECORD_MAIN("solver")
