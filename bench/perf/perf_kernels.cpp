// Microbenchmarks of the solver kernels: state-space enumeration, level
// matrix assembly, dense LU, epoch propagation, steady-state iteration,
// matrix exponential, PH sampling and one simulator replication.

#include <benchmark/benchmark.h>

#include "perf_record_main.h"

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "linalg/expm.h"
#include "linalg/lu.h"
#include "linalg/parallel_blas.h"
#include "pf/product_form.h"
#include "ph/fitting.h"
#include "sim/simulator.h"

namespace {

using namespace finwork;

cluster::ExperimentConfig central_h2(std::size_t k) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = k;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  return cfg;
}

void BM_StateSpaceEnumeration(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const net::NetworkSpec spec = cluster::build_cluster(central_h2(k));
  for (auto _ : state) {
    net::StateSpace space(spec, k);
    benchmark::DoNotOptimize(space.dimension(k));
  }
  state.counters["states"] =
      static_cast<double>(net::StateSpace(spec, k).dimension(k));
}
BENCHMARK(BM_StateSpaceEnumeration)->Arg(4)->Arg(8)->Arg(12);

void BM_LevelMatrixAssembly(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const net::NetworkSpec spec = cluster::build_cluster(central_h2(k));
  for (auto _ : state) {
    net::StateSpace space(spec, k);
    benchmark::DoNotOptimize(space.level(k).p.nnz());
  }
}
BENCHMARK(BM_LevelMatrixAssembly)->Arg(4)->Arg(8)->Arg(12);

void BM_DenseLuFactorTopLevel(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const net::NetworkSpec spec = cluster::build_cluster(central_h2(k));
  const net::StateSpace space(spec, k);
  const net::LevelMatrices& lm = space.level(k);
  la::Matrix a = lm.p.to_dense();
  a *= -1.0;
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += 1.0;
  for (auto _ : state) {
    la::LuDecomposition lu(a);
    benchmark::DoNotOptimize(lu.determinant());
  }
  state.counters["dim"] = static_cast<double>(a.rows());
}
BENCHMARK(BM_DenseLuFactorTopLevel)->Arg(8)->Arg(12);

void BM_EpochStep(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const core::TransientSolver solver(cluster::build_cluster(central_h2(k)), k);
  la::Vector pi = solver.initial_vector();
  for (auto _ : state) {
    pi = solver.apply_r(k, solver.apply_y(k, pi));
    benchmark::DoNotOptimize(pi.data());
  }
}
BENCHMARK(BM_EpochStep)->Arg(5)->Arg(8);

void BM_FullTimelineN30(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const core::TransientSolver solver(cluster::build_cluster(central_h2(k)), k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(30).makespan);
  }
}
BENCHMARK(BM_FullTimelineN30)->Arg(5)->Arg(8);

void BM_SteadyStateIteration(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const net::NetworkSpec spec = cluster::build_cluster(central_h2(k));
  for (auto _ : state) {
    core::TransientSolver solver(spec, k);
    benchmark::DoNotOptimize(solver.steady_state().interdeparture);
  }
}
BENCHMARK(BM_SteadyStateIteration)->Arg(5)->Arg(8);

void BM_MatrixExponential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // A stable sub-generator-like matrix.
  la::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = -2.0;
    a(i, (i + 1) % n) = 1.5;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::expm(a).trace());
  }
}
BENCHMARK(BM_MatrixExponential)->Arg(8)->Arg(32)->Arg(128);

void BM_PhSampling(benchmark::State& state) {
  const ph::PhaseType h = ph::hyperexponential_balanced(1.0, 25.0);
  rng::Xoshiro256 g(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.sample(g));
  }
}
BENCHMARK(BM_PhSampling);

void BM_SimulatorReplication(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const net::NetworkSpec spec = cluster::build_cluster(central_h2(k));
  const sim::NetworkSimulator simulator(spec, k);
  rng::Xoshiro256 g(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run_once(30, g).back());
  }
}
BENCHMARK(BM_SimulatorReplication)->Arg(5)->Arg(8);

void BM_BuzenConvolution(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cluster::ApplicationModel app;
  // Size the cluster so the dedicated banks stay ample at every population.
  const net::NetworkSpec spec = cluster::central_cluster(512, app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::convolution(spec, n).system_throughput);
  }
}
BENCHMARK(BM_BuzenConvolution)->Arg(8)->Arg(64)->Arg(512);

void BM_ExactMva(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(512, app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf::exact_mva(spec, n).system_throughput);
  }
}
BENCHMARK(BM_ExactMva)->Arg(8)->Arg(64)->Arg(512);


void BM_SerialMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix a(n, n, 0.5), b(n, n, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize((a * b).data());
  }
}
BENCHMARK(BM_SerialMatmul)->Arg(128)->Arg(384);

void BM_BlockedParallelMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  la::Matrix a(n, n, 0.5), b(n, n, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::multiply_blocked(a, b).data());
  }
}
BENCHMARK(BM_BlockedParallelMatmul)->Arg(128)->Arg(384);

}  // namespace

FINWORK_PERF_RECORD_MAIN("kernels")

