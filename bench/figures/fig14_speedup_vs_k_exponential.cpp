// Figure 14: speedup versus cluster size K (all services exponential) for
// N = 20, 100, 200.  The transient + draining regions flatten the curve for
// small workloads; large N approaches the steady-state bound.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.app = cluster::ApplicationModel::coarse_grained();
  base.architecture = cluster::Architecture::kCentral;

  const auto table = cluster::speedup_vs_k(
      base, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {20, 100, 200});
  bench::emit_figure(
      "Figure 14 — speedup vs K, exponential services, N=20/100/200",
      "SP(K) bends away from linear as N/K shrinks; N=200 stays closest to\n"
      "the ideal. SP(1) = 1 exactly.",
      table);
  return 0;
}
