// Figure 13: same error bars as Figure 12 for an 8-workstation cluster.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.app = cluster::ApplicationModel::coarse_grained();
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 8;

  const auto table = cluster::prediction_error_vs_cpu_scv(
      base, {1.0 / 3.0, 0.5, 1.0, 5.0, 10.0}, {30});
  bench::emit_figure(
      "Figure 13 — prediction-error bars vs dedicated-CPU C2, K=8",
      "As Figure 12 with K=8: the transient share is larger, so the\n"
      "distribution mismatch bites harder at high C2.",
      table);
  return 0;
}
