// Figure 5: steady-state inter-departure time of an 8-workstation central
// cluster versus the shared disk's C^2, with contention (single shared
// central disk) and without (replicated remote storage, no queueing).
// Paper's observation: without queueing the service distribution has no
// effect on the mean; with contention t_ss grows with C^2.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 8;

  std::vector<double> grid = bench::scv_grid();
  grid.push_back(100.0);
  const auto table = cluster::steady_state_vs_scv(base, grid);
  bench::emit_figure(
      "Figure 5 — steady-state inter-departure time vs C2, K=8",
      "t_ss from the fixed point of Y_K R_K. Contention column: single\n"
      "shared central disk; no-contention column: per-task replicas (flat,\n"
      "distribution-insensitive, as the paper notes).",
      table, 6);
  return 0;
}
