// Figure 9: speedup versus the shared storage's C^2 for an 8-workstation
// central cluster, N = 30 and 100.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 8;

  const auto table =
      cluster::speedup_vs_scv(base, bench::scv_grid(), {30, 100});
  bench::emit_figure(
      "Figure 9 — speedup vs C2, K=8",
      "With K=8 and N=30 the transient+draining regions dominate, capping\n"
      "speedup well below K even at C2=1; N=100 recovers most of it.",
      table);
  return 0;
}
