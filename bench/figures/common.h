#pragma once
// Shared scaffolding for the figure-reproduction binaries: every binary
// prints (a) a header describing the paper figure it regenerates, (b) the
// series as an aligned table, and (c) a CSV block for plotting.

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluster/experiments.h"
#include "io/table.h"

namespace finwork::bench {

/// Print a figure's output in the harness's uniform format.  When the
/// FINWORK_CSV_DIR environment variable is set, the CSV is additionally
/// written to <dir>/<slug-of-figure-id>.csv for plotting pipelines.
inline void emit_figure(const std::string& figure_id,
                        const std::string& description,
                        const io::Table& table, int precision = 4) {
  io::print_section(std::cout, figure_id);
  std::cout << description << "\n\n";
  table.print(std::cout, precision);
  std::cout << "\n--- CSV ---\n";
  table.print_csv(std::cout);
  if (const char* dir = std::getenv("FINWORK_CSV_DIR")) {
    std::string slug;
    for (char c : figure_id) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        slug.push_back(static_cast<char>(std::tolower(c)));
      } else if (!slug.empty() && slug.back() != '_') {
        slug.push_back('_');
      }
    }
    while (!slug.empty() && slug.back() == '_') slug.pop_back();
    table.write_csv(std::string(dir) + "/" + slug + ".csv");
    std::cout << "(csv written to " << dir << "/" << slug << ".csv)\n";
  }
  std::cout.flush();
}

/// The paper's shared-storage shape variants for Figures 3 and 4.
inline std::vector<cluster::ShapeVariant> shared_disk_variants() {
  auto with_remote = [](double scv) {
    cluster::ClusterShapes s;
    s.remote_disk = cluster::ServiceShape::from_scv(scv);
    return s;
  };
  return {
      {"Exp", {}},
      {"H2_C2_10", with_remote(10.0)},
      {"H2_C2_50", with_remote(50.0)},
  };
}

/// The paper's dedicated-CPU shape variants for Figures 10 and 11.
inline std::vector<cluster::ShapeVariant> dedicated_cpu_variants() {
  auto with_cpu = [](cluster::ServiceShape shape) {
    cluster::ClusterShapes s;
    s.cpu = std::move(shape);
    return s;
  };
  return {
      {"Exp", {}},
      {"E3", with_cpu(cluster::ServiceShape::erlang(3))},
      {"H2_C2_2", with_cpu(cluster::ServiceShape::hyperexponential(2.0))},
  };
}

/// The C^2 grid the paper sweeps in Figures 5-9 (1 to ~100).
inline std::vector<double> scv_grid() {
  return {1.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0};
}

}  // namespace finwork::bench
