// Validation harness: analytic makespans versus discrete-event simulation
// (1000 replications) for the key figure configurations.  Prints the
// analytic mean, the simulated mean with a 95% confidence half-width, and
// the z-score; |z| <~ 3 for a faithful model.

#include <iostream>

#include "common.h"
#include "core/transient_solver.h"
#include "sim/simulator.h"

int main() {
  using namespace finwork;
  struct Case {
    const char* name;
    cluster::Architecture arch;
    std::size_t k;
    std::size_t n;
    double cpu_scv;
    double remote_scv;
  };
  const Case cases[] = {
      {"fig3 exp", cluster::Architecture::kCentral, 5, 30, 1.0, 1.0},
      {"fig3 h2-10", cluster::Architecture::kCentral, 5, 30, 1.0, 10.0},
      {"fig3 h2-50", cluster::Architecture::kCentral, 5, 30, 1.0, 50.0},
      {"fig4 h2-10", cluster::Architecture::kCentral, 8, 30, 1.0, 10.0},
      {"fig6 dist", cluster::Architecture::kDistributed, 5, 30, 1.0, 10.0},
      {"fig10 e3", cluster::Architecture::kDistributed, 5, 20, 1.0 / 3.0, 1.0},
      {"fig10 h2", cluster::Architecture::kDistributed, 5, 20, 2.0, 1.0},
      {"fig11 h2", cluster::Architecture::kCentral, 8, 30, 2.0, 1.0},
  };

  io::Table table({"case", "K", "N", "analytic", "simulated", "ci95", "z"});
  std::size_t case_id = 0;
  for (const Case& c : cases) {
    cluster::ExperimentConfig cfg;
    cfg.architecture = c.arch;
    cfg.workstations = c.k;
    if (c.cpu_scv != 1.0) {
      cfg.shapes.cpu = cluster::ServiceShape::from_scv(c.cpu_scv);
    }
    if (c.remote_scv != 1.0) {
      cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(c.remote_scv);
    }
    const net::NetworkSpec spec = cluster::build_cluster(cfg);
    const core::TransientSolver solver(spec, c.k);
    const double analytic = solver.makespan(c.n);

    const sim::NetworkSimulator simulator(spec, c.k);
    sim::SimulationOptions opts;
    opts.replications = 1000;
    opts.seed = 0xFEEDBEEF + case_id;
    const sim::SimulationResult sr = simulator.run(c.n, opts);
    const double z =
        (sr.makespan.mean() - analytic) /
        std::max(sr.makespan.std_error(), 1e-12);
    table.add_row({static_cast<double>(case_id), static_cast<double>(c.k),
                   static_cast<double>(c.n), analytic, sr.makespan.mean(),
                   sr.makespan.ci_half_width(), z});
    std::cout << "case " << case_id << " = " << c.name << "\n";
    ++case_id;
  }
  bench::emit_figure(
      "Simulation cross-check — analytic vs DES makespans",
      "1000 replications per case; |z| below ~3 confirms the analytic\n"
      "transient model against an independent discrete-event simulation.",
      table);
  return 0;
}
