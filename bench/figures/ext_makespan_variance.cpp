// Extension — makespan variability.  The paper reports means only; the
// absorbing-chain machinery also yields the makespan's variance, which is
// what a deadline-driven operator actually needs (E(T) + k sigma).

#include "common.h"
#include "core/transient_solver.h"

int main() {
  using namespace finwork;

  {
    io::Table table({"C2", "mean_N30", "std_N30", "scv_N30", "mean_N100",
                     "std_N100", "scv_N100"});
    for (double scv : {1.0, 5.0, 10.0, 30.0, 50.0, 90.0}) {
      cluster::ExperimentConfig cfg;
      cfg.workstations = 5;
      cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(scv);
      const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
      const core::MakespanMoments m30 = solver.makespan_moments(30);
      const core::MakespanMoments m100 = solver.makespan_moments(100);
      table.add_row({scv, m30.mean, m30.std_dev, m30.scv, m100.mean,
                     m100.std_dev, m100.scv});
    }
    bench::emit_figure(
        "Extension — makespan variance vs storage C2 (K=5)",
        "Makespan std-dev from the absorbing-chain second moment.  Bursty\n"
        "storage inflates not only the mean but the spread; longer\n"
        "workloads concentrate (scv falls roughly like 1/N).",
        table, 4);
  }

  {
    io::Table table({"N", "mean", "std", "p_overrun_exact",
                     "p_overrun_cantelli"});
    cluster::ExperimentConfig cfg;
    cfg.workstations = 5;
    cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
    const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
    for (std::size_t n : {10u, 20u, 40u, 80u, 160u}) {
      const core::MakespanMoments mm = solver.makespan_moments(n);
      const double deadline = 1.1 * mm.mean;
      // Exact overrun probability from the makespan distribution, next to
      // the distribution-free Cantelli bound for comparison.
      const double exact = 1.0 - solver.makespan_cdf(n, deadline);
      const double slack = 0.1 * mm.mean;
      const double bound = mm.variance / (mm.variance + slack * slack);
      table.add_row(
          {static_cast<double>(n), mm.mean, mm.std_dev, exact, bound});
    }
    bench::emit_figure(
        "Extension — deadline risk vs workload size",
        "P(T > 1.1 E(T)) exactly (uniformized makespan CDF) and via the\n"
        "Cantelli bound: small workloads carry real overrun risk even when\n"
        "means look safe, and the bound overstates it severalfold.",
        table, 4);
  }
  return 0;
}
