// Extension — the departure process itself.  The paper studies mean
// inter-departure times; the LAQT machinery also yields the output
// process's variability (scv of a steady-state gap) and its lag-1
// autocorrelation E[T1 T2] = p_ss V Y R tau'.  Both matter when the
// cluster's output feeds a downstream system.

#include "common.h"
#include "core/transient_solver.h"

int main() {
  using namespace finwork;
  io::Table table({"C2_service", "t_ss", "gap_scv", "lag1_corr"});
  for (double scv : {1.0, 5.0, 10.0, 20.0, 50.0, 90.0}) {
    cluster::ExperimentConfig cfg;
    cfg.workstations = 5;
    cfg.app.remote_time = 2.0;  // pronounced shared-storage contention
    cfg.app.local_time = 12.0 - 1.25 * cfg.app.remote_time;
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(scv);
    const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
    const core::SteadyStateResult& ss = solver.steady_state();
    const auto lag1 = solver.steady_state_lag1();
    table.add_row({scv, ss.interdeparture, ss.interdeparture_scv,
                   lag1.correlation});
  }
  bench::emit_figure(
      "Extension — output-process burstiness vs storage C2 (K=5, heavy load)",
      "Bursty storage does not just slow the cluster: it makes the output\n"
      "stream itself variable and positively autocorrelated, which a\n"
      "downstream consumer (or the next pipeline stage) inherits.",
      table, 5);
  return 0;
}
