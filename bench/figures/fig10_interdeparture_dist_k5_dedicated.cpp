// Figure 10: inter-departure times of a 20-task application on a
// 5-workstation distributed cluster when the *dedicated* CPUs are
// exponential vs Erlang-3 vs hyperexponential (C^2 = 2).  Jackson networks
// still apply here (no queueing at the non-exponential device); the paper
// shows E3 ~ Exp while H2 changes the transient and draining regions.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.app = cluster::ApplicationModel::coarse_grained();
  base.architecture = cluster::Architecture::kDistributed;
  base.workstations = 5;

  const auto table =
      cluster::interdeparture_series(base, bench::dedicated_cpu_variants(), 20);
  bench::emit_figure(
      "Figure 10 — inter-departure time, distributed K=5, N=20, dedicated CPU",
      "Dedicated CPU shapes: Exp vs E3 vs H2(C2=2). All three approach the\n"
      "same steady level (product-form value); H2 deviates most in the\n"
      "transient and draining regions.",
      table);
  return 0;
}
