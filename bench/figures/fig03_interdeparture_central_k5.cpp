// Figure 3: mean inter-departure time per task order for a 30-task
// application on a 5-workstation central cluster; the shared central disk is
// exponential vs hyperexponential with C^2 = 10 and 50.  The paper plots
// three regions: warm-up, quasi-steady plateau, draining tail.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 5;

  const auto table =
      cluster::interdeparture_series(base, bench::shared_disk_variants(), 30);
  bench::emit_figure(
      "Figure 3 — inter-departure time, central cluster, K=5, N=30",
      "Shared central disk: Exp vs H2(C2=10) vs H2(C2=50); all device means\n"
      "fixed so a lone task takes E(T)=12. Expect: plateau ordered by C2,\n"
      "rising draining tail over the last K-1 departures.",
      table);
  return 0;
}
