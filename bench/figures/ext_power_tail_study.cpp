// Extension study — power-tail storage, the paper's motivation.  The
// introduction cites Leland/Ott (CPU times), Crovella and Lipsky (file
// sizes) for power-tail distributions; this harness quantifies what a
// truncated power tail (Lipsky's TPT) at the shared storage does to the
// cluster, and how the effect deepens with the truncation level M — the
// "long-lasting transient conditions" phenomenon.

#include "common.h"
#include "core/metrics.h"
#include "core/transient_solver.h"
#include "ph/fitting.h"

int main() {
  using namespace finwork;

  // Part 1: steady state and prediction error versus tail index alpha.
  {
    io::Table table({"alpha", "scv", "t_ss", "E%_N30", "SP_N30"});
    for (double alpha : {2.6, 2.2, 1.8, 1.4, 1.2}) {
      cluster::ExperimentConfig cfg;
      cfg.workstations = 5;
      cfg.shapes.remote_disk = cluster::ServiceShape::power_tail(alpha, 10);
      const net::NetworkSpec spec = cluster::build_cluster(cfg);
      const core::TransientSolver solver(spec, 5);
      const core::TransientSolver expo(spec.exponentialized(), 5);
      const double act = solver.makespan(30);
      table.add_row({alpha, spec.station(3).service.scv(),
                     solver.steady_state().interdeparture,
                     100.0 * (act - expo.makespan(30)) / act,
                     core::speedup(30, cfg.app.task_mean_time(), act)});
    }
    bench::emit_figure(
        "Extension — truncated power-tail storage vs tail index alpha",
        "TPT(alpha, M=10) shared disk, K=5, N=30. Heavier tails (smaller\n"
        "alpha) inflate C2, the steady-state inter-departure time and the\n"
        "exponential-assumption error, and depress speedup.",
        table);
  }

  // Part 2: truncation-depth sweep at fixed alpha — the divergence Lipsky's
  // power-tail papers warn about (alpha < 2: variance grows without bound).
  {
    io::Table table({"levels", "scv", "t_ss", "E%_N30"});
    for (std::size_t levels : {2u, 4u, 6u, 8u, 10u, 12u, 14u}) {
      cluster::ExperimentConfig cfg;
      cfg.workstations = 5;
      cfg.shapes.remote_disk = cluster::ServiceShape::power_tail(1.4, levels);
      const net::NetworkSpec spec = cluster::build_cluster(cfg);
      const core::TransientSolver solver(spec, 5);
      const core::TransientSolver expo(spec.exponentialized(), 5);
      const double act = solver.makespan(30);
      table.add_row({static_cast<double>(levels),
                     spec.station(3).service.scv(),
                     solver.steady_state().interdeparture,
                     100.0 * (act - expo.makespan(30)) / act});
    }
    bench::emit_figure(
        "Extension — effect of the truncation depth M at alpha = 1.4",
        "With alpha < 2 the variance diverges as M grows: every added level\n"
        "worsens t_ss and the exponential assumption, without converging —\n"
        "why exponential models cannot be patched for power-tail workloads.",
        table);
  }
  return 0;
}
