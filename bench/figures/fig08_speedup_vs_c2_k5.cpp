// Figure 8: system speedup versus the shared storage's C^2 for a
// 5-workstation central cluster, N = 30 and 100.  SP = N * 12 / E(T).

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 5;

  const auto table =
      cluster::speedup_vs_scv(base, bench::scv_grid(), {30, 100});
  bench::emit_figure(
      "Figure 8 — speedup vs C2, K=5",
      "Speedup falls with C2 (contention at the shared disk worsens) and the\n"
      "larger workload (steady-state dominated) always achieves more of the\n"
      "available parallelism.",
      table);
  return 0;
}
