// Figure 7: prediction error of the exponential assumption for an
// 8-workstation central cluster with a hyperexponential shared disk,
// N = 30 and 100.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 8;

  const auto table =
      cluster::prediction_error_vs_scv(base, bench::scv_grid(), {30, 100});
  bench::emit_figure(
      "Figure 7 — exponential-assumption prediction error, central K=8",
      "Central storage, shared disk H2(C2). Error grows monotonically with\n"
      "C2 for both workloads.",
      table);
  return 0;
}
