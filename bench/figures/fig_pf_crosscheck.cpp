// Cross-check (paper §6.2.1): for exponential networks the transient
// solver's steady state equals the Jackson product-form solution.  Prints
// t_ss from the Y_K R_K fixed point next to Buzen convolution and exact MVA
// for central and distributed clusters of several sizes.

#include <iostream>

#include "common.h"
#include "core/transient_solver.h"
#include "pf/product_form.h"

int main() {
  using namespace finwork;
  io::Table table({"K", "arch(0=c,1=d)", "t_ss_transient", "t_conv_buzen",
                   "t_mva", "rel_diff"});
  cluster::ApplicationModel app;
  for (int arch = 0; arch < 2; ++arch) {
    for (std::size_t k : {1u, 2u, 4u, 6u, 8u}) {
      const net::NetworkSpec spec =
          arch == 0 ? cluster::central_cluster(k, app)
                    : cluster::distributed_cluster(k, app);
      const core::TransientSolver solver(spec, k);
      const double t_ss = solver.steady_state().interdeparture;
      const double conv = pf::convolution(spec, k).cycle_time;
      const double mva = pf::exact_mva(spec, k).cycle_time;
      table.add_row({static_cast<double>(k), static_cast<double>(arch), t_ss,
                     conv, mva, std::abs(t_ss - conv) / conv});
    }
  }
  bench::emit_figure(
      "Product-form cross-check — transient steady state vs Buzen/MVA",
      "rel_diff must be ~1e-10: the transient model's saturated fixed point\n"
      "reproduces the Jackson product-form throughput exactly for\n"
      "exponential networks.",
      table, 8);
  return 0;
}
