// Figure 15: speedup versus cluster size at N = 100 for exponential,
// Erlang-2 and hyperexponential (C^2 = 2) dedicated CPUs.  Paper: Exp ~ E2,
// H2 strictly lower — the exponential assumption overestimates speedup for
// bursty applications.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.app = cluster::ApplicationModel::coarse_grained();
  base.architecture = cluster::Architecture::kCentral;

  auto with_cpu = [](cluster::ServiceShape shape) {
    cluster::ClusterShapes s;
    s.cpu = std::move(shape);
    return s;
  };
  const std::vector<cluster::ShapeVariant> variants = {
      {"Exp", {}},
      {"E2", with_cpu(cluster::ServiceShape::erlang(2))},
      {"H2_C2_2", with_cpu(cluster::ServiceShape::hyperexponential(2.0))},
  };
  const auto table = cluster::speedup_vs_k_shapes(
      base, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, variants, 100);
  bench::emit_figure(
      "Figure 15 — speedup vs K by CPU distribution, N=100",
      "Exp and E2 nearly coincide; H2(C2=2) loses speedup at every K.",
      table);
  return 0;
}
