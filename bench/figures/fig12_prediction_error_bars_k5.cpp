// Figure 12: prediction-error bars for a 5-workstation cluster whose
// dedicated CPUs have C^2 in {1/3, 1/2, 1, 5, 10}.  Paper: exponential is a
// good stand-in for Erlangian CPUs (C^2 < 1, small negative error) but fails
// for hyperexponential ones.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.app = cluster::ApplicationModel::coarse_grained();
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 5;

  const auto table = cluster::prediction_error_vs_cpu_scv(
      base, {1.0 / 3.0, 0.5, 1.0, 5.0, 10.0}, {30});
  bench::emit_figure(
      "Figure 12 — prediction-error bars vs dedicated-CPU C2, K=5",
      "E% per C2 bucket (N=30). Expect small negative bars at C2<1, zero at\n"
      "C2=1, growing positive bars at C2=5,10.",
      table);
  return 0;
}
