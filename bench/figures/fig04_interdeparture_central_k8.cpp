// Figure 4: same experiment as Figure 3 on an 8-workstation central
// cluster (30 tasks): the transient and draining regions occupy a larger
// share of the run, so the plateau is shorter.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 8;

  const auto table =
      cluster::interdeparture_series(base, bench::shared_disk_variants(), 30);
  bench::emit_figure(
      "Figure 4 — inter-departure time, central cluster, K=8, N=30",
      "Same as Figure 3 with K=8: with only 30 tasks the steady plateau\n"
      "shrinks and draining (last 7 departures) dominates the makespan.",
      table);
  return 0;
}
