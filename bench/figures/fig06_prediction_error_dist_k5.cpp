// Figure 6: percentage error of the exponential assumption for a
// 5-workstation distributed cluster whose shared disks are really
// hyperexponential, for N = 30 (transient-dominated) and N = 100
// (steady-dominated).  E% = (E(T_act) - E(T_exp)) / E(T_act) * 100.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.architecture = cluster::Architecture::kDistributed;
  base.workstations = 5;

  const auto table =
      cluster::prediction_error_vs_scv(base, bench::scv_grid(), {30, 100});
  bench::emit_figure(
      "Figure 6 — exponential-assumption prediction error, distributed K=5",
      "Distributed storage, shared per-node disks H2(C2). Expect error\n"
      "increasing with C2, exceeding ~20% by C2=10 (paper's claim).",
      table);
  return 0;
}
