// Ablation — the steady-state approximation (companion paper [17]) versus
// the exact epoch recursion: accuracy and cost as the workload grows, and
// the effect of the warmup budget.

#include <chrono>

#include "common.h"
#include "core/approximation.h"
#include "core/transient_solver.h"

namespace {

double seconds_of(const std::function<double()>& f, double& out) {
  const auto start = std::chrono::steady_clock::now();
  out = f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace finwork;
  cluster::ExperimentConfig cfg;
  cfg.workstations = 6;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(20.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 6);
  (void)solver.steady_state();  // prepay the fixed point for fair timing

  {
    io::Table table({"N", "exact", "approx", "rel_err_pct", "exact_ms",
                     "approx_ms"});
    for (std::size_t n : {10u, 30u, 100u, 300u, 1000u, 3000u}) {
      double exact = 0.0, approx = 0.0;
      const double t_exact =
          seconds_of([&] { return solver.makespan(n); }, exact);
      const double t_approx = seconds_of(
          [&] { return core::approximate_makespan(solver, n).makespan; },
          approx);
      table.add_row({static_cast<double>(n), exact, approx,
                     100.0 * (approx - exact) / exact, 1e3 * t_exact,
                     1e3 * t_approx});
    }
    bench::emit_figure(
        "Ablation — steady-state approximation vs exact recursion",
        "K=6, H2(C2=20) shared disk. The approximation's cost is O(K) after\n"
        "the fixed point (flat in N) while the exact recursion is O(N);\n"
        "its relative error shrinks as the steady region grows.",
        table, 5);
  }

  {
    io::Table table({"warmup_epochs", "approx", "rel_err_pct"});
    const std::size_t n = 60;
    const double exact = solver.makespan(n);
    for (std::size_t warmup : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      core::ApproximationOptions opts;
      opts.warmup_epochs = warmup;
      const double approx =
          core::approximate_makespan(solver, n, opts).makespan;
      table.add_row({static_cast<double>(warmup), approx,
                     100.0 * (approx - exact) / exact});
    }
    bench::emit_figure(
        "Ablation — warmup budget of the approximation (N=60)",
        "Exact leading epochs kill the warm-up error geometrically; beyond\n"
        "the transient length extra warmup buys nothing until it covers\n"
        "every saturated epoch (then the method degenerates to exact).",
        table, 6);
  }
  return 0;
}
