// Figure 11: inter-departure times of a 30-task application on an
// 8-workstation central cluster with non-exponential dedicated CPUs.

#include "common.h"

int main() {
  using namespace finwork;
  cluster::ExperimentConfig base;
  base.app = cluster::ApplicationModel::coarse_grained();
  base.architecture = cluster::Architecture::kCentral;
  base.workstations = 8;

  const auto table =
      cluster::interdeparture_series(base, bench::dedicated_cpu_variants(), 30);
  bench::emit_figure(
      "Figure 11 — inter-departure time, central K=8, N=30, dedicated CPU",
      "Same sweep as Figure 10 on the central architecture: all three\n"
      "distributions share the steady-state value; E3 hugs Exp, H2 departs\n"
      "in the transient/draining regions.",
      table);
  return 0;
}
