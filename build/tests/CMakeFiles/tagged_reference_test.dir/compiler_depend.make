# Empty compiler generated dependencies file for tagged_reference_test.
# This may be replaced when dependencies are built.
