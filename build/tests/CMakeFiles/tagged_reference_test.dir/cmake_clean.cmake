file(REMOVE_RECURSE
  "CMakeFiles/tagged_reference_test.dir/network/tagged_reference_test.cpp.o"
  "CMakeFiles/tagged_reference_test.dir/network/tagged_reference_test.cpp.o.d"
  "tagged_reference_test"
  "tagged_reference_test.pdb"
  "tagged_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagged_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
