# Empty compiler generated dependencies file for station_stats_test.
# This may be replaced when dependencies are built.
