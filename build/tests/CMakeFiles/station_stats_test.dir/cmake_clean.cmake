file(REMOVE_RECURSE
  "CMakeFiles/station_stats_test.dir/sim/station_stats_test.cpp.o"
  "CMakeFiles/station_stats_test.dir/sim/station_stats_test.cpp.o.d"
  "station_stats_test"
  "station_stats_test.pdb"
  "station_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/station_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
