# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for station_stats_test.
