file(REMOVE_RECURSE
  "CMakeFiles/order_statistics_test.dir/pf/order_statistics_test.cpp.o"
  "CMakeFiles/order_statistics_test.dir/pf/order_statistics_test.cpp.o.d"
  "order_statistics_test"
  "order_statistics_test.pdb"
  "order_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
