file(REMOVE_RECURSE
  "CMakeFiles/station_test.dir/network/station_test.cpp.o"
  "CMakeFiles/station_test.dir/network/station_test.cpp.o.d"
  "station_test"
  "station_test.pdb"
  "station_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/station_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
