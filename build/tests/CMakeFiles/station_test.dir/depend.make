# Empty dependencies file for station_test.
# This may be replaced when dependencies are built.
