# Empty dependencies file for transient_solver_test.
# This may be replaced when dependencies are built.
