file(REMOVE_RECURSE
  "CMakeFiles/transient_solver_test.dir/core/transient_solver_test.cpp.o"
  "CMakeFiles/transient_solver_test.dir/core/transient_solver_test.cpp.o.d"
  "transient_solver_test"
  "transient_solver_test.pdb"
  "transient_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
