file(REMOVE_RECURSE
  "CMakeFiles/iterative_test.dir/linalg/iterative_test.cpp.o"
  "CMakeFiles/iterative_test.dir/linalg/iterative_test.cpp.o.d"
  "iterative_test"
  "iterative_test.pdb"
  "iterative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
