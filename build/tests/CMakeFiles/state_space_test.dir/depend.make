# Empty dependencies file for state_space_test.
# This may be replaced when dependencies are built.
