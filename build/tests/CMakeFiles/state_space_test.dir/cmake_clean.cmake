file(REMOVE_RECURSE
  "CMakeFiles/state_space_test.dir/network/state_space_test.cpp.o"
  "CMakeFiles/state_space_test.dir/network/state_space_test.cpp.o.d"
  "state_space_test"
  "state_space_test.pdb"
  "state_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
