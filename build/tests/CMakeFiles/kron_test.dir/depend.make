# Empty dependencies file for kron_test.
# This may be replaced when dependencies are built.
