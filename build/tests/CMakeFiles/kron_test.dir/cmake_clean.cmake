file(REMOVE_RECURSE
  "CMakeFiles/kron_test.dir/linalg/kron_test.cpp.o"
  "CMakeFiles/kron_test.dir/linalg/kron_test.cpp.o.d"
  "kron_test"
  "kron_test.pdb"
  "kron_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
