# Empty dependencies file for analytic_vs_simulation_test.
# This may be replaced when dependencies are built.
