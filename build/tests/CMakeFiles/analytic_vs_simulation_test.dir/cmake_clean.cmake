file(REMOVE_RECURSE
  "CMakeFiles/analytic_vs_simulation_test.dir/integration/analytic_vs_simulation_test.cpp.o"
  "CMakeFiles/analytic_vs_simulation_test.dir/integration/analytic_vs_simulation_test.cpp.o.d"
  "analytic_vs_simulation_test"
  "analytic_vs_simulation_test.pdb"
  "analytic_vs_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_vs_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
