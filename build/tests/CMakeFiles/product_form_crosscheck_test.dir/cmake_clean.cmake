file(REMOVE_RECURSE
  "CMakeFiles/product_form_crosscheck_test.dir/integration/product_form_crosscheck_test.cpp.o"
  "CMakeFiles/product_form_crosscheck_test.dir/integration/product_form_crosscheck_test.cpp.o.d"
  "product_form_crosscheck_test"
  "product_form_crosscheck_test.pdb"
  "product_form_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_form_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
