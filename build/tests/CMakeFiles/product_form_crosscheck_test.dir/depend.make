# Empty dependencies file for product_form_crosscheck_test.
# This may be replaced when dependencies are built.
