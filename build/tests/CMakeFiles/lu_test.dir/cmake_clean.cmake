file(REMOVE_RECURSE
  "CMakeFiles/lu_test.dir/linalg/lu_test.cpp.o"
  "CMakeFiles/lu_test.dir/linalg/lu_test.cpp.o.d"
  "lu_test"
  "lu_test.pdb"
  "lu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
