# Empty compiler generated dependencies file for lu_test.
# This may be replaced when dependencies are built.
