# Empty dependencies file for approximation_test.
# This may be replaced when dependencies are built.
