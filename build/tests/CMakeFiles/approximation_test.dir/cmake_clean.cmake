file(REMOVE_RECURSE
  "CMakeFiles/approximation_test.dir/core/approximation_test.cpp.o"
  "CMakeFiles/approximation_test.dir/core/approximation_test.cpp.o.d"
  "approximation_test"
  "approximation_test.pdb"
  "approximation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
