file(REMOVE_RECURSE
  "CMakeFiles/expm_test.dir/linalg/expm_test.cpp.o"
  "CMakeFiles/expm_test.dir/linalg/expm_test.cpp.o.d"
  "expm_test"
  "expm_test.pdb"
  "expm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
