# Empty dependencies file for expm_test.
# This may be replaced when dependencies are built.
