file(REMOVE_RECURSE
  "CMakeFiles/network_spec_test.dir/network/network_spec_test.cpp.o"
  "CMakeFiles/network_spec_test.dir/network/network_spec_test.cpp.o.d"
  "network_spec_test"
  "network_spec_test.pdb"
  "network_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
