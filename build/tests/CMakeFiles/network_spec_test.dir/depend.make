# Empty dependencies file for network_spec_test.
# This may be replaced when dependencies are built.
