# Empty dependencies file for parallel_blas_test.
# This may be replaced when dependencies are built.
