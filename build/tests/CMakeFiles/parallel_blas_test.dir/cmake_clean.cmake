file(REMOVE_RECURSE
  "CMakeFiles/parallel_blas_test.dir/linalg/parallel_blas_test.cpp.o"
  "CMakeFiles/parallel_blas_test.dir/linalg/parallel_blas_test.cpp.o.d"
  "parallel_blas_test"
  "parallel_blas_test.pdb"
  "parallel_blas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_blas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
