
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/parallel_blas_test.cpp" "tests/CMakeFiles/parallel_blas_test.dir/linalg/parallel_blas_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_blas_test.dir/linalg/parallel_blas_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/finwork_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/finwork_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/finwork_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/finwork_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/finwork_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pf/CMakeFiles/finwork_pf.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/finwork_network.dir/DependInfo.cmake"
  "/root/repo/build/src/ph/CMakeFiles/finwork_ph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/finwork_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/finwork_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
