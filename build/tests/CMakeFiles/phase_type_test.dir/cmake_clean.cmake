file(REMOVE_RECURSE
  "CMakeFiles/phase_type_test.dir/ph/phase_type_test.cpp.o"
  "CMakeFiles/phase_type_test.dir/ph/phase_type_test.cpp.o.d"
  "phase_type_test"
  "phase_type_test.pdb"
  "phase_type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
