# Empty compiler generated dependencies file for phase_type_test.
# This may be replaced when dependencies are built.
