file(REMOVE_RECURSE
  "CMakeFiles/online_stats_test.dir/stats/online_stats_test.cpp.o"
  "CMakeFiles/online_stats_test.dir/stats/online_stats_test.cpp.o.d"
  "online_stats_test"
  "online_stats_test.pdb"
  "online_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
