# Empty dependencies file for product_form_test.
# This may be replaced when dependencies are built.
