# Empty compiler generated dependencies file for finwork_linalg.
# This may be replaced when dependencies are built.
