
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/expm.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/expm.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/expm.cpp.o.d"
  "/root/repo/src/linalg/iterative.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/iterative.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/iterative.cpp.o.d"
  "/root/repo/src/linalg/kron.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/kron.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/kron.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/lu.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/parallel_blas.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/parallel_blas.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/parallel_blas.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/linalg/CMakeFiles/finwork_linalg.dir/sparse.cpp.o" "gcc" "src/linalg/CMakeFiles/finwork_linalg.dir/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/finwork_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
