file(REMOVE_RECURSE
  "libfinwork_linalg.a"
)
