file(REMOVE_RECURSE
  "CMakeFiles/finwork_linalg.dir/expm.cpp.o"
  "CMakeFiles/finwork_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/finwork_linalg.dir/iterative.cpp.o"
  "CMakeFiles/finwork_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/finwork_linalg.dir/kron.cpp.o"
  "CMakeFiles/finwork_linalg.dir/kron.cpp.o.d"
  "CMakeFiles/finwork_linalg.dir/lu.cpp.o"
  "CMakeFiles/finwork_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/finwork_linalg.dir/matrix.cpp.o"
  "CMakeFiles/finwork_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/finwork_linalg.dir/parallel_blas.cpp.o"
  "CMakeFiles/finwork_linalg.dir/parallel_blas.cpp.o.d"
  "CMakeFiles/finwork_linalg.dir/sparse.cpp.o"
  "CMakeFiles/finwork_linalg.dir/sparse.cpp.o.d"
  "libfinwork_linalg.a"
  "libfinwork_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
