
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/network_spec.cpp" "src/network/CMakeFiles/finwork_network.dir/network_spec.cpp.o" "gcc" "src/network/CMakeFiles/finwork_network.dir/network_spec.cpp.o.d"
  "/root/repo/src/network/state_space.cpp" "src/network/CMakeFiles/finwork_network.dir/state_space.cpp.o" "gcc" "src/network/CMakeFiles/finwork_network.dir/state_space.cpp.o.d"
  "/root/repo/src/network/station.cpp" "src/network/CMakeFiles/finwork_network.dir/station.cpp.o" "gcc" "src/network/CMakeFiles/finwork_network.dir/station.cpp.o.d"
  "/root/repo/src/network/tagged_reference.cpp" "src/network/CMakeFiles/finwork_network.dir/tagged_reference.cpp.o" "gcc" "src/network/CMakeFiles/finwork_network.dir/tagged_reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/finwork_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/ph/CMakeFiles/finwork_ph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/finwork_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
