# Empty compiler generated dependencies file for finwork_network.
# This may be replaced when dependencies are built.
