file(REMOVE_RECURSE
  "CMakeFiles/finwork_network.dir/network_spec.cpp.o"
  "CMakeFiles/finwork_network.dir/network_spec.cpp.o.d"
  "CMakeFiles/finwork_network.dir/state_space.cpp.o"
  "CMakeFiles/finwork_network.dir/state_space.cpp.o.d"
  "CMakeFiles/finwork_network.dir/station.cpp.o"
  "CMakeFiles/finwork_network.dir/station.cpp.o.d"
  "CMakeFiles/finwork_network.dir/tagged_reference.cpp.o"
  "CMakeFiles/finwork_network.dir/tagged_reference.cpp.o.d"
  "libfinwork_network.a"
  "libfinwork_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
