file(REMOVE_RECURSE
  "libfinwork_network.a"
)
