file(REMOVE_RECURSE
  "libfinwork_stats.a"
)
