file(REMOVE_RECURSE
  "CMakeFiles/finwork_stats.dir/online_stats.cpp.o"
  "CMakeFiles/finwork_stats.dir/online_stats.cpp.o.d"
  "libfinwork_stats.a"
  "libfinwork_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
