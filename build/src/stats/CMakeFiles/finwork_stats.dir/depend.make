# Empty dependencies file for finwork_stats.
# This may be replaced when dependencies are built.
