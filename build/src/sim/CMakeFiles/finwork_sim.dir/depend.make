# Empty dependencies file for finwork_sim.
# This may be replaced when dependencies are built.
