file(REMOVE_RECURSE
  "libfinwork_sim.a"
)
