file(REMOVE_RECURSE
  "CMakeFiles/finwork_sim.dir/simulator.cpp.o"
  "CMakeFiles/finwork_sim.dir/simulator.cpp.o.d"
  "libfinwork_sim.a"
  "libfinwork_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
