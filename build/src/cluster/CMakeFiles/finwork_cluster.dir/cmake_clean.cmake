file(REMOVE_RECURSE
  "CMakeFiles/finwork_cluster.dir/app_model.cpp.o"
  "CMakeFiles/finwork_cluster.dir/app_model.cpp.o.d"
  "CMakeFiles/finwork_cluster.dir/builders.cpp.o"
  "CMakeFiles/finwork_cluster.dir/builders.cpp.o.d"
  "CMakeFiles/finwork_cluster.dir/config.cpp.o"
  "CMakeFiles/finwork_cluster.dir/config.cpp.o.d"
  "CMakeFiles/finwork_cluster.dir/experiments.cpp.o"
  "CMakeFiles/finwork_cluster.dir/experiments.cpp.o.d"
  "libfinwork_cluster.a"
  "libfinwork_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
