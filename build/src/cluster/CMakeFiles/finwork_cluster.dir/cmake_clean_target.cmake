file(REMOVE_RECURSE
  "libfinwork_cluster.a"
)
