# Empty compiler generated dependencies file for finwork_cluster.
# This may be replaced when dependencies are built.
