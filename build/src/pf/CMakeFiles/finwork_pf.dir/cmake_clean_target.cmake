file(REMOVE_RECURSE
  "libfinwork_pf.a"
)
