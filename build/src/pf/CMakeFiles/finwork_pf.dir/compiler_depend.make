# Empty compiler generated dependencies file for finwork_pf.
# This may be replaced when dependencies are built.
