file(REMOVE_RECURSE
  "CMakeFiles/finwork_pf.dir/order_statistics.cpp.o"
  "CMakeFiles/finwork_pf.dir/order_statistics.cpp.o.d"
  "CMakeFiles/finwork_pf.dir/product_form.cpp.o"
  "CMakeFiles/finwork_pf.dir/product_form.cpp.o.d"
  "libfinwork_pf.a"
  "libfinwork_pf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_pf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
