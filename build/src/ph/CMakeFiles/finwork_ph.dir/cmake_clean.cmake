file(REMOVE_RECURSE
  "CMakeFiles/finwork_ph.dir/algebra.cpp.o"
  "CMakeFiles/finwork_ph.dir/algebra.cpp.o.d"
  "CMakeFiles/finwork_ph.dir/fitting.cpp.o"
  "CMakeFiles/finwork_ph.dir/fitting.cpp.o.d"
  "CMakeFiles/finwork_ph.dir/phase_type.cpp.o"
  "CMakeFiles/finwork_ph.dir/phase_type.cpp.o.d"
  "libfinwork_ph.a"
  "libfinwork_ph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_ph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
