file(REMOVE_RECURSE
  "libfinwork_ph.a"
)
