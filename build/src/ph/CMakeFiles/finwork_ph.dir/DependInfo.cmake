
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ph/algebra.cpp" "src/ph/CMakeFiles/finwork_ph.dir/algebra.cpp.o" "gcc" "src/ph/CMakeFiles/finwork_ph.dir/algebra.cpp.o.d"
  "/root/repo/src/ph/fitting.cpp" "src/ph/CMakeFiles/finwork_ph.dir/fitting.cpp.o" "gcc" "src/ph/CMakeFiles/finwork_ph.dir/fitting.cpp.o.d"
  "/root/repo/src/ph/phase_type.cpp" "src/ph/CMakeFiles/finwork_ph.dir/phase_type.cpp.o" "gcc" "src/ph/CMakeFiles/finwork_ph.dir/phase_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/finwork_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/finwork_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
