# Empty compiler generated dependencies file for finwork_ph.
# This may be replaced when dependencies are built.
