# Empty compiler generated dependencies file for finwork_core.
# This may be replaced when dependencies are built.
