file(REMOVE_RECURSE
  "CMakeFiles/finwork_core.dir/approximation.cpp.o"
  "CMakeFiles/finwork_core.dir/approximation.cpp.o.d"
  "CMakeFiles/finwork_core.dir/metrics.cpp.o"
  "CMakeFiles/finwork_core.dir/metrics.cpp.o.d"
  "CMakeFiles/finwork_core.dir/transient_solver.cpp.o"
  "CMakeFiles/finwork_core.dir/transient_solver.cpp.o.d"
  "libfinwork_core.a"
  "libfinwork_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
