
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approximation.cpp" "src/core/CMakeFiles/finwork_core.dir/approximation.cpp.o" "gcc" "src/core/CMakeFiles/finwork_core.dir/approximation.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/finwork_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/finwork_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/transient_solver.cpp" "src/core/CMakeFiles/finwork_core.dir/transient_solver.cpp.o" "gcc" "src/core/CMakeFiles/finwork_core.dir/transient_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/finwork_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/finwork_network.dir/DependInfo.cmake"
  "/root/repo/build/src/pf/CMakeFiles/finwork_pf.dir/DependInfo.cmake"
  "/root/repo/build/src/ph/CMakeFiles/finwork_ph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/finwork_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
