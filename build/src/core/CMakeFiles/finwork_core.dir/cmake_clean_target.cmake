file(REMOVE_RECURSE
  "libfinwork_core.a"
)
