file(REMOVE_RECURSE
  "libfinwork_parallel.a"
)
