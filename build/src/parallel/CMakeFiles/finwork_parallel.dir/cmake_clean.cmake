file(REMOVE_RECURSE
  "CMakeFiles/finwork_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/finwork_parallel.dir/thread_pool.cpp.o.d"
  "libfinwork_parallel.a"
  "libfinwork_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
