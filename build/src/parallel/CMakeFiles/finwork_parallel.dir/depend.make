# Empty dependencies file for finwork_parallel.
# This may be replaced when dependencies are built.
