file(REMOVE_RECURSE
  "CMakeFiles/finwork_io.dir/json.cpp.o"
  "CMakeFiles/finwork_io.dir/json.cpp.o.d"
  "CMakeFiles/finwork_io.dir/table.cpp.o"
  "CMakeFiles/finwork_io.dir/table.cpp.o.d"
  "libfinwork_io.a"
  "libfinwork_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
