# Empty dependencies file for finwork_io.
# This may be replaced when dependencies are built.
