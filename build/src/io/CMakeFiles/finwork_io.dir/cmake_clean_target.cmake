file(REMOVE_RECURSE
  "libfinwork_io.a"
)
