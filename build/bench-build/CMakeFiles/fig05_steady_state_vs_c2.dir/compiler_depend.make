# Empty compiler generated dependencies file for fig05_steady_state_vs_c2.
# This may be replaced when dependencies are built.
