file(REMOVE_RECURSE
  "../bench/fig05_steady_state_vs_c2"
  "../bench/fig05_steady_state_vs_c2.pdb"
  "CMakeFiles/fig05_steady_state_vs_c2.dir/figures/fig05_steady_state_vs_c2.cpp.o"
  "CMakeFiles/fig05_steady_state_vs_c2.dir/figures/fig05_steady_state_vs_c2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_steady_state_vs_c2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
