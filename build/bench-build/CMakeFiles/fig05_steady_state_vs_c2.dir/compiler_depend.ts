# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_steady_state_vs_c2.
