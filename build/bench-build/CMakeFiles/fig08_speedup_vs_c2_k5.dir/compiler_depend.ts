# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_speedup_vs_c2_k5.
