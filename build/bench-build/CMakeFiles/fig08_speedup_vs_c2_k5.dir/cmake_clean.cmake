file(REMOVE_RECURSE
  "../bench/fig08_speedup_vs_c2_k5"
  "../bench/fig08_speedup_vs_c2_k5.pdb"
  "CMakeFiles/fig08_speedup_vs_c2_k5.dir/figures/fig08_speedup_vs_c2_k5.cpp.o"
  "CMakeFiles/fig08_speedup_vs_c2_k5.dir/figures/fig08_speedup_vs_c2_k5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speedup_vs_c2_k5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
