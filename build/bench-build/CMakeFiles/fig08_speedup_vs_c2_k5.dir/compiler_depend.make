# Empty compiler generated dependencies file for fig08_speedup_vs_c2_k5.
# This may be replaced when dependencies are built.
