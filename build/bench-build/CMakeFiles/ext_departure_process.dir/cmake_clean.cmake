file(REMOVE_RECURSE
  "../bench/ext_departure_process"
  "../bench/ext_departure_process.pdb"
  "CMakeFiles/ext_departure_process.dir/figures/ext_departure_process.cpp.o"
  "CMakeFiles/ext_departure_process.dir/figures/ext_departure_process.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_departure_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
