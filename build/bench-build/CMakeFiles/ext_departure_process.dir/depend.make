# Empty dependencies file for ext_departure_process.
# This may be replaced when dependencies are built.
