# Empty dependencies file for ext_approximation_ablation.
# This may be replaced when dependencies are built.
