file(REMOVE_RECURSE
  "../bench/ext_approximation_ablation"
  "../bench/ext_approximation_ablation.pdb"
  "CMakeFiles/ext_approximation_ablation.dir/figures/ext_approximation_ablation.cpp.o"
  "CMakeFiles/ext_approximation_ablation.dir/figures/ext_approximation_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_approximation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
