# Empty compiler generated dependencies file for fig_sim_crosscheck.
# This may be replaced when dependencies are built.
