file(REMOVE_RECURSE
  "../bench/fig_sim_crosscheck"
  "../bench/fig_sim_crosscheck.pdb"
  "CMakeFiles/fig_sim_crosscheck.dir/figures/fig_sim_crosscheck.cpp.o"
  "CMakeFiles/fig_sim_crosscheck.dir/figures/fig_sim_crosscheck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sim_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
