# Empty compiler generated dependencies file for fig10_interdeparture_dist_k5_dedicated.
# This may be replaced when dependencies are built.
