# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_interdeparture_dist_k5_dedicated.
