file(REMOVE_RECURSE
  "../bench/fig10_interdeparture_dist_k5_dedicated"
  "../bench/fig10_interdeparture_dist_k5_dedicated.pdb"
  "CMakeFiles/fig10_interdeparture_dist_k5_dedicated.dir/figures/fig10_interdeparture_dist_k5_dedicated.cpp.o"
  "CMakeFiles/fig10_interdeparture_dist_k5_dedicated.dir/figures/fig10_interdeparture_dist_k5_dedicated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_interdeparture_dist_k5_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
