file(REMOVE_RECURSE
  "../bench/fig12_prediction_error_bars_k5"
  "../bench/fig12_prediction_error_bars_k5.pdb"
  "CMakeFiles/fig12_prediction_error_bars_k5.dir/figures/fig12_prediction_error_bars_k5.cpp.o"
  "CMakeFiles/fig12_prediction_error_bars_k5.dir/figures/fig12_prediction_error_bars_k5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_prediction_error_bars_k5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
