# Empty dependencies file for fig12_prediction_error_bars_k5.
# This may be replaced when dependencies are built.
