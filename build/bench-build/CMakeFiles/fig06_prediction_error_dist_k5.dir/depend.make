# Empty dependencies file for fig06_prediction_error_dist_k5.
# This may be replaced when dependencies are built.
