file(REMOVE_RECURSE
  "../bench/fig06_prediction_error_dist_k5"
  "../bench/fig06_prediction_error_dist_k5.pdb"
  "CMakeFiles/fig06_prediction_error_dist_k5.dir/figures/fig06_prediction_error_dist_k5.cpp.o"
  "CMakeFiles/fig06_prediction_error_dist_k5.dir/figures/fig06_prediction_error_dist_k5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prediction_error_dist_k5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
