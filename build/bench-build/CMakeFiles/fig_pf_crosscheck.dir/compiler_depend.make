# Empty compiler generated dependencies file for fig_pf_crosscheck.
# This may be replaced when dependencies are built.
