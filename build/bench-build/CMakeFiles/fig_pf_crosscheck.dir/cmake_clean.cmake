file(REMOVE_RECURSE
  "../bench/fig_pf_crosscheck"
  "../bench/fig_pf_crosscheck.pdb"
  "CMakeFiles/fig_pf_crosscheck.dir/figures/fig_pf_crosscheck.cpp.o"
  "CMakeFiles/fig_pf_crosscheck.dir/figures/fig_pf_crosscheck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_pf_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
