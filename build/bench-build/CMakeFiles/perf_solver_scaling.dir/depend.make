# Empty dependencies file for perf_solver_scaling.
# This may be replaced when dependencies are built.
