file(REMOVE_RECURSE
  "../bench/perf_solver_scaling"
  "../bench/perf_solver_scaling.pdb"
  "CMakeFiles/perf_solver_scaling.dir/perf/perf_solver_scaling.cpp.o"
  "CMakeFiles/perf_solver_scaling.dir/perf/perf_solver_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_solver_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
