# Empty compiler generated dependencies file for fig04_interdeparture_central_k8.
# This may be replaced when dependencies are built.
