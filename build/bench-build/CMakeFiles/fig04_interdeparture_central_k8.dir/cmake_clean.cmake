file(REMOVE_RECURSE
  "../bench/fig04_interdeparture_central_k8"
  "../bench/fig04_interdeparture_central_k8.pdb"
  "CMakeFiles/fig04_interdeparture_central_k8.dir/figures/fig04_interdeparture_central_k8.cpp.o"
  "CMakeFiles/fig04_interdeparture_central_k8.dir/figures/fig04_interdeparture_central_k8.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_interdeparture_central_k8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
