# Empty dependencies file for fig03_interdeparture_central_k5.
# This may be replaced when dependencies are built.
