file(REMOVE_RECURSE
  "../bench/fig03_interdeparture_central_k5"
  "../bench/fig03_interdeparture_central_k5.pdb"
  "CMakeFiles/fig03_interdeparture_central_k5.dir/figures/fig03_interdeparture_central_k5.cpp.o"
  "CMakeFiles/fig03_interdeparture_central_k5.dir/figures/fig03_interdeparture_central_k5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_interdeparture_central_k5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
