file(REMOVE_RECURSE
  "../bench/ext_makespan_variance"
  "../bench/ext_makespan_variance.pdb"
  "CMakeFiles/ext_makespan_variance.dir/figures/ext_makespan_variance.cpp.o"
  "CMakeFiles/ext_makespan_variance.dir/figures/ext_makespan_variance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_makespan_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
