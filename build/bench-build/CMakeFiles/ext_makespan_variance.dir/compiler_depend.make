# Empty compiler generated dependencies file for ext_makespan_variance.
# This may be replaced when dependencies are built.
