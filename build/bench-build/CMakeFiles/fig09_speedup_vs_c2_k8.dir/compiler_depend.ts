# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig09_speedup_vs_c2_k8.
