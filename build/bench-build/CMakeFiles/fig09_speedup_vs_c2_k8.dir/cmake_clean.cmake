file(REMOVE_RECURSE
  "../bench/fig09_speedup_vs_c2_k8"
  "../bench/fig09_speedup_vs_c2_k8.pdb"
  "CMakeFiles/fig09_speedup_vs_c2_k8.dir/figures/fig09_speedup_vs_c2_k8.cpp.o"
  "CMakeFiles/fig09_speedup_vs_c2_k8.dir/figures/fig09_speedup_vs_c2_k8.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_speedup_vs_c2_k8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
