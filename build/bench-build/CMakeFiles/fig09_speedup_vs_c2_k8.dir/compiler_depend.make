# Empty compiler generated dependencies file for fig09_speedup_vs_c2_k8.
# This may be replaced when dependencies are built.
