file(REMOVE_RECURSE
  "../bench/ext_power_tail_study"
  "../bench/ext_power_tail_study.pdb"
  "CMakeFiles/ext_power_tail_study.dir/figures/ext_power_tail_study.cpp.o"
  "CMakeFiles/ext_power_tail_study.dir/figures/ext_power_tail_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_tail_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
