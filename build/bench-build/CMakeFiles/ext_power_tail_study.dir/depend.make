# Empty dependencies file for ext_power_tail_study.
# This may be replaced when dependencies are built.
