file(REMOVE_RECURSE
  "../bench/fig13_prediction_error_bars_k8"
  "../bench/fig13_prediction_error_bars_k8.pdb"
  "CMakeFiles/fig13_prediction_error_bars_k8.dir/figures/fig13_prediction_error_bars_k8.cpp.o"
  "CMakeFiles/fig13_prediction_error_bars_k8.dir/figures/fig13_prediction_error_bars_k8.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_prediction_error_bars_k8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
