# Empty dependencies file for fig13_prediction_error_bars_k8.
# This may be replaced when dependencies are built.
