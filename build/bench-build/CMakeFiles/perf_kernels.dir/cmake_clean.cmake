file(REMOVE_RECURSE
  "../bench/perf_kernels"
  "../bench/perf_kernels.pdb"
  "CMakeFiles/perf_kernels.dir/perf/perf_kernels.cpp.o"
  "CMakeFiles/perf_kernels.dir/perf/perf_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
