# Empty compiler generated dependencies file for fig15_speedup_vs_k_distribution.
# This may be replaced when dependencies are built.
