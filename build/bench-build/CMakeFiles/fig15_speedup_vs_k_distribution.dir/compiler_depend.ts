# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig15_speedup_vs_k_distribution.
