file(REMOVE_RECURSE
  "../bench/fig15_speedup_vs_k_distribution"
  "../bench/fig15_speedup_vs_k_distribution.pdb"
  "CMakeFiles/fig15_speedup_vs_k_distribution.dir/figures/fig15_speedup_vs_k_distribution.cpp.o"
  "CMakeFiles/fig15_speedup_vs_k_distribution.dir/figures/fig15_speedup_vs_k_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_speedup_vs_k_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
