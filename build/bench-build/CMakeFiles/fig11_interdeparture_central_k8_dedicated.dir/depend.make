# Empty dependencies file for fig11_interdeparture_central_k8_dedicated.
# This may be replaced when dependencies are built.
