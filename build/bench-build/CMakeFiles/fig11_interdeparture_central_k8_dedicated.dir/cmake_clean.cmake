file(REMOVE_RECURSE
  "../bench/fig11_interdeparture_central_k8_dedicated"
  "../bench/fig11_interdeparture_central_k8_dedicated.pdb"
  "CMakeFiles/fig11_interdeparture_central_k8_dedicated.dir/figures/fig11_interdeparture_central_k8_dedicated.cpp.o"
  "CMakeFiles/fig11_interdeparture_central_k8_dedicated.dir/figures/fig11_interdeparture_central_k8_dedicated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_interdeparture_central_k8_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
