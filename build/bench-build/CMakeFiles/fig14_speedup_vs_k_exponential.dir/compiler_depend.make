# Empty compiler generated dependencies file for fig14_speedup_vs_k_exponential.
# This may be replaced when dependencies are built.
