file(REMOVE_RECURSE
  "../bench/fig14_speedup_vs_k_exponential"
  "../bench/fig14_speedup_vs_k_exponential.pdb"
  "CMakeFiles/fig14_speedup_vs_k_exponential.dir/figures/fig14_speedup_vs_k_exponential.cpp.o"
  "CMakeFiles/fig14_speedup_vs_k_exponential.dir/figures/fig14_speedup_vs_k_exponential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_speedup_vs_k_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
