# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_speedup_vs_k_exponential.
