file(REMOVE_RECURSE
  "../bench/fig07_prediction_error_central_k8"
  "../bench/fig07_prediction_error_central_k8.pdb"
  "CMakeFiles/fig07_prediction_error_central_k8.dir/figures/fig07_prediction_error_central_k8.cpp.o"
  "CMakeFiles/fig07_prediction_error_central_k8.dir/figures/fig07_prediction_error_central_k8.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_prediction_error_central_k8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
