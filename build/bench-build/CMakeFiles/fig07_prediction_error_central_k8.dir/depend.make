# Empty dependencies file for fig07_prediction_error_central_k8.
# This may be replaced when dependencies are built.
