file(REMOVE_RECURSE
  "CMakeFiles/finwork_cli.dir/finwork_cli.cpp.o"
  "CMakeFiles/finwork_cli.dir/finwork_cli.cpp.o.d"
  "finwork_cli"
  "finwork_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finwork_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
