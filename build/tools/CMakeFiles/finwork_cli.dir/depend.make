# Empty dependencies file for finwork_cli.
# This may be replaced when dependencies are built.
