file(REMOVE_RECURSE
  "../examples/model_validation"
  "../examples/model_validation.pdb"
  "CMakeFiles/model_validation.dir/model_validation.cpp.o"
  "CMakeFiles/model_validation.dir/model_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
