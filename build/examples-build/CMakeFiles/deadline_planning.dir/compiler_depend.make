# Empty compiler generated dependencies file for deadline_planning.
# This may be replaced when dependencies are built.
