file(REMOVE_RECURSE
  "../examples/deadline_planning"
  "../examples/deadline_planning.pdb"
  "CMakeFiles/deadline_planning.dir/deadline_planning.cpp.o"
  "CMakeFiles/deadline_planning.dir/deadline_planning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
