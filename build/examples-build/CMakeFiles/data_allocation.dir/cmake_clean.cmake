file(REMOVE_RECURSE
  "../examples/data_allocation"
  "../examples/data_allocation.pdb"
  "CMakeFiles/data_allocation.dir/data_allocation.cpp.o"
  "CMakeFiles/data_allocation.dir/data_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
