# Empty compiler generated dependencies file for data_allocation.
# This may be replaced when dependencies are built.
