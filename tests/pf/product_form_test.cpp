// Tests for Buzen's convolution, exact MVA and the open Jackson solver.

#include "pf/product_form.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/builders.h"
#include "ph/phase_type.h"

namespace pf = finwork::pf;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec two_station_cycle(double mu1, double mu2, std::size_t c1,
                                   std::size_t c2) {
  std::vector<net::Station> st;
  st.push_back({"A", ph::PhaseType::exponential(mu1), c1});
  st.push_back({"B", ph::PhaseType::exponential(mu2), c2});
  la::Vector entry{1.0, 0.0};
  la::Matrix routing(2, 2, 0.0);
  routing(0, 1) = 1.0;
  la::Vector exit{0.0, 1.0};
  return net::NetworkSpec(std::move(st), std::move(entry), std::move(routing),
                          std::move(exit));
}

}  // namespace

TEST(Convolution, SingleCustomerIsCycleTime) {
  const net::NetworkSpec spec = two_station_cycle(2.0, 4.0, 1, 1);
  const pf::ClosedNetworkResult r = pf::convolution(spec, 1);
  EXPECT_NEAR(r.cycle_time, 0.5 + 0.25, 1e-12);
  EXPECT_NEAR(r.system_throughput, 1.0 / 0.75, 1e-12);
}

TEST(Convolution, BalancedTwoStationKnownThroughput) {
  // Two single servers, equal rates mu: X(N) = mu * N / (N + 1).
  const double mu = 3.0;
  for (std::size_t n : {1u, 2u, 5u, 10u}) {
    const pf::ClosedNetworkResult r =
        pf::convolution(two_station_cycle(mu, mu, 1, 1), n);
    EXPECT_NEAR(r.system_throughput,
                mu * static_cast<double>(n) / static_cast<double>(n + 1),
                1e-10)
        << n;
  }
}

TEST(Convolution, UtilizationLittleLaw) {
  const net::NetworkSpec spec = two_station_cycle(2.0, 5.0, 1, 1);
  const pf::ClosedNetworkResult r = pf::convolution(spec, 4);
  // U_j = X_j * s_j for single servers.
  EXPECT_NEAR(r.utilization[0], r.station_throughput[0] / 2.0, 1e-10);
  EXPECT_NEAR(r.utilization[1], r.station_throughput[1] / 5.0, 1e-10);
  // Mean queue lengths sum to the population.
  EXPECT_NEAR(r.mean_queue_length[0] + r.mean_queue_length[1], 4.0, 1e-10);
}

TEST(Convolution, BottleneckSaturates) {
  const net::NetworkSpec spec = two_station_cycle(1.0, 100.0, 1, 1);
  const pf::ClosedNetworkResult r = pf::convolution(spec, 20);
  EXPECT_NEAR(r.system_throughput, 1.0, 1e-3);
  EXPECT_GT(r.utilization[0], 0.99);
}

TEST(Convolution, LargePopulationNoOverflow) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(8, app);
  const pf::ClosedNetworkResult r = pf::convolution(spec, 500);
  EXPECT_TRUE(std::isfinite(r.system_throughput));
  EXPECT_GT(r.system_throughput, 0.0);
}

TEST(Convolution, GuardsZeroPopulation) {
  EXPECT_THROW((void)pf::convolution(two_station_cycle(1.0, 1.0, 1, 1), 0),
               std::invalid_argument);
}

TEST(Mva, AgreesWithConvolutionSingleServers) {
  const net::NetworkSpec spec = two_station_cycle(2.0, 3.0, 1, 1);
  for (std::size_t n : {1u, 3u, 7u, 15u}) {
    const double conv = pf::convolution(spec, n).system_throughput;
    const double mva = pf::exact_mva(spec, n).system_throughput;
    EXPECT_NEAR(conv, mva, 1e-10) << n;
  }
}

TEST(Mva, AgreesWithConvolutionWithDelayStations) {
  cluster::ApplicationModel app;
  for (std::size_t k : {2u, 4u, 6u}) {
    const net::NetworkSpec spec = cluster::central_cluster(k, app);
    const double conv = pf::convolution(spec, k).system_throughput;
    const double mva = pf::exact_mva(spec, k).system_throughput;
    EXPECT_NEAR(conv, mva, 1e-9 * conv) << k;
  }
}

TEST(Mva, RejectsIntermediateMultiplicity) {
  const net::NetworkSpec spec = two_station_cycle(1.0, 1.0, 2, 1);
  EXPECT_THROW((void)pf::exact_mva(spec, 4), std::invalid_argument);
  // convolution handles it fine
  EXPECT_GT(pf::convolution(spec, 4).system_throughput, 0.0);
}

TEST(Mva, QueueLengthsSumToPopulation) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(5, app);
  const pf::ClosedNetworkResult r = pf::exact_mva(spec, 5);
  EXPECT_NEAR(r.mean_queue_length.sum(), 5.0, 1e-9);
}

TEST(Convolution, MultiServerStationMatchesErlangModel) {
  // Station B with 2 servers at rate mu each: with large think pool A, the
  // 2-server station's throughput cap is 2 mu.
  const net::NetworkSpec spec = two_station_cycle(50.0, 1.0, 30, 2);
  const pf::ClosedNetworkResult r = pf::convolution(spec, 30);
  EXPECT_NEAR(r.system_throughput, 2.0, 0.01);
}

TEST(OpenJackson, SingleQueueIsMm1) {
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(2.0), 1}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix(1, 1, 0.0), la::Vector{1.0});
  const pf::OpenNetworkResult r = pf::open_jackson(spec, 1.0);
  ASSERT_TRUE(r.stable);
  // M/M/1 at rho = 0.5: L = rho/(1-rho) = 1, W = 1/(mu - lambda) = 1.
  EXPECT_NEAR(r.utilization[0], 0.5, 1e-12);
  EXPECT_NEAR(r.mean_customers[0], 1.0, 1e-10);
  EXPECT_NEAR(r.mean_response_time[0], 1.0, 1e-10);
}

TEST(OpenJackson, MmcMatchesErlangC) {
  // M/M/2 with lambda = 1.5, mu = 1: rho = 0.75, standard formulas.
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(1.0), 2}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix(1, 1, 0.0), la::Vector{1.0});
  const pf::OpenNetworkResult r = pf::open_jackson(spec, 1.5);
  ASSERT_TRUE(r.stable);
  // Erlang-C(a=1.5, c=2) = (a^2/2)/(1-rho) / (1 + a + (a^2/2)/(1-rho))
  const double a = 1.5;
  const double pw = (a * a / 2.0 / 0.25) / (1.0 + a + a * a / 2.0 / 0.25);
  const double lq = pw * 0.75 / 0.25;
  EXPECT_NEAR(r.mean_customers[0], lq + a, 1e-10);
}

TEST(OpenJackson, TandemTrafficEquations) {
  const net::NetworkSpec spec = two_station_cycle(4.0, 4.0, 1, 1);
  const pf::OpenNetworkResult r = pf::open_jackson(spec, 2.0);
  ASSERT_TRUE(r.stable);
  EXPECT_NEAR(r.arrival_rates[0], 2.0, 1e-12);
  EXPECT_NEAR(r.arrival_rates[1], 2.0, 1e-12);
  // Two M/M/1 queues at rho = 0.5 in series: W = 0.5 + 0.5.
  EXPECT_NEAR(r.system_response_time, 1.0, 1e-10);
}

TEST(OpenJackson, DetectsInstability) {
  const net::NetworkSpec spec = two_station_cycle(1.0, 10.0, 1, 1);
  EXPECT_FALSE(pf::open_jackson(spec, 1.5).stable);
  EXPECT_THROW((void)pf::open_jackson(spec, 0.0), std::invalid_argument);
}

TEST(OpenJackson, FeedbackLoopAmplifiesTraffic) {
  // Station routes back to itself with probability 0.5: lambda_eff = 2 lambda.
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(10.0), 1}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix{{0.5}}, la::Vector{0.5});
  const pf::OpenNetworkResult r = pf::open_jackson(spec, 1.0);
  EXPECT_NEAR(r.arrival_rates[0], 2.0, 1e-12);
}
