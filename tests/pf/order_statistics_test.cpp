// Tests for the order-statistics fork/join model.

#include "pf/order_statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ph/fitting.h"

namespace pf = finwork::pf;
namespace ph = finwork::ph;

TEST(OrderStatistics, MaxOfOneIsMean) {
  const ph::PhaseType e = ph::PhaseType::exponential(2.0);
  EXPECT_NEAR(pf::expected_maximum(e, 1), 0.5, 1e-7);
  EXPECT_NEAR(pf::expected_minimum(e, 1), 0.5, 1e-7);
}

TEST(OrderStatistics, ExponentialMaxIsHarmonicSum) {
  // E[max of k Exp(lambda)] = H_k / lambda.
  const double lambda = 1.5;
  const ph::PhaseType e = ph::PhaseType::exponential(lambda);
  for (std::size_t k : {2u, 3u, 5u, 10u}) {
    double harmonic = 0.0;
    for (std::size_t j = 1; j <= k; ++j) {
      harmonic += 1.0 / static_cast<double>(j);
    }
    EXPECT_NEAR(pf::expected_maximum(e, k), harmonic / lambda, 1e-6) << k;
  }
}

TEST(OrderStatistics, ExponentialMinIsScaledExponential) {
  // min of k Exp(lambda) ~ Exp(k lambda).
  const ph::PhaseType e = ph::PhaseType::exponential(2.0);
  for (std::size_t k : {2u, 4u, 8u}) {
    EXPECT_NEAR(pf::expected_minimum(e, k),
                1.0 / (2.0 * static_cast<double>(k)), 1e-7)
        << k;
  }
}

TEST(OrderStatistics, MaxGrowsMinShrinks) {
  const ph::PhaseType h = ph::hyperexponential_balanced(1.0, 10.0);
  double prev_max = 0.0, prev_min = 10.0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    const double mx = pf::expected_maximum(h, k);
    const double mn = pf::expected_minimum(h, k);
    EXPECT_GT(mx, prev_max);
    EXPECT_LT(mn, prev_min);
    prev_max = mx;
    prev_min = mn;
  }
}

TEST(OrderStatistics, HighVarianceInflatesMax) {
  // Same mean, higher C^2 => larger expected max (heavier upper tail).
  const double mean = 1.0;
  const std::size_t k = 8;
  const double mx_exp =
      pf::expected_maximum(ph::PhaseType::exponential(1.0 / mean), k);
  const double mx_h2 =
      pf::expected_maximum(ph::hyperexponential_balanced(mean, 10.0), k);
  const double mx_e4 = pf::expected_maximum(ph::PhaseType::erlang(4, mean), k);
  EXPECT_GT(mx_h2, mx_exp);
  EXPECT_LT(mx_e4, mx_exp);
}

TEST(OrderStatistics, ForkJoinMakespanWaves) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  const double wave = pf::expected_maximum(e, 4);
  // 8 tasks on 4 processors: exactly two full waves.
  EXPECT_NEAR(pf::fork_join_makespan(e, 8, 4), 2.0 * wave, 1e-9);
  // 9 tasks: two waves plus a singleton wave of mean 1.
  EXPECT_NEAR(pf::fork_join_makespan(e, 9, 4), 2.0 * wave + 1.0, 1e-6);
}

TEST(OrderStatistics, ForkJoinSpeedupBelowIdeal) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  const double sp = pf::fork_join_speedup(e, 64, 8);
  EXPECT_GT(sp, 1.0);
  EXPECT_LT(sp, 8.0);  // synchronization loss keeps it under K
}

TEST(OrderStatistics, ForkJoinSpeedupDropsWithVariance) {
  const double sp_exp =
      pf::fork_join_speedup(ph::PhaseType::exponential(1.0), 64, 8);
  const double sp_h2 =
      pf::fork_join_speedup(ph::hyperexponential_balanced(1.0, 10.0), 64, 8);
  const double sp_e4 =
      pf::fork_join_speedup(ph::PhaseType::erlang(4, 1.0), 64, 8);
  EXPECT_GT(sp_e4, sp_exp);
  EXPECT_GT(sp_exp, sp_h2);
}

TEST(OrderStatistics, Guards) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  EXPECT_THROW((void)pf::expected_maximum(e, 0), std::invalid_argument);
  EXPECT_THROW((void)pf::expected_minimum(e, 0), std::invalid_argument);
  EXPECT_THROW((void)pf::fork_join_makespan(e, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)pf::fork_join_makespan(e, 2, 0), std::invalid_argument);
}

// Property: for Erlang-m, E[min] + E[max] >= 2 E[X] fails in general, but
// E[min] <= E[X] <= E[max] always holds.
class OrderBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrderBounds, MinMeanMaxOrdering) {
  const std::size_t k = GetParam();
  for (const ph::PhaseType& d :
       {ph::PhaseType::exponential(0.7), ph::PhaseType::erlang(3, 2.0),
        ph::hyperexponential_balanced(1.5, 6.0)}) {
    const double mn = pf::expected_minimum(d, k);
    const double mx = pf::expected_maximum(d, k);
    const double tol = 1e-6 * d.mean();  // quadrature accuracy
    EXPECT_LE(mn, d.mean() + tol);
    EXPECT_GE(mx, d.mean() - tol);
    EXPECT_LE(mn, mx + tol);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, OrderBounds,
                         ::testing::Values(1, 2, 3, 5, 9));
