// Randomized differential property suite (docs/ROBUSTNESS.md): ~50 seeded
// random cluster models (Erlang / hyperexponential / scv-dispatched mixture
// service shapes, K in {2..6}, workloads up to N = 200) are pushed through
// the full solver pipeline and checked against properties that hold for
// *every* finite-workload model:
//
//   - the run completes with no invariant-checker violation (Debug builds
//     compile the checks into the hot paths),
//   - E(T) is nondecreasing in the workload N,
//   - at N = K the three independent recursions (epoch timeline, absorbing-
//     chain moments, single-pass grid) give the same drain-time makespan,
//   - fast-forward on and off agree to 1e-8 relative.
//
// Seeds are fixed: every run tests the same 50 models.  TEST_P keeps the
// models as separate ctest entries so `ctest -j` shards them across cores.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <vector>

#include "cluster/experiments.h"
#include "core/model_cache.h"
#include "core/transient_solver.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;

namespace {

struct RandomModel {
  cluster::ExperimentConfig config;
  std::size_t workstations = 2;
  std::size_t n_max = 2;
};

// Service shapes are drawn so the phase count stays small for big K: the
// level-K state space grows combinatorially in (stations x phases), and the
// suite must stay cheap enough to run under TSan.
cluster::ServiceShape draw_shape(std::mt19937& rng, std::size_t workstations) {
  std::uniform_int_distribution<int> which(0, 3);
  switch (which(rng)) {
    case 0:
      return cluster::ServiceShape::exponential();
    case 1: {
      const std::size_t max_stages = workstations >= 5 ? 2 : 4;
      std::uniform_int_distribution<std::size_t> stages(2, max_stages);
      return cluster::ServiceShape::erlang(stages(rng));
    }
    case 2: {
      std::uniform_real_distribution<double> scv(2.0, 20.0);
      return cluster::ServiceShape::hyperexponential(scv(rng));
    }
    default: {
      // from_scv dispatches to mixed-Erlang / Exp / H2 depending on the
      // value, so this arm covers the mixture fitter.
      const double lo = workstations >= 5 ? 0.5 : 0.2;
      std::uniform_real_distribution<double> scv(lo, 12.0);
      return cluster::ServiceShape::from_scv(scv(rng));
    }
  }
}

RandomModel draw_model(std::uint32_t seed) {
  std::mt19937 rng(seed);
  RandomModel m;
  std::uniform_int_distribution<std::size_t> k_dist(2, 6);
  m.workstations = k_dist(rng);
  // Distributed clusters add one disk station per workstation; cap K there
  // so the state space stays test-sized.
  std::bernoulli_distribution distributed(0.35);
  m.config.architecture =
      (m.workstations <= 4 && distributed(rng))
          ? cluster::Architecture::kDistributed
          : cluster::Architecture::kCentral;
  m.config.workstations = m.workstations;

  std::uniform_real_distribution<double> local_time(1.0, 20.0);
  std::uniform_real_distribution<double> cpu_fraction(0.3, 1.0);
  std::uniform_real_distribution<double> remote_time(0.5, 5.0);
  std::uniform_real_distribution<double> comm_factor(0.05, 0.5);
  std::uniform_real_distribution<double> mean_cycles(2.0, 40.0);
  std::uniform_real_distribution<double> remote_share(0.1, 0.9);
  m.config.app.local_time = local_time(rng);
  m.config.app.cpu_fraction = cpu_fraction(rng);
  m.config.app.remote_time = remote_time(rng);
  m.config.app.comm_factor = comm_factor(rng);
  m.config.app.mean_cycles = mean_cycles(rng);
  m.config.app.remote_share = remote_share(rng);

  m.config.shapes.cpu = draw_shape(rng, m.workstations);
  m.config.shapes.local_disk = draw_shape(rng, m.workstations);
  m.config.shapes.comm = draw_shape(rng, m.workstations);
  m.config.shapes.remote_disk = draw_shape(rng, m.workstations);

  std::uniform_int_distribution<std::size_t> n_dist(m.workstations, 200);
  m.n_max = n_dist(rng);
  return m;
}

class RandomModelPropertyTest : public ::testing::TestWithParam<std::uint32_t> {
};

}  // namespace

TEST_P(RandomModelPropertyTest, SolverInvariantsHold) {
  const RandomModel m = draw_model(0x5EED0000u + GetParam());
  const finwork::net::NetworkSpec spec = cluster::build_cluster(m.config);
  const std::size_t k = m.workstations;

  core::SolverOptions options;
  const auto model = core::ModelCache::global().acquire(spec, k, options);
  const core::TransientSolver solver(model, options);

  // E(T) nondecreasing in N (one extra task can never finish the run
  // earlier).  One single-pass grid covers the whole workload range.
  std::vector<std::size_t> grid;
  for (std::size_t n = k; n <= m.n_max;
       n += std::max<std::size_t>(1, m.n_max / 16)) {
    grid.push_back(n);
  }
  if (grid.back() != m.n_max) grid.push_back(m.n_max);
  const std::vector<double> makespans = solver.makespan_grid(grid);
  ASSERT_EQ(makespans.size(), grid.size());
  for (std::size_t i = 0; i < makespans.size(); ++i) {
    EXPECT_GT(makespans[i], 0.0) << "N=" << grid[i];
    if (i > 0) {
      EXPECT_GE(makespans[i], makespans[i - 1] * (1.0 - 1e-9))
          << "E(T) decreased between N=" << grid[i - 1] << " and N="
          << grid[i];
    }
  }

  // N = K: the run is pure draining, and the epoch-timeline recursion, the
  // absorbing-chain moment recursion and the grid sweep must all produce the
  // same drain time.
  const core::DepartureTimeline drain = solver.solve(k);
  const core::MakespanMoments drain_moments = solver.makespan_moments(k);
  const std::vector<std::size_t> drain_n{k};
  const double drain_grid = solver.makespan_grid(drain_n).front();
  EXPECT_NEAR(drain_moments.mean, drain.makespan, 1e-8 * drain.makespan);
  EXPECT_NEAR(drain_grid, drain.makespan, 1e-8 * drain.makespan);
  EXPECT_GE(drain_moments.variance, -1e-9);

  // Fast-forward is a pure accelerator: on and off must agree to 1e-8
  // relative on both the makespan and its second moment.  Compared at a
  // moderate N so the exact (no fast-forward) recursion stays cheap.
  const std::size_t n_cmp = std::min<std::size_t>(m.n_max, 60);
  core::SolverOptions exact = options;
  exact.fast_forward = false;
  const core::TransientSolver exact_solver(model, exact);
  const double ff_on = solver.makespan(n_cmp);
  const double ff_off = exact_solver.makespan(n_cmp);
  EXPECT_NEAR(ff_on, ff_off, 1e-8 * ff_off) << "N=" << n_cmp;
  const core::MakespanMoments mm_on = solver.makespan_moments(n_cmp);
  const core::MakespanMoments mm_off = exact_solver.makespan_moments(n_cmp);
  EXPECT_NEAR(mm_on.mean, mm_off.mean, 1e-8 * mm_off.mean);
  EXPECT_NEAR(mm_on.second_moment, mm_off.second_moment,
              1e-8 * mm_off.second_moment);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelPropertyTest,
                         ::testing::Range(std::uint32_t{0}, std::uint32_t{50}));
