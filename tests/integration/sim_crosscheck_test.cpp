// Tier-1 promotion of the bench-only simulation cross-check
// (bench/figures/fig_sim_crosscheck.cpp): three cheap figure configurations
// are solved analytically and simulated with fixed seeds, and the z-score of
// the simulated makespan against the analytic mean must stay below 3.  The
// bench harness prints these numbers for a human; this test makes the
// agreement a hard CI gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "sim/simulator.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace sim = finwork::sim;

namespace {

struct CrosscheckCase {
  const char* name;
  cluster::Architecture arch;
  std::size_t workstations;
  std::size_t tasks;
  double cpu_scv;
  double remote_scv;
  std::uint64_t seed;
};

void expect_z_below_three(const CrosscheckCase& c) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = c.arch;
  cfg.workstations = c.workstations;
  if (c.cpu_scv != 1.0) {
    cfg.shapes.cpu = cluster::ServiceShape::from_scv(c.cpu_scv);
  }
  if (c.remote_scv != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(c.remote_scv);
  }
  const finwork::net::NetworkSpec spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, c.workstations);
  const double analytic = solver.makespan(c.tasks);

  const sim::NetworkSimulator simulator(spec, c.workstations);
  sim::SimulationOptions opts;
  opts.replications = 2000;
  opts.seed = c.seed;
  const sim::SimulationResult sr = simulator.run(c.tasks, opts);

  const double z = (sr.makespan.mean() - analytic) /
                   std::max(sr.makespan.std_error(), 1e-12);
  EXPECT_LT(std::abs(z), 3.0)
      << c.name << ": analytic " << analytic << ", simulated "
      << sr.makespan.mean() << " +- " << sr.makespan.ci_half_width();
}

}  // namespace

// The seeds are fixed, so each case is a deterministic regression test: a
// z-score drift past 3 means the analytic solver (or the simulator) moved.

TEST(SimCrosscheck, CentralExponentialK4) {
  expect_z_below_three({"central-exp", cluster::Architecture::kCentral, 4, 20,
                        1.0, 1.0, 0xF1A2B3C4});
}

TEST(SimCrosscheck, CentralHyperexponentialDiskK4) {
  expect_z_below_three({"central-h2-disk", cluster::Architecture::kCentral, 4,
                        20, 1.0, 10.0, 0xF1A2B3C5});
}

TEST(SimCrosscheck, DistributedErlangCpuK3) {
  expect_z_below_three({"dist-e3-cpu", cluster::Architecture::kDistributed, 3,
                        15, 1.0 / 3.0, 1.0, 0xF1A2B3C6});
}
