// Property-based invariants swept across the whole configuration grid:
// architecture x cluster size x service shape.  These are the model's laws —
// anything here failing means a real defect, independent of calibration.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cluster/experiments.h"
#include "core/metrics.h"
#include "core/transient_solver.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace la = finwork::la;

namespace {

using Param = std::tuple<int /*arch*/, std::size_t /*K*/, double /*cpu scv*/,
                         double /*remote scv*/>;

cluster::ExperimentConfig make_config(const Param& p) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = std::get<0>(p) == 0 ? cluster::Architecture::kCentral
                                         : cluster::Architecture::kDistributed;
  cfg.workstations = std::get<1>(p);
  if (std::get<2>(p) != 1.0) {
    cfg.shapes.cpu = cluster::ServiceShape::from_scv(std::get<2>(p));
  }
  if (std::get<3>(p) != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(std::get<3>(p));
  }
  return cfg;
}

class ModelInvariants : public ::testing::TestWithParam<Param> {
 protected:
  ModelInvariants()
      : config_(make_config(GetParam())),
        solver_(cluster::build_cluster(config_), config_.workstations) {}
  cluster::ExperimentConfig config_;
  core::TransientSolver solver_;
};

}  // namespace

TEST_P(ModelInvariants, EpochTimesPositiveAndFinite) {
  const auto tl = solver_.solve(2 * config_.workstations + 3);
  for (double t : tl.epoch_times) {
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST_P(ModelInvariants, ProbabilityFlowsConserved) {
  la::Vector pi = solver_.initial_vector();
  EXPECT_NEAR(pi.sum(), 1.0, 1e-10);
  for (std::size_t k = config_.workstations; k >= 1; --k) {
    pi = solver_.apply_y(k, pi);
    EXPECT_NEAR(pi.sum(), 1.0, 1e-9) << "level " << k;
    for (std::size_t i = 0; i < pi.size(); ++i) EXPECT_GE(pi[i], -1e-12);
  }
}

TEST_P(ModelInvariants, MakespanMonotoneInWorkload) {
  double prev = 0.0;
  for (std::size_t n = 1; n <= 3 * config_.workstations; ++n) {
    const double m = solver_.makespan(n);
    EXPECT_GT(m, prev) << "N = " << n;
    prev = m;
  }
}

TEST_P(ModelInvariants, MakespanSuperadditiveLowerBound) {
  // E(T; N) >= N * t_ss (the saturated rate bounds every epoch below) and
  // E(T; N) <= N * E(single task) (parallelism can only help).
  const double t_ss = solver_.steady_state().interdeparture;
  const double single =
      cluster::build_cluster(config_).single_customer().mean_task_time;
  for (std::size_t n :
       {config_.workstations, 2 * config_.workstations + 1}) {
    const double m = solver_.makespan(n);
    EXPECT_GE(m, static_cast<double>(n) * t_ss - 1e-9) << n;
    EXPECT_LE(m, static_cast<double>(n) * single + 1e-9) << n;
  }
}

TEST_P(ModelInvariants, SpeedupWithinPhysicalBounds) {
  const double sp = cluster::cluster_speedup(config_, 40);
  EXPECT_GE(sp, 1.0 - 1e-9);
  EXPECT_LE(sp, static_cast<double>(config_.workstations) + 1e-9);
}

TEST_P(ModelInvariants, SteadyStateIsFixedPointWithSaneScv) {
  const core::SteadyStateResult& ss = solver_.steady_state();
  ASSERT_TRUE(ss.converged);
  const la::Vector cycled = solver_.apply_r(
      config_.workstations, solver_.apply_y(config_.workstations,
                                            ss.distribution));
  EXPECT_TRUE(la::allclose(cycled, ss.distribution, 1e-7, 1e-9));
  EXPECT_GT(ss.interdeparture_scv, 0.0);
  EXPECT_LT(ss.interdeparture_scv, 50.0);
}

TEST_P(ModelInvariants, MomentsConsistent) {
  const std::size_t n = 2 * config_.workstations + 2;
  const core::MakespanMoments mm = solver_.makespan_moments(n);
  EXPECT_NEAR(mm.mean, solver_.makespan(n), 1e-8 * mm.mean);
  EXPECT_GE(mm.variance, 0.0);
  EXPECT_GE(mm.second_moment, mm.mean * mm.mean);
}

TEST_P(ModelInvariants, CdfBracketsTheMean) {
  const std::size_t n = config_.workstations + 2;
  const core::MakespanMoments mm = solver_.makespan_moments(n);
  // F is a genuine distribution around the mean.
  const double below = solver_.makespan_cdf(n, 0.2 * mm.mean);
  const double above = solver_.makespan_cdf(n, 3.0 * mm.mean);
  EXPECT_LT(below, 0.5);
  EXPECT_GT(above, 0.9);
}

TEST_P(ModelInvariants, OccupancySumsToPopulationEverywhere) {
  const auto check = [&](const la::Vector& pi) {
    const auto occ =
        solver_.station_occupancy(config_.workstations, pi);
    double total = 0.0, busy = 0.0;
    for (const auto& o : occ) {
      total += o.mean_customers;
      busy += o.mean_in_service;
      EXPECT_GE(o.utilization, -1e-12);
      EXPECT_LE(o.utilization, 1.0 + 1e-9);
    }
    EXPECT_NEAR(total, static_cast<double>(config_.workstations), 1e-8);
    EXPECT_LE(busy, total + 1e-9);
  };
  check(solver_.initial_vector());
  check(solver_.steady_state().distribution);
  check(solver_.time_stationary_distribution());
}

TEST_P(ModelInvariants, RegionsPartitionTheRun) {
  const std::size_t n = 3 * config_.workstations;
  const auto tl = solver_.solve(n);
  const auto ra =
      core::classify_regions(tl, solver_.steady_state().interdeparture);
  EXPECT_NEAR(
      ra.transient_fraction + ra.steady_fraction + ra.draining_fraction, 1.0,
      1e-10);
  EXPECT_LE(ra.steady_begin, ra.drain_begin);
  EXPECT_EQ(ra.regions.size(), n);
}

namespace {

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const int arch = std::get<0>(info.param);
  const std::size_t k = std::get<1>(info.param);
  const double cpu = std::get<2>(info.param);
  const double remote = std::get<3>(info.param);
  return std::string(arch == 0 ? "central" : "dist") + "_K" +
         std::to_string(k) + "_cpu" +
         std::to_string(static_cast<int>(cpu * 10)) + "_rd" +
         std::to_string(static_cast<int>(remote * 10));
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelInvariants,
    ::testing::Combine(::testing::Values(0, 1),          // central/distributed
                       ::testing::Values<std::size_t>(2, 4),
                       ::testing::Values(1.0, 0.5),      // CPU scv
                       ::testing::Values(1.0, 10.0)),    // remote scv
    param_name);
