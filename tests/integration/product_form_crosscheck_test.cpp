// Integration: for exponential networks the transient model's steady state
// must coincide with the Jackson/BCMP product-form solution (the paper's
// §6.2.1 claim "the steady state value is the same as the value from the
// product form solution"), and for large N the transient makespan converges
// to N * t_ss.

#include <gtest/gtest.h>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "pf/product_form.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace pf = finwork::pf;

TEST(ProductFormCrosscheck, CentralClustersAllSizes) {
  cluster::ApplicationModel app;
  for (std::size_t k = 1; k <= 8; ++k) {
    const auto spec = cluster::central_cluster(k, app);
    const core::TransientSolver solver(spec, k);
    const double t_ss = solver.steady_state().interdeparture;
    const double conv = pf::convolution(spec, k).cycle_time;
    const double mva = pf::exact_mva(spec, k).cycle_time;
    EXPECT_NEAR(t_ss, conv, 1e-8 * conv) << "K = " << k;
    EXPECT_NEAR(t_ss, mva, 1e-8 * mva) << "K = " << k;
  }
}

TEST(ProductFormCrosscheck, DistributedClusters) {
  cluster::ApplicationModel app;
  for (std::size_t k : {2u, 3u, 5u}) {
    const auto spec = cluster::distributed_cluster(k, app);
    const core::TransientSolver solver(spec, k);
    const double t_ss = solver.steady_state().interdeparture;
    const double conv = pf::convolution(spec, k).cycle_time;
    EXPECT_NEAR(t_ss, conv, 1e-8 * conv) << "K = " << k;
  }
}

TEST(ProductFormCrosscheck, NonUniformAllocationStillAgrees) {
  cluster::ApplicationModel app;
  const auto spec =
      cluster::distributed_cluster(4, app, {}, {0.4, 0.3, 0.2, 0.1});
  const core::TransientSolver solver(spec, 4);
  EXPECT_NEAR(solver.steady_state().interdeparture,
              pf::convolution(spec, 4).cycle_time, 1e-8);
}

TEST(ProductFormCrosscheck, DedicatedNonExponentialKeepsProductFormLimit) {
  // Paper §6.2.1: with *dedicated* non-exponential servers (no queueing at
  // them), all distributions approach the same steady state, equal to the
  // product-form value computed from the means.
  cluster::ApplicationModel app;
  const std::size_t k = 4;
  const auto exp_spec = cluster::central_cluster(k, app);
  const double pf_value = pf::convolution(exp_spec, k).cycle_time;
  for (double scv : {1.0 / 3.0, 0.5, 2.0}) {
    cluster::ClusterShapes shapes;
    shapes.cpu = cluster::ServiceShape::from_scv(scv);
    shapes.local_disk = cluster::ServiceShape::from_scv(scv);
    const auto spec = cluster::central_cluster(k, app, shapes);
    const core::TransientSolver solver(spec, k);
    EXPECT_NEAR(solver.steady_state().interdeparture, pf_value,
                1e-7 * pf_value)
        << "scv = " << scv;
  }
}

TEST(ProductFormCrosscheck, SharedNonExponentialBreaksProductForm) {
  // With a *shared* H2 disk the product-form assumption fails: the true
  // steady state is strictly slower than the exponential product form.
  cluster::ApplicationModel app;
  const std::size_t k = 5;
  const auto exp_spec = cluster::central_cluster(k, app);
  const double pf_value = pf::convolution(exp_spec, k).cycle_time;
  cluster::ClusterShapes shapes;
  shapes.remote_disk = cluster::ServiceShape::hyperexponential(20.0);
  const core::TransientSolver solver(cluster::central_cluster(k, app, shapes),
                                     k);
  EXPECT_GT(solver.steady_state().interdeparture, 1.02 * pf_value);
}

TEST(ProductFormCrosscheck, LargeWorkloadMakespanApproachesSteadyRate) {
  // E(T; N) / N -> t_ss as N grows (steady region dominates).
  cluster::ApplicationModel app;
  const auto spec = cluster::central_cluster(5, app);
  const core::TransientSolver solver(spec, 5);
  const double t_ss = solver.steady_state().interdeparture;
  const double per_task_200 = solver.makespan(200) / 200.0;
  const double per_task_50 = solver.makespan(50) / 50.0;
  EXPECT_LT(std::abs(per_task_200 - t_ss) / t_ss,
            std::abs(per_task_50 - t_ss) / t_ss);
  EXPECT_NEAR(per_task_200, t_ss, 0.05 * t_ss);
}

TEST(ProductFormCrosscheck, UtilizationsFromThroughput) {
  // Convolution utilizations satisfy U_j = X v_j s_j / c_j for the central
  // cluster's shared stations.
  cluster::ApplicationModel app;
  const auto spec = cluster::central_cluster(6, app);
  const auto r = pf::convolution(spec, 6);
  const auto demands = spec.service_demands();
  for (std::size_t j = 0; j < spec.num_stations(); ++j) {
    const double expected = r.system_throughput * demands[j] /
                            static_cast<double>(spec.station(j).multiplicity);
    EXPECT_NEAR(r.utilization[j], expected, 1e-8) << "station " << j;
  }
}
