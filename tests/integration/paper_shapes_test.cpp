// Integration: the qualitative claims of the paper's evaluation (Figures
// 3-15) that a successful reproduction must reproduce.  Each test encodes a
// figure's *shape* — who wins, what grows, where the regions fall.

#include <gtest/gtest.h>

#include "cluster/experiments.h"
#include "core/metrics.h"
#include "core/transient_solver.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;

namespace {

cluster::ExperimentConfig central(std::size_t k) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = k;
  return cfg;
}

/// §6.2 experiments (Figs. 10-15) model a coarse-grained compute-bound
/// application so the per-task distribution inherits the CPU's C^2 (see
/// ApplicationModel::coarse_grained).
cluster::ExperimentConfig central_coarse(std::size_t k) {
  cluster::ExperimentConfig cfg = central(k);
  cfg.app = cluster::ApplicationModel::coarse_grained();
  return cfg;
}

cluster::ClusterShapes remote_scv(double scv) {
  cluster::ClusterShapes s;
  s.remote_disk = cluster::ServiceShape::from_scv(scv);
  return s;
}

cluster::ClusterShapes cpu_scv(double scv) {
  cluster::ClusterShapes s;
  s.cpu = cluster::ServiceShape::from_scv(scv);
  return s;
}

}  // namespace

TEST(PaperShapes, Fig3_ThreeRegionsVisible) {
  // 30 tasks, K = 5, H2 shared disk: warm-up rises to steady level, then
  // draining slows down sharply.
  cluster::ExperimentConfig cfg = central(5);
  cfg.shapes = remote_scv(10.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
  const auto tl = solver.solve(30);
  const double t_ss = solver.steady_state().interdeparture;
  // First epoch beats steady state (all queues empty).
  EXPECT_LT(tl.epoch_times[0], t_ss);
  // Middle epochs have settled.
  EXPECT_NEAR(tl.epoch_times[20], t_ss, 0.02 * t_ss);
  // Final draining epoch far above steady level.
  EXPECT_GT(tl.epoch_times[29], 1.5 * t_ss);
}

TEST(PaperShapes, Fig3_HigherC2SlowerSteadyState) {
  // The Exp / C2=10 / C2=50 curves order by C2 in the steady region.
  double prev = 0.0;
  for (double scv : {1.0, 10.0, 50.0}) {
    cluster::ExperimentConfig cfg = central(5);
    cfg.shapes = remote_scv(scv);
    const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
    const double t_ss = solver.steady_state().interdeparture;
    EXPECT_GT(t_ss, prev) << "scv " << scv;
    prev = t_ss;
  }
}

TEST(PaperShapes, Fig4_LargerClusterFasterDepartures) {
  // K = 8 drains the same workload faster than K = 5 per departure.
  for (double scv : {1.0, 10.0}) {
    cluster::ExperimentConfig cfg5 = central(5);
    cfg5.shapes = remote_scv(scv);
    cluster::ExperimentConfig cfg8 = central(8);
    cfg8.shapes = remote_scv(scv);
    EXPECT_LT(cluster::cluster_makespan(cfg8, 30),
              cluster::cluster_makespan(cfg5, 30));
  }
}

TEST(PaperShapes, Fig5_NoContentionInsensitiveToDistribution) {
  // Without queueing at the shared disk, the mean behavior cannot depend on
  // the service distribution beyond its mean.
  const auto table =
      cluster::steady_state_vs_scv(central(8), {1.0, 25.0, 100.0});
  EXPECT_NEAR(table.at(0, 2), table.at(1, 2), 1e-6);
  EXPECT_NEAR(table.at(1, 2), table.at(2, 2), 1e-6);
}

TEST(PaperShapes, Fig5_ContentionGrowsWithC2AtHighVariance) {
  const auto table =
      cluster::steady_state_vs_scv(central(8), {10.0, 50.0, 100.0});
  EXPECT_GT(table.at(1, 1), table.at(0, 1));
  EXPECT_GT(table.at(2, 1), table.at(1, 1));
}

TEST(PaperShapes, Fig6_7_PredictionErrorGrowsWithC2) {
  // The paper: the error "always increases with increasing C2" (shared
  // non-exponential storage).  Our absolute magnitudes are smaller than the
  // paper's (their shared device ran hotter; closed-network feedback caps
  // the discrepancy at our utilisation — see EXPERIMENTS.md), so we assert
  // monotone growth plus a material error at the top of the sweep.
  for (auto arch : {cluster::Architecture::kCentral,
                    cluster::Architecture::kDistributed}) {
    cluster::ExperimentConfig cfg = central(5);
    cfg.architecture = arch;
    const auto table =
        cluster::prediction_error_vs_scv(cfg, {1.0, 10.0, 50.0, 90.0}, {30});
    double prev = -1.0;
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_GT(table.at(r, 1), prev);
      prev = table.at(r, 1);
    }
    EXPECT_GT(table.at(3, 1), 7.0);  // material error at C2 = 90
  }
}

TEST(PaperShapes, Fig6_7_LargerWorkloadLargerError) {
  // Contention lives in the steady region, so N = 100 shows more of it
  // than N = 30 (visible in the paper's two curves).
  cluster::ExperimentConfig cfg = central(5);
  const auto table =
      cluster::prediction_error_vs_scv(cfg, {10.0, 50.0}, {30, 100});
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_GT(table.at(r, 2), table.at(r, 1));
  }
}

TEST(PaperShapes, Fig8_9_SpeedupFallsWithC2AndRisesWithN) {
  for (std::size_t k : {5u, 8u}) {
    const auto table =
        cluster::speedup_vs_scv(central(k), {1.0, 30.0, 90.0}, {30, 100});
    // Speedup decreases with C2 for both N.
    for (std::size_t c : {1u, 2u}) {
      EXPECT_GT(table.at(0, c), table.at(1, c)) << k;
      EXPECT_GT(table.at(1, c), table.at(2, c)) << k;
    }
    // N = 100 achieves higher speedup than N = 30 at every C2.
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_GT(table.at(r, 2), table.at(r, 1)) << k;
    }
  }
}

TEST(PaperShapes, Fig10_11_DedicatedErlangCloseToExpHyperexpDiffers) {
  // Paper: "the application tends to behave the same for exponential and
  // E3 ... significant change if the service distribution is H2."
  cluster::ExperimentConfig exp_cfg = central_coarse(5);
  cluster::ExperimentConfig e3_cfg = central_coarse(5);
  e3_cfg.shapes = cpu_scv(1.0 / 3.0);
  cluster::ExperimentConfig h2_cfg = central_coarse(5);
  h2_cfg.shapes = cpu_scv(2.0);

  const double m_exp = cluster::cluster_makespan(exp_cfg, 20);
  const double m_e3 = cluster::cluster_makespan(e3_cfg, 20);
  const double m_h2 = cluster::cluster_makespan(h2_cfg, 20);
  EXPECT_LT(std::abs(m_e3 - m_exp) / m_exp, 0.08);
  EXPECT_GT(std::abs(m_h2 - m_exp), std::abs(m_e3 - m_exp));
}

TEST(PaperShapes, Fig10_11_AllDistributionsShareSteadyState) {
  // Dedicated non-exponential servers: all three distributions approach the
  // same steady-state interdeparture time (product-form value).
  double reference = -1.0;
  for (double scv : {1.0, 1.0 / 3.0, 2.0}) {
    cluster::ExperimentConfig cfg = central_coarse(5);
    cfg.shapes = cpu_scv(scv);
    const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
    const double t_ss = solver.steady_state().interdeparture;
    if (reference < 0.0) {
      reference = t_ss;
    } else {
      EXPECT_NEAR(t_ss, reference, 1e-6 * reference) << scv;
    }
  }
}

TEST(PaperShapes, Fig12_13_ErlangSmallErrorHyperexpLarge) {
  // Dedicated-CPU error bars: C2 < 1 gives small (possibly negative) error,
  // C2 > 1 grows positive.
  const auto table = cluster::prediction_error_vs_cpu_scv(
      central_coarse(5), {1.0 / 3.0, 0.5, 1.0, 5.0, 10.0}, {20});
  EXPECT_LT(std::abs(table.at(0, 1)), 5.0);   // E3: small
  EXPECT_LT(std::abs(table.at(1, 1)), 5.0);   // E2: small
  EXPECT_NEAR(table.at(2, 1), 0.0, 1e-6);     // Exp: zero
  EXPECT_GT(table.at(3, 1), table.at(2, 1));  // H2 C2=5
  EXPECT_GT(table.at(4, 1), table.at(3, 1));  // H2 C2=10
  // Erlang errors have opposite sign to hyperexponential errors.
  EXPECT_LT(table.at(0, 1), 0.0);
}

TEST(PaperShapes, Fig14_TransientRegionDepressesSpeedup) {
  // Speedup vs K for N = 20, 100, 200: more tasks => closer to linear.
  const auto table =
      cluster::speedup_vs_k(central_coarse(1), {2, 4, 8}, {20, 100, 200});
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_LT(table.at(r, 1), table.at(r, 2));
    EXPECT_LT(table.at(r, 2), table.at(r, 3));
  }
  // Diminishing returns: SP(8) < 2 * SP(4) for the small workload.
  EXPECT_LT(table.at(2, 1), 2.0 * table.at(1, 1));
}

TEST(PaperShapes, Fig15_DistributionOrderingOfSpeedup) {
  const std::vector<cluster::ShapeVariant> variants = {
      {"Exp", {}},
      {"E2", cpu_scv(0.5)},
      {"H2", cpu_scv(2.0)},
  };
  const auto table =
      cluster::speedup_vs_k_shapes(central_coarse(1), {4, 8}, variants, 100);
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    // Exp and E2 close; H2 strictly worse.
    EXPECT_NEAR(table.at(r, 1), table.at(r, 2), 0.06 * table.at(r, 1));
    EXPECT_GT(table.at(r, 1), table.at(r, 3));
  }
}

TEST(PaperShapes, RegionFractionsShiftWithWorkload) {
  // N = 30 vs N = 100 on K = 8: the steady fraction must grow with N.
  cluster::ExperimentConfig cfg = central(8);
  cfg.shapes = remote_scv(10.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 8);
  const double t_ss = solver.steady_state().interdeparture;
  const auto ra30 = core::classify_regions(solver.solve(30), t_ss);
  const auto ra100 = core::classify_regions(solver.solve(100), t_ss);
  EXPECT_GT(ra100.steady_fraction, ra30.steady_fraction);
  EXPECT_LT(ra100.draining_fraction, ra30.draining_fraction);
}
