// Integration: the transient solver and the discrete-event simulator are two
// independent implementations of the same stochastic model.  Their means
// must agree within simulation confidence intervals across architectures,
// service distributions and operating regions.

#include <gtest/gtest.h>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "sim/simulator.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace sim = finwork::sim;

namespace {

struct Scenario {
  const char* name;
  cluster::Architecture arch;
  std::size_t workstations;
  std::size_t tasks;
  double cpu_scv;
  double remote_scv;
};

void expect_agreement(const Scenario& sc, std::size_t replications) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = sc.arch;
  cfg.workstations = sc.workstations;
  if (sc.cpu_scv != 1.0) {
    cfg.shapes.cpu = cluster::ServiceShape::from_scv(sc.cpu_scv);
  }
  if (sc.remote_scv != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(sc.remote_scv);
  }
  const auto spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, cfg.workstations);
  const core::DepartureTimeline tl = solver.solve(sc.tasks);

  const sim::NetworkSimulator simulator(spec, cfg.workstations);
  sim::SimulationOptions opts;
  opts.replications = replications;
  opts.seed = 0xC0FFEE ^ sc.tasks;
  const sim::SimulationResult sr = simulator.run(sc.tasks, opts);

  // Makespan within 5 sigma (99.99997% coverage; avoids flaky CI).
  const double slack =
      5.0 * sr.makespan.std_error() + 1e-6 * tl.makespan;
  EXPECT_NEAR(sr.makespan.mean(), tl.makespan, slack) << sc.name;

  // Spot-check inter-departure means at the start, middle and end.
  for (std::size_t idx :
       {std::size_t{0}, sc.tasks / 2, sc.tasks - 1}) {
    const double sim_mean = sr.interdeparture[idx].mean();
    const double sim_slack = 5.0 * sr.interdeparture[idx].std_error() +
                             1e-6 * tl.epoch_times[idx];
    EXPECT_NEAR(sim_mean, tl.epoch_times[idx], sim_slack)
        << sc.name << " epoch " << idx;
  }
}

}  // namespace

TEST(AnalyticVsSimulation, CentralExponential) {
  expect_agreement({"central-exp", cluster::Architecture::kCentral, 5, 30,
                    1.0, 1.0},
                   6000);
}

TEST(AnalyticVsSimulation, CentralHyperexponentialSharedDisk) {
  expect_agreement({"central-h2-disk", cluster::Architecture::kCentral, 5, 30,
                    1.0, 10.0},
                   8000);
}

TEST(AnalyticVsSimulation, CentralErlangCpu) {
  expect_agreement({"central-e3-cpu", cluster::Architecture::kCentral, 4, 20,
                    1.0 / 3.0, 1.0},
                   6000);
}

TEST(AnalyticVsSimulation, CentralHyperexponentialCpu) {
  expect_agreement({"central-h2-cpu", cluster::Architecture::kCentral, 4, 20,
                    2.0, 1.0},
                   6000);
}

TEST(AnalyticVsSimulation, DistributedExponential) {
  expect_agreement({"dist-exp", cluster::Architecture::kDistributed, 4, 20,
                    1.0, 1.0},
                   6000);
}

TEST(AnalyticVsSimulation, DistributedHyperexponentialDisks) {
  expect_agreement({"dist-h2-disks", cluster::Architecture::kDistributed, 4,
                    20, 1.0, 8.0},
                   8000);
}

TEST(AnalyticVsSimulation, SmallClusterDrainingHeavy) {
  // N = K: the whole run is draining region.
  expect_agreement({"drain", cluster::Architecture::kCentral, 6, 6, 1.0, 5.0},
                   8000);
}

TEST(AnalyticVsSimulation, SteadyStateMatchesLongRunSimulation) {
  // The analytic t_ss must match the simulated mid-stream inter-departure
  // time for a long workload.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  const auto spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 5);
  const double t_ss = solver.steady_state().interdeparture;

  const sim::NetworkSimulator simulator(spec, 5);
  sim::SimulationOptions opts;
  opts.replications = 3000;
  const sim::SimulationResult sr = simulator.run(120, opts);
  // Average simulated gaps over epochs 60..100 (well inside steady state).
  finwork::stats::OnlineStats mid;
  for (std::size_t i = 60; i < 100; ++i) {
    mid.add(sr.interdeparture[i].mean());
  }
  EXPECT_NEAR(mid.mean(), t_ss, 0.05 * t_ss);
}
