// Condition monitoring and strict-mode semantics of the fallback ladder
// (docs/ROBUSTNESS.md), exercised without fault injection so they run in
// every build flavour:
//
//   - level_rcond surfaces the per-level condition estimate,
//   - max_condition breaches degrade to iterative refinement by default and
//     throw SolverError(kIllConditioned) under strict,
//   - the degraded path reproduces the healthy results to 1e-8,
//   - the robustness options take part in the canonical cache key (v2).

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "check/fault_inject.h"
#include "cluster/experiments.h"
#include "core/model_cache.h"
#include "core/transient_solver.h"
#include "linalg/solver_error.h"
#include "obs/counters.h"
#include "obs/obs_config.h"
#include "obs/sink.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace obs = finwork::obs;
using finwork::SolverError;
using finwork::SolverErrorKind;

namespace {

finwork::net::NetworkSpec small_cluster() {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 2;
  return cluster::build_cluster(cfg);
}

}  // namespace

TEST(RobustnessTest, LevelRcondIsSaneForHealthyDenseLevels) {
  const core::ModelArtifacts model(small_cluster(), 2);
  for (std::size_t k = 1; k <= 2; ++k) {
    const double rc = model.level_rcond(k);
    EXPECT_GT(rc, 0.0) << "level " << k;
    EXPECT_LE(rc, 1.0) << "level " << k;
  }
}

TEST(RobustnessTest, ConditionBreachDegradesToRefinementAndAgrees) {
  const finwork::net::NetworkSpec spec = small_cluster();
  const core::TransientSolver healthy(spec, 2);
  const double reference = healthy.makespan(12);

  // Every (I - P_k) has condition > 1, so max_condition = 1 flags every
  // dense level as ill-conditioned and routes its solves through the
  // refinement stage.
  core::SolverOptions opts;
  opts.max_condition = 1.0;
  const std::uint64_t fallback_before =
      obs::counter_value(obs::Counter::kFallbackActivations);
  const std::uint64_t estimates_before =
      obs::counter_value(obs::Counter::kConditionEstimates);
  const core::TransientSolver degraded(spec, 2, opts);
  const double refined = degraded.makespan(12);
  EXPECT_NEAR(refined, reference, 1e-8 * reference);

  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::counter_value(obs::Counter::kConditionEstimates),
              estimates_before);
    EXPECT_GT(obs::counter_value(obs::Counter::kFallbackActivations),
              fallback_before);
    bool saw_degradation = false;
    for (const obs::StructuredEvent& ev : obs::events_snapshot()) {
      if (ev.category == "degradation/ill-conditioned") saw_degradation = true;
    }
    EXPECT_TRUE(saw_degradation);
  }
}

TEST(RobustnessTest, StrictModeThrowsIllConditionedWithContext) {
  core::SolverOptions opts;
  opts.max_condition = 1.0;
  opts.strict = true;
  const core::TransientSolver solver(small_cluster(), 2, opts);
  try {
    (void)solver.makespan(5);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kIllConditioned);
    EXPECT_NE(e.context().level, finwork::SolverErrorContext::kNoIndex);
    EXPECT_GT(e.context().dimension, 0u);
    EXPECT_GT(e.context().condition_estimate, 1.0);
  }
}

TEST(RobustnessTest, StrictModeWithHealthyModelMatchesDefault) {
  const finwork::net::NetworkSpec spec = small_cluster();
  const core::TransientSolver plain(spec, 2);
  core::SolverOptions opts;
  opts.strict = true;  // no ceiling: healthy models never degrade
  const core::TransientSolver strict(spec, 2, opts);
  EXPECT_DOUBLE_EQ(strict.makespan(10), plain.makespan(10));
}

TEST(RobustnessTest, RobustnessOptionsTakePartInCacheKey) {
  const finwork::net::NetworkSpec spec = small_cluster();
  const core::SolverOptions base;

  core::SolverOptions strict = base;
  strict.strict = true;
  core::SolverOptions capped = base;
  capped.max_condition = 1e8;
  core::SolverOptions iters = base;
  iters.max_refinement_iters = 3;

  const auto key_base = core::canonical_model_key(spec, 2, base);
  EXPECT_NE(key_base, core::canonical_model_key(spec, 2, strict));
  EXPECT_NE(key_base, core::canonical_model_key(spec, 2, capped));
  EXPECT_NE(key_base, core::canonical_model_key(spec, 2, iters));
  // Same options, same key: the encoding is deterministic.
  EXPECT_EQ(key_base, core::canonical_model_key(spec, 2, base));
}

TEST(RobustnessTest, FaultControlApiMatchesBuildFlavour) {
  namespace check = finwork::check;
  if constexpr (check::kFaultInjectEnabled) {
    check::arm_fault("lu/factorize", 1);
    check::disarm_all_faults();
  } else {
    // Compiled out: arming throws instead of silently never firing.
    EXPECT_THROW(check::arm_fault("lu/factorize"), std::logic_error);
  }
  // Unknown sites are rejected before the enabled/disabled dispatch.
  EXPECT_THROW(check::arm_fault("typo/site"), std::logic_error);
}

TEST(RobustnessTest, CacheKeepsStrictAndDefaultModelsApart) {
  core::ModelCache cache(8);
  const finwork::net::NetworkSpec spec = small_cluster();
  core::SolverOptions strict;
  strict.strict = true;
  const auto a = cache.acquire(spec, 2, {});
  const auto b = cache.acquire(spec, 2, strict);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  const auto c = cache.acquire(spec, 2, strict);
  EXPECT_EQ(c.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}
