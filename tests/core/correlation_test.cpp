// Tests for the departure-process lag-1 correlation and the task-time
// phase-type view of a network.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "sim/simulator.h"
#include "stats/online_stats.h"

namespace core = finwork::core;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec one_station(ph::PhaseType svc, std::size_t mult) {
  std::vector<net::Station> st{{"S", std::move(svc), mult}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

}  // namespace

TEST(DepartureCorrelation, SaturatedExponentialServerIsMemoryless) {
  // Output of a saturated M server is a Poisson stream: iid gaps.
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(2.0), 1), 4);
  const auto dc = solver.steady_state_lag1();
  EXPECT_NEAR(dc.covariance, 0.0, 1e-12);
  EXPECT_NEAR(dc.correlation, 0.0, 1e-10);
}

TEST(DepartureCorrelation, ForkJoinExponentialAlsoMemoryless) {
  // Saturated ample exponential bank: min-of-K exponentials renews itself.
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(1.0), 4), 4);
  const auto dc = solver.steady_state_lag1();
  EXPECT_NEAR(dc.correlation, 0.0, 1e-10);
}

TEST(DepartureCorrelation, SharedH2ProducesPositiveCorrelation) {
  // A slow H2 branch holds the shared disk for a while: consecutive gaps
  // are both long — positive autocorrelation.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  cfg.app.remote_time = 2.0;  // heavier shared load strengthens the effect
  cfg.app.local_time = 12.0 - 1.25 * cfg.app.remote_time;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(20.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
  const auto dc = solver.steady_state_lag1();
  // The closed network's feedback keeps the lag-1 dependence modest, but it
  // is strictly positive (simulation-validated in MatchesSimulation below).
  EXPECT_GT(dc.correlation, 0.005);
  EXPECT_LT(dc.correlation, 1.0);
  // And it grows with contention: the default (lighter) load correlates less.
  cluster::ExperimentConfig light = cfg;
  light.app = {};
  const core::TransientSolver light_solver(cluster::build_cluster(light), 5);
  EXPECT_LT(light_solver.steady_state_lag1().correlation, dc.correlation);
}

TEST(DepartureCorrelation, MatchesSimulation) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 4;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(15.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 4);
  const auto dc = solver.steady_state_lag1();

  // Empirical lag-1 correlation of mid-stream gaps.
  finwork::sim::NetworkSimulator simulator(spec, 4);
  finwork::rng::Xoshiro256 root(99);
  finwork::stats::OnlineStats x, y;
  double sum_xy = 0.0;
  std::size_t count = 0;
  const std::size_t reps = 4000;
  for (std::size_t r = 0; r < reps; ++r) {
    finwork::rng::Xoshiro256 g = root.split(r);
    const auto dep = simulator.run_once(60, g);
    // gaps 30 and 31: well inside steady state
    const double g1 = dep[30] - dep[29];
    const double g2 = dep[31] - dep[30];
    x.add(g1);
    y.add(g2);
    sum_xy += g1 * g2;
    ++count;
  }
  const double cov_emp =
      sum_xy / static_cast<double>(count) - x.mean() * y.mean();
  const double corr_emp = cov_emp / (x.stddev() * y.stddev());
  EXPECT_NEAR(corr_emp, dc.correlation, 0.05);
}

TEST(TaskTimeDistribution, MeanMatchesSingleCustomerView) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(4, app);
  const ph::PhaseType task = spec.task_time_distribution();
  EXPECT_NEAR(task.mean(), 12.0, 1e-9);
  EXPECT_EQ(task.phases(), 4u);
}

TEST(TaskTimeDistribution, GranularityControlsTaskScv) {
  // The calibration story behind Figures 10-15: with H2 CPUs, a
  // coarse-grained task (2 cycles) inherits far more of the per-visit C^2
  // than a fine-grained one (20 cycles).
  cluster::ClusterShapes shapes;
  shapes.cpu = cluster::ServiceShape::hyperexponential(10.0);
  const double fine_scv =
      cluster::central_cluster(3, cluster::ApplicationModel::fine_grained(),
                               shapes)
          .task_time_distribution()
          .scv();
  const double coarse_scv =
      cluster::central_cluster(3, cluster::ApplicationModel::coarse_grained(),
                               shapes)
          .task_time_distribution()
          .scv();
  EXPECT_GT(coarse_scv, 1.5 * fine_scv);
}

TEST(TaskTimeDistribution, SamplableAndConsistent) {
  cluster::ApplicationModel app;
  const ph::PhaseType task =
      cluster::central_cluster(3, app).task_time_distribution();
  finwork::rng::Xoshiro256 g(5);
  finwork::stats::OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(task.sample(g));
  EXPECT_NEAR(s.mean(), task.mean(), 5.0 * s.std_error());
  EXPECT_NEAR(s.variance(), task.variance(), 0.08 * task.variance());
}

TEST(TaskTimeDistribution, QuantilesBracketMean) {
  cluster::ApplicationModel app;
  const ph::PhaseType task =
      cluster::central_cluster(3, app).task_time_distribution();
  EXPECT_LT(task.cdf(0.25 * task.mean()), 0.5);
  EXPECT_GT(task.cdf(3.0 * task.mean()), 0.9);
}
