// Tests for region classification, prediction error and speedup metrics.

#include "core/metrics.h"

#include <gtest/gtest.h>

#include "cluster/experiments.h"

namespace core = finwork::core;
namespace cluster = finwork::cluster;

namespace {

core::DepartureTimeline synthetic_timeline() {
  core::DepartureTimeline tl;
  tl.workstations = 4;
  tl.tasks = 10;
  // Warm-up 2 epochs, steady 5 epochs at 1.0, draining 3 epochs.
  tl.epoch_times = {0.5, 0.8, 1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 2.0, 4.0};
  tl.population = {4, 4, 4, 4, 4, 4, 4, 3, 2, 1};
  double acc = 0.0;
  for (double t : tl.epoch_times) {
    acc += t;
    tl.cumulative.push_back(acc);
  }
  tl.makespan = acc;
  return tl;
}

}  // namespace

TEST(Metrics, ClassifyRegionsSyntheticTimeline) {
  const auto tl = synthetic_timeline();
  const core::RegionAnalysis ra = core::classify_regions(tl, 1.0, 0.02);
  EXPECT_EQ(ra.drain_begin, 7u);
  EXPECT_EQ(ra.steady_begin, 2u);
  EXPECT_EQ(ra.regions[0], core::Region::kTransient);
  EXPECT_EQ(ra.regions[1], core::Region::kTransient);
  EXPECT_EQ(ra.regions[2], core::Region::kSteadyState);
  EXPECT_EQ(ra.regions[6], core::Region::kSteadyState);
  EXPECT_EQ(ra.regions[7], core::Region::kDraining);
  EXPECT_EQ(ra.regions[9], core::Region::kDraining);
}

TEST(Metrics, RegionFractionsSumToOne) {
  const auto tl = synthetic_timeline();
  const core::RegionAnalysis ra = core::classify_regions(tl, 1.0);
  EXPECT_NEAR(
      ra.transient_fraction + ra.steady_fraction + ra.draining_fraction, 1.0,
      1e-12);
  EXPECT_NEAR(ra.transient_fraction, 1.3 / tl.makespan, 1e-12);
  EXPECT_NEAR(ra.draining_fraction, 7.5 / tl.makespan, 1e-12);
}

TEST(Metrics, ClassifyRegionsAllSteady) {
  core::DepartureTimeline tl;
  tl.workstations = 2;
  tl.tasks = 4;
  tl.epoch_times = {1.0, 1.0, 1.0, 1.0};
  tl.population = {2, 2, 2, 2};
  tl.cumulative = {1.0, 2.0, 3.0, 4.0};
  tl.makespan = 4.0;
  const core::RegionAnalysis ra = core::classify_regions(tl, 1.0);
  EXPECT_EQ(ra.steady_begin, 0u);
  EXPECT_EQ(ra.drain_begin, 4u);
  EXPECT_DOUBLE_EQ(ra.steady_fraction, 1.0);
}

TEST(Metrics, ClassifyRegionsEmptyThrows) {
  core::DepartureTimeline tl;
  EXPECT_THROW((void)core::classify_regions(tl, 1.0), std::invalid_argument);
}

TEST(Metrics, ClassifyRegionsRealTimeline) {
  // Real solver timeline: high-C2 shared disk makes a visible warm-up.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  const finwork::core::TransientSolver solver(cluster::build_cluster(cfg), 5);
  const auto tl = solver.solve(40);
  const auto ra =
      core::classify_regions(tl, solver.steady_state().interdeparture);
  EXPECT_GT(ra.steady_begin, 0u);          // there is a warm-up
  EXPECT_EQ(ra.drain_begin, 36u);          // population drops below 5 here
  EXPECT_GT(ra.steady_fraction, 0.3);      // N = 40 >> K: steady dominates
}

TEST(Metrics, PredictionErrorSignAndScale) {
  EXPECT_DOUBLE_EQ(core::prediction_error_percent(100.0, 80.0), 20.0);
  EXPECT_DOUBLE_EQ(core::prediction_error_percent(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(core::prediction_error_percent(50.0, 50.0), 0.0);
  EXPECT_THROW((void)core::prediction_error_percent(0.0, 1.0),
               std::invalid_argument);
}

TEST(Metrics, SpeedupDefinition) {
  EXPECT_DOUBLE_EQ(core::speedup(10, 12.0, 40.0), 3.0);
  EXPECT_DOUBLE_EQ(core::speedup(1, 12.0, 12.0), 1.0);
  EXPECT_THROW((void)core::speedup(1, 12.0, 0.0), std::invalid_argument);
}

TEST(Metrics, SpeedupBoundedByWorkstations) {
  // Physical sanity on the real model: 1 <= SP <= K.
  for (std::size_t k : {2u, 4u, 8u}) {
    cluster::ExperimentConfig cfg;
    cfg.workstations = k;
    const double sp = cluster::cluster_speedup(cfg, 100);
    EXPECT_GE(sp, 1.0) << k;
    EXPECT_LE(sp, static_cast<double>(k)) << k;
  }
}
