// Tests for the steady-state approximation (companion-paper [17] style).

#include "core/approximation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/experiments.h"

namespace core = finwork::core;
namespace cluster = finwork::cluster;

namespace {

core::TransientSolver make_solver(std::size_t k, double remote_scv) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = k;
  if (remote_scv != 1.0) {
    cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(remote_scv);
  }
  return core::TransientSolver(cluster::build_cluster(cfg), k);
}

}  // namespace

TEST(Approximation, ExactWhenWarmupCoversAllEpochs) {
  const auto solver = make_solver(4, 10.0);
  core::ApproximationOptions opts;
  opts.warmup_epochs = 1000;  // > N - K + 1
  const auto approx = core::approximate_makespan(solver, 25, opts);
  EXPECT_NEAR(approx.makespan, solver.makespan(25), 1e-8);
  EXPECT_EQ(approx.exact_epochs, 22u);
}

TEST(Approximation, PureDrainingIsExact) {
  const auto solver = make_solver(5, 5.0);
  const auto approx = core::approximate_makespan(solver, 5);
  EXPECT_NEAR(approx.makespan, solver.makespan(5), 1e-10);
  const auto small = core::approximate_makespan(solver, 3);
  EXPECT_NEAR(small.makespan, solver.makespan(3), 1e-10);
}

TEST(Approximation, AccurateForModerateWorkloads) {
  const auto solver = make_solver(5, 10.0);
  for (std::size_t n : {20u, 50u, 150u}) {
    const double exact = solver.makespan(n);
    const auto approx = core::approximate_makespan(solver, n);
    EXPECT_NEAR(approx.makespan, exact, 0.005 * exact) << n;
  }
}

TEST(Approximation, RelativeErrorVanishesWithWorkload) {
  const auto solver = make_solver(5, 20.0);
  core::ApproximationOptions opts;
  opts.warmup_epochs = 0;  // worst case: no exact epochs at all
  const double e30 =
      std::abs(core::approximate_makespan(solver, 30, opts).makespan -
               solver.makespan(30)) /
      solver.makespan(30);
  const double e300 =
      std::abs(core::approximate_makespan(solver, 300, opts).makespan -
               solver.makespan(300)) /
      solver.makespan(300);
  EXPECT_LT(e300, e30);
  EXPECT_LT(e300, 1e-3);
}

TEST(Approximation, WarmupImprovesAccuracy) {
  const auto solver = make_solver(6, 30.0);
  const double exact = solver.makespan(40);
  core::ApproximationOptions none, some;
  none.warmup_epochs = 0;
  some.warmup_epochs = 10;
  const double err_none =
      std::abs(core::approximate_makespan(solver, 40, none).makespan - exact);
  const double err_some =
      std::abs(core::approximate_makespan(solver, 40, some).makespan - exact);
  EXPECT_LE(err_some, err_none + 1e-12);
}

TEST(Approximation, DecompositionAddsUp) {
  const auto solver = make_solver(4, 5.0);
  const auto approx = core::approximate_makespan(solver, 30);
  EXPECT_NEAR(approx.makespan,
              approx.warmup_time + approx.saturated_time + approx.draining_time,
              1e-12);
  EXPECT_GT(approx.warmup_time, 0.0);
  EXPECT_GT(approx.saturated_time, 0.0);
  EXPECT_GT(approx.draining_time, 0.0);
}

TEST(Approximation, Guards) {
  const auto solver = make_solver(2, 1.0);
  EXPECT_THROW((void)core::approximate_makespan(solver, 0),
               std::invalid_argument);
}

TEST(ProductFormEstimate, ExactForExponentialSteadyDominatedLimit) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  const auto spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 5);
  const double estimate = core::product_form_makespan_estimate(spec, 5, 400);
  const double exact = solver.makespan(400);
  EXPECT_NEAR(estimate, exact, 0.01 * exact);
}

TEST(ProductFormEstimate, UnderestimatesHighVarianceClusters) {
  // The PF estimate uses only means, so it inherits the exponential
  // assumption's optimism on H2 storage.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(50.0);
  const auto spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 5);
  EXPECT_LT(core::product_form_makespan_estimate(spec, 5, 100),
            solver.makespan(100));
  EXPECT_THROW((void)core::product_form_makespan_estimate(spec, 5, 0),
               std::invalid_argument);
}
