// Single-pass N-grid evaluation: makespan_grid / makespan_moments_grid must
// agree with the per-N recursion to solver precision on every config, with
// fast-forward both on and off — the grid is a prefix harvest of the same
// recursion, not an approximation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "cluster/builders.h"
#include "cluster/experiments.h"
#include "core/model_cache.h"
#include "core/transient_solver.h"
#include "obs/counters.h"

namespace {

using namespace finwork;

struct Config {
  const char* name;
  cluster::Architecture architecture;
  std::size_t workstations;
  cluster::ServiceShape remote_disk;
};

std::vector<Config> configs() {
  return {
      {"central-k5-erlang", cluster::Architecture::kCentral, 5,
       cluster::ServiceShape::from_scv(0.5)},
      {"central-k5-hyper", cluster::Architecture::kCentral, 5,
       cluster::ServiceShape::hyperexponential(10.0)},
      {"distributed-k3-erlang", cluster::Architecture::kDistributed, 3,
       cluster::ServiceShape::from_scv(0.5)},
      {"distributed-k4-hyper", cluster::Architecture::kDistributed, 4,
       cluster::ServiceShape::hyperexponential(10.0)},
  };
}

net::NetworkSpec make_spec(const Config& c) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = c.architecture;
  cfg.workstations = c.workstations;
  cfg.shapes.remote_disk = c.remote_disk;
  return cluster::build_cluster(cfg);
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max(std::abs(b), 1e-300);
}

TEST(MakespanGridTest, MatchesPerNMakespanAllConfigs) {
  for (const bool fast_forward : {true, false}) {
    for (const Config& c : configs()) {
      SCOPED_TRACE(std::string(c.name) +
                   (fast_forward ? " ff=on" : " ff=off"));
      const net::NetworkSpec spec = make_spec(c);
      core::SolverOptions opts;
      opts.fast_forward = fast_forward;
      const core::TransientSolver solver(spec, c.workstations, opts);

      const std::size_t k = c.workstations;
      const std::vector<std::size_t> grid{k, 2 * k, 100, 5000};
      const std::vector<double> batch = solver.makespan_grid(grid);
      ASSERT_EQ(batch.size(), grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("N=" + std::to_string(grid[i]));
        const double per_n = solver.makespan(grid[i]);
        EXPECT_GT(batch[i], 0.0);
        EXPECT_LE(rel_diff(batch[i], per_n), 1e-10);
      }
    }
  }
}

TEST(MakespanGridTest, HandlesSubKWorkloads) {
  // N < K never saturates: the grid harvests those points from the drain
  // recursion alone, matching solve()'s "cluster of size N" semantics.
  const Config c = configs()[0];
  const core::TransientSolver solver(make_spec(c), c.workstations);
  std::vector<std::size_t> grid;
  for (std::size_t n = 1; n <= c.workstations; ++n) grid.push_back(n);
  const std::vector<double> batch = solver.makespan_grid(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE("N=" + std::to_string(grid[i]));
    EXPECT_LE(rel_diff(batch[i], solver.makespan(grid[i])), 1e-10);
  }
}

TEST(MakespanGridTest, PreservesInputOrderWithDuplicates) {
  const Config c = configs()[2];
  const core::TransientSolver solver(make_spec(c), c.workstations);
  const std::vector<std::size_t> grid{200, 2, 200, 7, 40, 2};
  const std::vector<double> batch = solver.makespan_grid(grid);
  ASSERT_EQ(batch.size(), grid.size());
  EXPECT_EQ(batch[0], batch[2]);
  EXPECT_EQ(batch[1], batch[5]);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_LE(rel_diff(batch[i], solver.makespan(grid[i])), 1e-10);
  }
}

TEST(MakespanGridTest, ValidatesInput) {
  const Config c = configs()[0];
  const core::TransientSolver solver(make_spec(c), c.workstations);
  EXPECT_TRUE(solver.makespan_grid({}).empty());
  const std::vector<std::size_t> bad{10, 0};
  EXPECT_THROW((void)solver.makespan_grid(bad), std::invalid_argument);
}

TEST(MakespanGridTest, CountsGridPointsPerPass) {
  const Config c = configs()[0];
  const core::TransientSolver solver(make_spec(c), c.workstations);
  const std::uint64_t before =
      obs::counter_value(obs::Counter::kGridPointsPerPass);
  const std::vector<std::size_t> grid{5, 50, 500};
  (void)solver.makespan_grid(grid);
  EXPECT_EQ(obs::counter_value(obs::Counter::kGridPointsPerPass),
            before + grid.size());
}

TEST(MakespanMomentsGridTest, MatchesPerNMomentsAllConfigs) {
  for (const bool fast_forward : {true, false}) {
    for (const Config& c : configs()) {
      SCOPED_TRACE(std::string(c.name) +
                   (fast_forward ? " ff=on" : " ff=off"));
      const net::NetworkSpec spec = make_spec(c);
      core::SolverOptions opts;
      opts.fast_forward = fast_forward;
      const core::TransientSolver solver(spec, c.workstations, opts);

      const std::size_t k = c.workstations;
      // 2000 keeps the ff=off double-pass affordable; ff=on covers the
      // closed-form tail the same way makespan_moments does.
      const std::vector<std::size_t> grid{1, k, 2 * k, 100, 2000};
      const auto batch = solver.makespan_moments_grid(grid);
      ASSERT_EQ(batch.size(), grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i) {
        SCOPED_TRACE("N=" + std::to_string(grid[i]));
        const core::MakespanMoments per_n = solver.makespan_moments(grid[i]);
        EXPECT_LE(rel_diff(batch[i].mean, per_n.mean), 1e-10);
        EXPECT_LE(rel_diff(batch[i].second_moment, per_n.second_moment),
                  1e-10);
      }
    }
  }
}

TEST(MakespanGridTest, ConcurrentSweepPointsShareOneCachedModel) {
  // The figure-sweep shape: many threads, same cluster, different N — one
  // single-flight build, every solver over the same artifacts, identical
  // results.  This is the TSan target for the concurrent cache paths.
  const Config c = configs()[1];
  const net::NetworkSpec spec = make_spec(c);
  core::ModelCache cache(4);
  const std::vector<std::size_t> grid{c.workstations, 25, 60, 300};

  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<double>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const core::TransientSolver solver(
            cache.acquire(spec, c.workstations));
        results[t] = solver.makespan_grid(grid);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  EXPECT_EQ(cache.stats().misses, 1U);
  for (std::size_t t = 1; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      // Same artifacts, same deterministic recursion: bit-identical.
      EXPECT_EQ(results[t][i], results[0][i]) << "thread " << t << " N index "
                                              << i;
    }
  }
}

TEST(MakespanGridTest, GridSweepMatchesPerPointSweep) {
  // End-to-end through the experiments layer: the ported grid-based
  // prediction-error sweep must reproduce the per-point computation.
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = 3;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  const std::vector<std::size_t> task_counts{3, 30, 120};
  const std::vector<double> grid =
      cluster::cluster_prediction_error_grid(cfg, task_counts);
  ASSERT_EQ(grid.size(), task_counts.size());
  for (std::size_t i = 0; i < task_counts.size(); ++i) {
    EXPECT_NEAR(grid[i], cluster::cluster_prediction_error(cfg, task_counts[i]),
                1e-8);
  }
}

}  // namespace
