// Tests for the variance extension: epoch second moments, epoch-duration
// reliability, and full makespan moments, against closed forms and the
// simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "sim/simulator.h"

namespace core = finwork::core;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec one_station(ph::PhaseType svc, std::size_t mult) {
  std::vector<net::Station> st{{"S", std::move(svc), mult}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

}  // namespace

TEST(EpochMoments, SharedExponentialSecondMoment) {
  // First passage to a departure from a busy M server is Exp(rate):
  // E[T^2] = 2 / rate^2 at every population.
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(4.0), 1), 3);
  for (std::size_t k = 1; k <= 3; ++k) {
    la::Vector pi(solver.space().dimension(k), 0.0);
    pi[0] = 1.0;
    EXPECT_NEAR(solver.epoch_second_moment(k, pi), 2.0 / 16.0, 1e-12) << k;
  }
}

TEST(EpochMoments, ForkJoinFirstDepartureIsExponentialMin) {
  // K ample exponential servers: first departure ~ Exp(K lambda):
  // E[T^2] = 2/(K lambda)^2, R(t) = exp(-K lambda t).
  const double lambda = 1.5;
  const std::size_t k = 4;
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(lambda), k), k);
  const la::Vector pi = solver.initial_vector();
  const double rate = static_cast<double>(k) * lambda;
  EXPECT_NEAR(solver.epoch_second_moment(k, pi), 2.0 / (rate * rate), 1e-10);
  for (double t : {0.05, 0.2, 0.5}) {
    EXPECT_NEAR(solver.epoch_reliability(k, pi, t), std::exp(-rate * t), 1e-8)
        << t;
  }
}

TEST(EpochMoments, ReliabilityIntegratesToMean) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 4;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(5.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 4);
  const la::Vector pi = solver.initial_vector();
  const double mean = solver.mean_epoch_time(4, pi);
  // Trapezoid of R(t) over [0, 30*mean].
  const int steps = 600;
  const double h = 30.0 * mean / steps;
  double integral = 0.0;
  double prev = solver.epoch_reliability(4, pi, 0.0);
  for (int i = 1; i <= steps; ++i) {
    const double cur = solver.epoch_reliability(4, pi, i * h);
    integral += 0.5 * h * (prev + cur);
    prev = cur;
  }
  EXPECT_NEAR(integral, mean, 0.01 * mean);
}

TEST(EpochMoments, ReliabilityMonotoneAndBounded) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 3;
  const core::TransientSolver solver(cluster::build_cluster(cfg), 3);
  const la::Vector pi = solver.initial_vector();
  double prev = 1.0;
  for (double t = 0.0; t <= 10.0; t += 0.5) {
    const double r = solver.epoch_reliability(3, pi, t);
    EXPECT_LE(r, prev + 1e-9);
    EXPECT_GE(r, 0.0);
    prev = r;
  }
  EXPECT_THROW((void)solver.epoch_reliability(3, pi, -1.0),
               std::invalid_argument);
}

TEST(MakespanMoments, SerialWorkIsErlangSum) {
  // K = 1, N tasks on Exp(lambda): T ~ Erlang(N, lambda).
  const double lambda = 2.0;
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(lambda), 1), 1);
  const core::MakespanMoments mm = solver.makespan_moments(10);
  EXPECT_NEAR(mm.mean, 10.0 / lambda, 1e-10);
  EXPECT_NEAR(mm.variance, 10.0 / (lambda * lambda), 1e-9);
  EXPECT_NEAR(mm.scv, 0.1, 1e-9);
}

TEST(MakespanMoments, SharedServerIsErlangToo) {
  // One shared server, any K: N exponential services back to back.
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(1.0), 1), 4);
  const core::MakespanMoments mm = solver.makespan_moments(9);
  EXPECT_NEAR(mm.mean, 9.0, 1e-9);
  EXPECT_NEAR(mm.variance, 9.0, 1e-8);
}

TEST(MakespanMoments, ForkJoinMaxOfExponentials) {
  // N = K on private servers: T = max of K Exp(lambda);
  // Var = sum 1/(i lambda)^2.
  const double lambda = 0.8;
  const std::size_t k = 5;
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(lambda), k), k);
  const core::MakespanMoments mm = solver.makespan_moments(k);
  double mean = 0.0, var = 0.0;
  for (std::size_t i = 1; i <= k; ++i) {
    mean += 1.0 / (lambda * static_cast<double>(i));
    var += 1.0 / std::pow(lambda * static_cast<double>(i), 2);
  }
  EXPECT_NEAR(mm.mean, mean, 1e-10);
  EXPECT_NEAR(mm.variance, var, 1e-9);
}

TEST(MakespanMoments, MeanMatchesEpochRecursion) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
  for (std::size_t n : {3u, 5u, 12u, 40u}) {
    EXPECT_NEAR(solver.makespan_moments(n).mean, solver.makespan(n),
                1e-9 * solver.makespan(n))
        << n;
  }
}

TEST(MakespanMoments, VarianceMatchesSimulation) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 4;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(8.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 4);
  const core::MakespanMoments mm = solver.makespan_moments(20);

  finwork::sim::NetworkSimulator simulator(spec, 4);
  finwork::sim::SimulationOptions opts;
  opts.replications = 20000;
  const auto sr = simulator.run(20, opts);
  EXPECT_NEAR(sr.makespan.mean(), mm.mean, 4.0 * sr.makespan.std_error());
  // Sample variance of 20k reps is within ~6% of truth w.h.p.
  EXPECT_NEAR(sr.makespan.variance(), mm.variance, 0.08 * mm.variance);
}

TEST(MakespanMoments, VarianceGrowsWithServiceVariance) {
  cluster::ExperimentConfig exp_cfg;
  exp_cfg.workstations = 4;
  cluster::ExperimentConfig h2_cfg = exp_cfg;
  h2_cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(20.0);
  const core::TransientSolver s_exp(cluster::build_cluster(exp_cfg), 4);
  const core::TransientSolver s_h2(cluster::build_cluster(h2_cfg), 4);
  EXPECT_GT(s_h2.makespan_moments(20).variance,
            s_exp.makespan_moments(20).variance);
}

TEST(MakespanMoments, RelativeVariabilityShrinksWithWorkload) {
  // Averaging over more tasks concentrates the makespan: scv decreases in N.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 3;
  const core::TransientSolver solver(cluster::build_cluster(cfg), 3);
  const double scv10 = solver.makespan_moments(10).scv;
  const double scv80 = solver.makespan_moments(80).scv;
  EXPECT_LT(scv80, scv10);
}

TEST(MakespanMoments, Guards) {
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(1.0), 1), 1);
  EXPECT_THROW((void)solver.makespan_moments(0), std::invalid_argument);
}
