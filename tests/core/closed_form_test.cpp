// Cross-checks of the transient solver against classical closed-form
// queueing results: order statistics of exponentials, the machine-repairman
// (M/M/1//K) model, and Erlang draining.

#include <gtest/gtest.h>

#include <cmath>

#include "core/transient_solver.h"
#include "pf/order_statistics.h"
#include "ph/phase_type.h"

namespace core = finwork::core;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace pf = finwork::pf;

namespace {

/// A single ample exponential station with direct exit: K independent
/// servers, pure fork/join.
net::NetworkSpec ample_station(double rate, std::size_t k) {
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(rate), k}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

/// Machine repairman: ample think station (rate lambda per task) feeding a
/// single repair server (rate mu); a repaired task exits and is replaced.
net::NetworkSpec machine_repairman(double lambda, double mu, std::size_t k) {
  std::vector<net::Station> st;
  st.push_back({"Think", ph::PhaseType::exponential(lambda), k});
  st.push_back({"Server", ph::PhaseType::exponential(mu), 1});
  la::Vector entry{1.0, 0.0};
  la::Matrix routing(2, 2, 0.0);
  routing(0, 1) = 1.0;
  la::Vector exit{0.0, 1.0};
  return net::NetworkSpec(std::move(st), std::move(entry), std::move(routing),
                          std::move(exit));
}

}  // namespace

TEST(ClosedForm, ForkJoinDrainingIsExponentialOrderStatistics) {
  // N = K iid Exp(lambda) tasks on private servers: the i-th epoch is the
  // minimum of K-i+1 exponentials, and the makespan is the harmonic sum.
  const double lambda = 0.5;
  const std::size_t k = 6;
  const core::TransientSolver solver(ample_station(lambda, k), k);
  const core::DepartureTimeline tl = solver.solve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double remaining = static_cast<double>(k - i);
    EXPECT_NEAR(tl.epoch_times[i], 1.0 / (lambda * remaining), 1e-10);
  }
  double harmonic = 0.0;
  for (std::size_t j = 1; j <= k; ++j) harmonic += 1.0 / static_cast<double>(j);
  EXPECT_NEAR(tl.makespan, harmonic / lambda, 1e-10);
}

TEST(ClosedForm, ForkJoinMakespanMatchesOrderStatisticsModule) {
  // The same quantity through the independent order-statistics module:
  // E[max of K Exp] must equal the transient solver's N = K makespan.
  const double lambda = 1.25;
  const std::size_t k = 5;
  const core::TransientSolver solver(ample_station(lambda, k), k);
  const double analytic = solver.makespan(k);
  const double orderstat =
      pf::expected_maximum(ph::PhaseType::exponential(lambda), k);
  EXPECT_NEAR(analytic, orderstat, 1e-6);
}

TEST(ClosedForm, ForkJoinSaturatedEpochs) {
  // With N > K and ample servers the saturated epochs are waits for the
  // first of K exponentials *after* a renewal: exactly 1/(K lambda).
  const double lambda = 2.0;
  const std::size_t k = 4;
  const core::TransientSolver solver(ample_station(lambda, k), k);
  const core::DepartureTimeline tl = solver.solve(12);
  for (std::size_t i = 0; i < 12 - k + 1; ++i) {
    EXPECT_NEAR(tl.epoch_times[i], 1.0 / (lambda * 4.0), 1e-10);
  }
}

TEST(ClosedForm, MachineRepairmanSteadyStateThroughput) {
  // M/M/1//K: p_n = p_0 K!/(K-n)! (lambda/mu)^n, throughput = mu (1 - p_0).
  const double lambda = 1.0, mu = 3.0;
  const std::size_t k = 4;
  double weight = 1.0, norm = 1.0;
  for (std::size_t n = 1; n <= k; ++n) {
    weight *= static_cast<double>(k - n + 1) * lambda / mu;
    norm += weight;
  }
  const double p0 = 1.0 / norm;
  const double throughput = mu * (1.0 - p0);

  const core::TransientSolver solver(machine_repairman(lambda, mu, k), k);
  const core::SteadyStateResult& ss = solver.steady_state();
  ASSERT_TRUE(ss.converged);
  EXPECT_NEAR(ss.throughput, throughput, 1e-9);
}

TEST(ClosedForm, MachineRepairmanServerHeavySaturates) {
  // When mu << K lambda the single server saturates: t_ss -> 1/mu.
  const double lambda = 10.0, mu = 1.0;
  const std::size_t k = 6;
  const core::TransientSolver solver(machine_repairman(lambda, mu, k), k);
  EXPECT_NEAR(solver.steady_state().interdeparture, 1.0 / mu, 0.01);
}

TEST(ClosedForm, MachineRepairmanThinkHeavyIsAmple) {
  // When mu >> K lambda there is no queueing: throughput ~= K lambda
  // (slightly less; each task also spends 1/mu in service).
  const double lambda = 1.0, mu = 500.0;
  const std::size_t k = 5;
  const core::TransientSolver solver(machine_repairman(lambda, mu, k), k);
  const double cycle = 1.0 / lambda + 1.0 / mu;
  EXPECT_NEAR(solver.steady_state().interdeparture,
              cycle / static_cast<double>(k), 1e-4);
}

TEST(ClosedForm, TwoTaskTandemFirstDeparture) {
  // Hand-computable case: two single-server exponential stations in series
  // (rates a and b), exit after the second; one task in the system.
  // tau = 1/a + 1/b from the first station.
  const double a = 2.0, b = 5.0;
  std::vector<net::Station> st;
  st.push_back({"A", ph::PhaseType::exponential(a), 1});
  st.push_back({"B", ph::PhaseType::exponential(b), 1});
  la::Vector entry{1.0, 0.0};
  la::Matrix routing(2, 2, 0.0);
  routing(0, 1) = 1.0;
  la::Vector exit{0.0, 1.0};
  const net::NetworkSpec spec(std::move(st), std::move(entry),
                              std::move(routing), std::move(exit));
  const core::TransientSolver solver(spec, 1);
  EXPECT_NEAR(solver.makespan(1), 1.0 / a + 1.0 / b, 1e-12);
  // N tasks with K = 1: pure renewal.
  EXPECT_NEAR(solver.makespan(6), 6.0 * (1.0 / a + 1.0 / b), 1e-10);
}

TEST(ClosedForm, ErlangServiceSingleTask) {
  // A task through one station with Erlang-3 service, mean 2: E(T) = 2 and
  // the first-departure time from the transient machinery agrees.
  std::vector<net::Station> st{{"S", ph::PhaseType::erlang(3, 2.0), 1}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix(1, 1, 0.0), la::Vector{1.0});
  const core::TransientSolver solver(spec, 1);
  EXPECT_NEAR(solver.makespan(1), 2.0, 1e-12);
}

TEST(ClosedForm, HyperexponentialSharedServerQueueing) {
  // Single shared H2 server holding 2 tasks: the first departure is NOT the
  // naive mean because the epoch starts from the entrance mixture.  With
  // FCFS only the head is in service; time to first departure = mean of the
  // in-service H2 = its mean.  Second task then serves to completion.
  const ph::PhaseType h2 = finwork::ph::PhaseType::hyperexponential(
      {0.5, 0.5}, {2.0, 0.4});
  const double mean = h2.mean();
  std::vector<net::Station> st{{"S", h2, 1}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix(1, 1, 0.0), la::Vector{1.0});
  const core::TransientSolver solver(spec, 2);
  const core::DepartureTimeline tl = solver.solve(2);
  EXPECT_NEAR(tl.epoch_times[0], mean, 1e-12);
  EXPECT_NEAR(tl.epoch_times[1], mean, 1e-12);
  EXPECT_NEAR(tl.makespan, 2.0 * mean, 1e-12);
}
