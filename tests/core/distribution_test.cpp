// Tests for the makespan distribution (uniformization over the layered
// absorbing chain) and the station-occupancy metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "pf/product_form.h"
#include "ph/phase_type.h"
#include "sim/simulator.h"

namespace core = finwork::core;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace pf = finwork::pf;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec one_station(ph::PhaseType svc, std::size_t mult) {
  std::vector<net::Station> st{{"S", std::move(svc), mult}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

}  // namespace

TEST(MakespanCdf, SerialWorkIsErlangCdf) {
  // K = 1, N services of Exp(lambda): T ~ Erlang(N, lambda); compare to the
  // PH library's independent CDF implementation.
  const double lambda = 2.0;
  const std::size_t n = 6;
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(lambda), 1), 1);
  const ph::PhaseType erlang =
      ph::PhaseType::erlang(n, static_cast<double>(n) / lambda);
  for (double t : {0.5, 1.5, 3.0, 6.0}) {
    EXPECT_NEAR(solver.makespan_cdf(n, t), erlang.cdf(t), 1e-8) << t;
  }
}

TEST(MakespanCdf, ForkJoinIsMaxOfExponentials) {
  // N = K on private servers: F(t) = (1 - e^{-lambda t})^K.
  const double lambda = 1.0;
  const std::size_t k = 4;
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(lambda), k), k);
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    const double expected = std::pow(1.0 - std::exp(-lambda * t),
                                     static_cast<double>(k));
    EXPECT_NEAR(solver.makespan_cdf(k, t), expected, 1e-8) << t;
  }
}

TEST(MakespanCdf, BoundaryBehaviour) {
  const core::TransientSolver solver(
      one_station(ph::PhaseType::exponential(1.0), 1), 1);
  EXPECT_DOUBLE_EQ(solver.makespan_cdf(3, 0.0), 0.0);
  EXPECT_NEAR(solver.makespan_cdf(3, 100.0), 1.0, 1e-9);
  EXPECT_THROW((void)solver.makespan_cdf(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)solver.makespan_cdf(3, -1.0), std::invalid_argument);
  EXPECT_TRUE(solver.makespan_cdf(3, std::vector<double>{}).empty());
}

TEST(MakespanCdf, MonotoneInTime) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 4;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(8.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 4);
  const core::MakespanMoments mm = solver.makespan_moments(15);
  std::vector<double> times;
  for (int i = 0; i <= 16; ++i) {
    times.push_back(mm.mean * 0.125 * static_cast<double>(i));
  }
  const std::vector<double> cdf = solver.makespan_cdf(15, times);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1] - 1e-10);
  }
  // Roughly half the mass sits below/above the mean-ish region.
  EXPECT_GT(cdf.back(), 0.95);
}

TEST(MakespanCdf, ConsistentWithMomentsViaTailIntegral) {
  // E[T] = int (1 - F(t)) dt; coarse trapezoid against the block solve.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 3;
  const core::TransientSolver solver(cluster::build_cluster(cfg), 3);
  const double mean = solver.makespan_moments(9).mean;
  const int steps = 300;
  const double upto = 4.0 * mean;
  std::vector<double> times(steps + 1);
  for (int i = 0; i <= steps; ++i) times[i] = upto * i / steps;
  const std::vector<double> cdf = solver.makespan_cdf(9, times);
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    integral += (upto / steps) * 0.5 * ((1.0 - cdf[i]) + (1.0 - cdf[i + 1]));
  }
  EXPECT_NEAR(integral, mean, 0.01 * mean);
}

TEST(MakespanCdf, MatchesSimulationQuantiles) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 4;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(6.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  const core::TransientSolver solver(spec, 4);

  finwork::sim::NetworkSimulator simulator(spec, 4);
  finwork::rng::Xoshiro256 root(77);
  const std::size_t reps = 6000;
  std::vector<double> samples(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    finwork::rng::Xoshiro256 g = root.split(r);
    samples[r] = simulator.run_once(16, g).back();
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {0.25, 0.5, 0.75, 0.9}) {
    const double xq = samples[static_cast<std::size_t>(p * (reps - 1))];
    EXPECT_NEAR(solver.makespan_cdf(16, xq), p, 0.03) << p;
  }
}

TEST(StationOccupancy, SumsToPopulation) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  const core::TransientSolver solver(cluster::build_cluster(cfg), 5);
  const auto occ = solver.station_occupancy(5, solver.initial_vector());
  double total = 0.0;
  for (const auto& o : occ) total += o.mean_customers;
  EXPECT_NEAR(total, 5.0, 1e-10);
}

TEST(StationOccupancy, InitialStateAllAtCpu) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 4;
  const core::TransientSolver solver(cluster::build_cluster(cfg), 4);
  const auto occ = solver.station_occupancy(4, solver.initial_vector());
  EXPECT_NEAR(occ[0].mean_customers, 4.0, 1e-12);
  EXPECT_NEAR(occ[0].utilization, 1.0, 1e-12);
  EXPECT_NEAR(occ[1].mean_customers, 0.0, 1e-12);
}

TEST(StationOccupancy, SteadyStateMatchesConvolutionExactly) {
  // Exponential network: p_ss occupancy must equal Buzen's marginals.
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(5, app);
  const core::TransientSolver solver(spec, 5);
  const auto occ =
      solver.station_occupancy(5, solver.time_stationary_distribution());
  const pf::ClosedNetworkResult conv = pf::convolution(spec, 5);
  for (std::size_t j = 0; j < spec.num_stations(); ++j) {
    EXPECT_NEAR(occ[j].mean_customers, conv.mean_queue_length[j], 1e-8) << j;
    EXPECT_NEAR(occ[j].utilization, conv.utilization[j], 1e-8) << j;
  }
}

TEST(StationOccupancy, HighVarianceInflatesSharedQueue) {
  cluster::ExperimentConfig exp_cfg;
  exp_cfg.workstations = 5;
  cluster::ExperimentConfig h2_cfg = exp_cfg;
  h2_cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(30.0);
  const core::TransientSolver s_exp(cluster::build_cluster(exp_cfg), 5);
  const core::TransientSolver s_h2(cluster::build_cluster(h2_cfg), 5);
  const auto occ_exp =
      s_exp.station_occupancy(5, s_exp.time_stationary_distribution());
  const auto occ_h2 =
      s_h2.station_occupancy(5, s_h2.time_stationary_distribution());
  EXPECT_GT(occ_h2[3].mean_customers, occ_exp[3].mean_customers);
}

TEST(StationOccupancy, Guards) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = 2;
  const core::TransientSolver solver(cluster::build_cluster(cfg), 2);
  EXPECT_THROW((void)solver.station_occupancy(0, la::Vector{1.0}),
               std::out_of_range);
  EXPECT_THROW((void)solver.station_occupancy(2, la::Vector{1.0}),
               std::invalid_argument);
}

TEST(Connectivity, RejectsTrappedTasks) {
  // Station B routes only to itself-ish loop with no exit anywhere.
  std::vector<net::Station> st;
  st.push_back({"A", ph::PhaseType::exponential(1.0), 1});
  st.push_back({"B", ph::PhaseType::exponential(1.0), 1});
  la::Vector entry{1.0, 0.0};
  la::Matrix routing(2, 2, 0.0);
  routing(0, 1) = 1.0;
  routing(1, 0) = 1.0;
  la::Vector exit{0.0, 0.0};
  // Row sums: A: 1.0, B: 1.0 — structurally valid, but no exit at all.
  const net::NetworkSpec spec(std::move(st), std::move(entry),
                              std::move(routing), std::move(exit));
  EXPECT_THROW((void)spec.validate_connectivity(), std::invalid_argument);
  EXPECT_THROW((void)core::TransientSolver(spec, 2), std::invalid_argument);
}

TEST(Connectivity, UnreachableDeadBranchIsHarmless) {
  // Station C is never entered; its lack of an exit path must not trip the
  // validator (it is dead weight, not a trap).
  std::vector<net::Station> st;
  st.push_back({"A", ph::PhaseType::exponential(1.0), 1});
  st.push_back({"C", ph::PhaseType::exponential(1.0), 1});
  la::Vector entry{1.0, 0.0};
  la::Matrix routing(2, 2, 0.0);
  routing(1, 1) = 1.0;  // C loops forever — but nothing reaches C
  la::Vector exit{1.0, 0.0};
  const net::NetworkSpec spec(std::move(st), std::move(entry),
                              std::move(routing), std::move(exit));
  EXPECT_NO_THROW(spec.validate_connectivity());
}

TEST(Connectivity, ValidClustersPass) {
  cluster::ApplicationModel app;
  EXPECT_NO_THROW(cluster::central_cluster(4, app).validate_connectivity());
  EXPECT_NO_THROW(
      cluster::distributed_cluster(3, app).validate_connectivity());
}
