// Tests for the transient solver: epoch structure, probability preservation,
// steady state, dense/iterative agreement, Erlang-1 == exponential.

#include "core/transient_solver.h"

#include <gtest/gtest.h>

#include "cluster/experiments.h"
#include "ph/fitting.h"

namespace core = finwork::core;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec single_exponential_station(double rate) {
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(rate), 1}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

cluster::ExperimentConfig central_config(std::size_t k) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = k;
  return cfg;
}

}  // namespace

TEST(TransientSolver, SingleStationSingleTask) {
  // One M/M/1-like station with rate 2, one task: E(T) = 0.5.
  const core::TransientSolver solver(single_exponential_station(2.0), 1);
  EXPECT_NEAR(solver.makespan(1), 0.5, 1e-12);
}

TEST(TransientSolver, SingleStationManyTasksIsRenewal) {
  // K = 1: tasks run one at a time; E(T) = N / rate.
  const core::TransientSolver solver(single_exponential_station(2.0), 1);
  const core::DepartureTimeline tl = solver.solve(10);
  EXPECT_NEAR(tl.makespan, 5.0, 1e-10);
  for (double t : tl.epoch_times) EXPECT_NEAR(t, 0.5, 1e-12);
}

TEST(TransientSolver, SingleSharedStationKTasks) {
  // One shared exponential server holding K tasks: every epoch is an M/M/1
  // departure, E per epoch = 1/rate regardless of queue length.
  const core::TransientSolver solver(single_exponential_station(4.0), 3);
  const core::DepartureTimeline tl = solver.solve(7);
  for (double t : tl.epoch_times) EXPECT_NEAR(t, 0.25, 1e-12);
  EXPECT_NEAR(tl.makespan, 7.0 / 4.0, 1e-10);
}

TEST(TransientSolver, TimelineStructure) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(5)), 5);
  const core::DepartureTimeline tl = solver.solve(30);
  ASSERT_EQ(tl.epoch_times.size(), 30u);
  ASSERT_EQ(tl.population.size(), 30u);
  ASSERT_EQ(tl.cumulative.size(), 30u);
  // Saturated for the first N-K+1 epochs, then draining K-1 .. 1.
  for (std::size_t i = 0; i < 26; ++i) EXPECT_EQ(tl.population[i], 5u);
  EXPECT_EQ(tl.population[26], 4u);
  EXPECT_EQ(tl.population[29], 1u);
  // Cumulative is the prefix sum.
  double acc = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    acc += tl.epoch_times[i];
    EXPECT_NEAR(tl.cumulative[i], acc, 1e-12);
  }
  EXPECT_NEAR(tl.makespan, acc, 1e-12);
}

TEST(TransientSolver, TasksFewerThanWorkstations) {
  // N < K behaves like an N-sized cluster (paper's remark).
  const net::NetworkSpec spec = cluster::build_cluster(central_config(8));
  const core::TransientSolver big(spec, 8);
  const core::TransientSolver small(spec, 3);
  EXPECT_NEAR(big.makespan(3), small.makespan(3), 1e-9);
}

TEST(TransientSolver, MakespanGrowsWithTasks) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(4)), 4);
  double prev = 0.0;
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const double m = solver.makespan(n);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(TransientSolver, ApplyYPreservesProbability) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(4)), 4);
  la::Vector pi = solver.initial_vector();
  for (std::size_t k = 4; k >= 1; --k) {
    EXPECT_NEAR(pi.sum(), 1.0, 1e-10) << "level " << k;
    pi = solver.apply_y(k, pi);
  }
  EXPECT_NEAR(pi.sum(), 1.0, 1e-10);  // level 0: the empty state
}

TEST(TransientSolver, ApplyRPreservesProbability) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(4)), 4);
  la::Vector pi(1, 1.0);
  for (std::size_t k = 1; k <= 4; ++k) {
    pi = solver.apply_r(k, pi);
    EXPECT_NEAR(pi.sum(), 1.0, 1e-12);
  }
}

TEST(TransientSolver, TauPositive) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(3)), 3);
  for (std::size_t k = 1; k <= 3; ++k) {
    const la::Vector& tau = solver.tau(k);
    for (std::size_t i = 0; i < tau.size(); ++i) EXPECT_GT(tau[i], 0.0);
  }
}

TEST(TransientSolver, Erlang1MatchesExponentialEverywhere) {
  cluster::ExperimentConfig e1 = central_config(4);
  e1.shapes.cpu = cluster::ServiceShape::erlang(1);
  e1.shapes.remote_disk = cluster::ServiceShape::erlang(1);
  const core::TransientSolver s_e1(cluster::build_cluster(e1), 4);
  const core::TransientSolver s_exp(
      cluster::build_cluster(central_config(4)), 4);
  const auto tl_e1 = s_e1.solve(12);
  const auto tl_exp = s_exp.solve(12);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(tl_e1.epoch_times[i], tl_exp.epoch_times[i], 1e-9);
  }
}

TEST(TransientSolver, SteadyStateIsFixedPoint) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(5)), 5);
  const core::SteadyStateResult& ss = solver.steady_state();
  ASSERT_TRUE(ss.converged);
  const la::Vector cycled = solver.apply_r(5, solver.apply_y(5, ss.distribution));
  EXPECT_TRUE(la::allclose(cycled, ss.distribution, 1e-8, 1e-10));
  EXPECT_NEAR(ss.distribution.sum(), 1.0, 1e-10);
  EXPECT_NEAR(ss.throughput * ss.interdeparture, 1.0, 1e-12);
}

TEST(TransientSolver, EpochTimesConvergeToSteadyState) {
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(5)), 5);
  const double t_ss = solver.steady_state().interdeparture;
  const core::DepartureTimeline tl = solver.solve(60);
  // Middle epochs (well past warm-up, well before draining) sit at t_ss.
  for (std::size_t i = 30; i < 50; ++i) {
    EXPECT_NEAR(tl.epoch_times[i], t_ss, 1e-6 * t_ss) << "epoch " << i;
  }
}

TEST(TransientSolver, DrainingEpochsSlowDown) {
  // With dedicated CPUs dominating, fewer tasks in the system means less
  // parallelism: the last epochs take longer than the steady ones.
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(6)), 6);
  const core::DepartureTimeline tl = solver.solve(30);
  const double steady = tl.epoch_times[20];
  EXPECT_GT(tl.epoch_times[29], 2.0 * steady);  // population 1 vs 6
}

TEST(TransientSolver, DenseAndIterativeAgree) {
  cluster::ExperimentConfig cfg = central_config(4);
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(8.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  core::SolverOptions dense_opts;
  core::SolverOptions iter_opts;
  iter_opts.dense_threshold = 0;  // force the sparse iterative path
  const core::TransientSolver dense(spec, 4, dense_opts);
  const core::TransientSolver iterative(spec, 4, iter_opts);
  const auto tl_d = dense.solve(15);
  const auto tl_i = iterative.solve(15);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_NEAR(tl_d.epoch_times[i], tl_i.epoch_times[i],
                1e-7 * tl_d.epoch_times[i])
        << "epoch " << i;
  }
  EXPECT_NEAR(dense.steady_state().interdeparture,
              iterative.steady_state().interdeparture, 1e-7);
}

TEST(TransientSolver, GuardsBadArguments) {
  const core::TransientSolver solver(single_exponential_station(1.0), 2);
  EXPECT_THROW((void)solver.solve(0), std::invalid_argument);
  EXPECT_THROW((void)solver.tau(0), std::out_of_range);
  EXPECT_THROW((void)solver.tau(3), std::out_of_range);
}

// Property: the total makespan equals the paper's two-term decomposition
// (saturated sum + draining sum) for several N.
class EpochDecomposition : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EpochDecomposition, SumsMatchDirectFormula) {
  const std::size_t n = GetParam();
  const core::TransientSolver solver(
      cluster::build_cluster(central_config(3)), 3);
  const core::DepartureTimeline tl = solver.solve(n);
  // Recompute via the raw operators.
  la::Vector pi = solver.initial_vector();
  double total = 0.0;
  const std::size_t sat = n - 3 + 1;
  for (std::size_t i = 0; i < sat; ++i) {
    total += solver.mean_epoch_time(3, pi);
    if (i + 1 < sat) pi = solver.apply_r(3, solver.apply_y(3, pi));
  }
  pi = solver.apply_y(3, pi);
  total += solver.mean_epoch_time(2, pi);
  pi = solver.apply_y(2, pi);
  total += solver.mean_epoch_time(1, pi);
  EXPECT_NEAR(tl.makespan, total, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Workloads, EpochDecomposition,
                         ::testing::Values(3, 4, 5, 10, 30));
