// Content-addressed model cache: canonical fingerprinting with structural
// equality (never hash-trust), single-flight build dedup, LRU capacity
// bounds, and artifact sharing across solver instances.

#include "core/model_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/builders.h"
#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "network/network_spec.h"

namespace {

using namespace finwork;

net::NetworkSpec make_cluster(std::size_t workstations, double disk_scv) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = workstations;
  cfg.shapes.remote_disk = cluster::ServiceShape::from_scv(disk_scv);
  return cluster::build_cluster(cfg);
}

std::uint64_t colliding_hash(std::span<const std::uint8_t>) { return 42; }

TEST(CanonicalKeyTest, StructurallyEqualSpecsShareTheKey) {
  // Two independently built copies of the same cluster must encode to the
  // same bytes — the cache is content-addressed, not identity-addressed.
  const auto key_a = core::canonical_model_key(make_cluster(3, 4.0), 3);
  const auto key_b = core::canonical_model_key(make_cluster(3, 4.0), 3);
  EXPECT_EQ(key_a, key_b);
  EXPECT_EQ(core::model_fingerprint(key_a), core::model_fingerprint(key_b));
}

TEST(CanonicalKeyTest, DistinguishesShapePopulationAndOptions) {
  const auto base = core::canonical_model_key(make_cluster(3, 4.0), 3);
  // A different service shape is a different model.
  EXPECT_NE(base, core::canonical_model_key(make_cluster(3, 6.0), 3));
  // A different population bound changes the state space.
  EXPECT_NE(base, core::canonical_model_key(make_cluster(3, 4.0), 2));
  // Backend options shape the artifacts, so they are part of the key.
  core::SolverOptions iterative;
  iterative.dense_threshold = 0;
  EXPECT_NE(base,
            core::canonical_model_key(make_cluster(3, 4.0), 3, iterative));
  // Per-query recursion controls do NOT change the artifacts.
  core::SolverOptions no_ff;
  no_ff.fast_forward = false;
  EXPECT_EQ(base, core::canonical_model_key(make_cluster(3, 4.0), 3, no_ff));
}

TEST(CanonicalKeyTest, ExponentializedModelIsSharedAcrossScvSweep) {
  // The paper's prediction-error sweeps compare each C^2 against the
  // exponentialized cluster; that comparison model is the SAME for every
  // C^2 value, which is what makes the sweep cache-friendly.
  const auto exp_a =
      core::canonical_model_key(make_cluster(3, 4.0).exponentialized(), 3);
  const auto exp_b =
      core::canonical_model_key(make_cluster(3, 25.0).exponentialized(), 3);
  EXPECT_EQ(exp_a, exp_b);
}

TEST(ModelCacheTest, HitsReuseTheSameArtifacts) {
  core::ModelCache cache(4);
  const auto a = cache.acquire(make_cluster(3, 4.0), 3);
  const auto b = cache.acquire(make_cluster(3, 4.0), 3);
  EXPECT_EQ(a.get(), b.get());
  const core::ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.size, 1U);
}

TEST(ModelCacheTest, HashCollisionFallsBackToFullEquality) {
  // Every key hashes to the same bucket: distinct models must still come
  // back distinct (and correct), proving the cache compares full keys and
  // never serves on fingerprint alone.
  core::ModelCache cache(8, &colliding_hash);
  const auto erlang = cache.acquire(make_cluster(2, 0.5), 2);
  const auto hyper = cache.acquire(make_cluster(2, 10.0), 2);
  EXPECT_NE(erlang.get(), hyper.get());
  EXPECT_EQ(cache.stats().misses, 2U);
  EXPECT_EQ(cache.stats().hits, 0U);

  // Each colliding entry still resolves to its own model on re-acquire...
  EXPECT_EQ(cache.acquire(make_cluster(2, 0.5), 2).get(), erlang.get());
  EXPECT_EQ(cache.acquire(make_cluster(2, 10.0), 2).get(), hyper.get());
  EXPECT_EQ(cache.stats().hits, 2U);

  // ...and the models themselves are genuinely different.
  const core::TransientSolver se(erlang);
  const core::TransientSolver sh(hyper);
  EXPECT_NE(se.makespan(20), sh.makespan(20));
}

TEST(ModelCacheTest, LruEvictsTheColdestEntry) {
  core::ModelCache cache(2);
  const auto a = cache.acquire(make_cluster(2, 0.5), 2);
  (void)cache.acquire(make_cluster(2, 2.0), 2);
  // Touch A so B becomes the LRU entry, then insert C to push B out.
  (void)cache.acquire(make_cluster(2, 0.5), 2);
  (void)cache.acquire(make_cluster(2, 10.0), 2);
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_EQ(cache.stats().size, 2U);

  // A survived (hit); B was evicted (miss rebuilds it).
  const std::uint64_t misses_before = cache.stats().misses;
  EXPECT_EQ(cache.acquire(make_cluster(2, 0.5), 2).get(), a.get());
  EXPECT_EQ(cache.stats().misses, misses_before);
  (void)cache.acquire(make_cluster(2, 2.0), 2);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(ModelCacheTest, EvictedModelSurvivesForHolders) {
  core::ModelCache cache(1);
  const auto a = cache.acquire(make_cluster(2, 0.5), 2);
  (void)cache.acquire(make_cluster(2, 2.0), 2);  // evicts a's entry
  EXPECT_EQ(cache.stats().evictions, 1U);
  // The shared_ptr keeps the artifacts alive and usable.
  const core::TransientSolver solver(a);
  EXPECT_GT(solver.makespan(10), 0.0);
}

TEST(ModelCacheTest, SingleFlightDeduplicatesConcurrentBuilds) {
  core::ModelCache cache(4);
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const core::ModelArtifacts>> models(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &models, t] {
        models[t] = cache.acquire(make_cluster(3, 10.0), 3);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(models[t].get(), models[0].get());
  }
  const core::ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(ModelCacheTest, ClearDropsEntriesAndResetsStats) {
  core::ModelCache cache(4);
  (void)cache.acquire(make_cluster(2, 0.5), 2);
  (void)cache.acquire(make_cluster(2, 0.5), 2);
  cache.clear();
  const core::ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, 0U);
  EXPECT_EQ(stats.hits, 0U);
  EXPECT_EQ(stats.misses, 0U);
  // Re-acquire rebuilds.
  (void)cache.acquire(make_cluster(2, 0.5), 2);
  EXPECT_EQ(cache.stats().misses, 1U);
}

TEST(ModelCacheTest, SharedModelMatchesPrivatelyBuiltSolver) {
  const net::NetworkSpec spec = make_cluster(3, 10.0);
  const core::TransientSolver direct(spec, 3);
  core::ModelCache cache(4);
  const core::TransientSolver shared(cache.acquire(spec, 3));
  for (std::size_t n : {std::size_t{3}, std::size_t{30}, std::size_t{200}}) {
    EXPECT_NEAR(shared.makespan(n), direct.makespan(n),
                1e-10 * direct.makespan(n));
  }
  EXPECT_NEAR(shared.steady_state().interdeparture,
              direct.steady_state().interdeparture, 1e-12);
}

}  // namespace
