// Quasi-steady-state fast-forward: closing the saturated phase analytically
// must agree with the exact epoch-by-epoch recursion to high relative
// precision for every workload size, architecture and service shape — the
// optimisation is a short-cut, not an approximation knob.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "cluster/builders.h"
#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "obs/counters.h"

namespace {

using namespace finwork;

struct Config {
  const char* name;
  cluster::Architecture architecture;
  std::size_t workstations;
  cluster::ServiceShape remote_disk;
};

std::vector<Config> configs() {
  return {
      {"central-k5-erlang", cluster::Architecture::kCentral, 5,
       cluster::ServiceShape::from_scv(0.5)},
      {"central-k5-hyper", cluster::Architecture::kCentral, 5,
       cluster::ServiceShape::hyperexponential(10.0)},
      {"distributed-k3-erlang", cluster::Architecture::kDistributed, 3,
       cluster::ServiceShape::from_scv(0.5)},
      {"distributed-k4-hyper", cluster::Architecture::kDistributed, 4,
       cluster::ServiceShape::hyperexponential(10.0)},
  };
}

net::NetworkSpec make_spec(const Config& c) {
  cluster::ExperimentConfig cfg;
  cfg.architecture = c.architecture;
  cfg.workstations = c.workstations;
  cfg.shapes.remote_disk = c.remote_disk;
  return cluster::build_cluster(cfg);
}

double rel_diff(double a, double b) {
  return std::abs(a - b) / std::max(std::abs(b), 1e-300);
}

TEST(FastForwardTest, MakespanMatchesExactRecursion) {
  for (const Config& c : configs()) {
    SCOPED_TRACE(c.name);
    const net::NetworkSpec spec = make_spec(c);
    const core::TransientSolver on(spec, c.workstations);
    core::SolverOptions exact;
    exact.fast_forward = false;
    exact.cache_composite = false;  // the plain epoch-by-epoch reference
    const core::TransientSolver off(spec, c.workstations, exact);

    const std::size_t k = c.workstations;
    for (std::size_t n : {k, 2 * k, std::size_t{100}, std::size_t{5000}}) {
      SCOPED_TRACE("N=" + std::to_string(n));
      const double a = on.makespan(n);
      const double b = off.makespan(n);
      EXPECT_GT(b, 0.0);
      EXPECT_LE(rel_diff(a, b), 1e-8);
    }
  }
}

TEST(FastForwardTest, TimelineMatchesEpochByEpoch) {
  // Not just the total: every per-epoch mean must agree, including the
  // analytically closed block and the draining tail it hands into.
  const Config c = configs()[1];  // central K=5, hyperexponential
  const net::NetworkSpec spec = make_spec(c);
  const core::TransientSolver on(spec, c.workstations);
  core::SolverOptions exact;
  exact.fast_forward = false;
  exact.cache_composite = false;
  const core::TransientSolver off(spec, c.workstations, exact);

  const core::DepartureTimeline ta = on.solve(400);
  const core::DepartureTimeline tb = off.solve(400);
  ASSERT_EQ(ta.epoch_times.size(), tb.epoch_times.size());
  ASSERT_EQ(ta.population, tb.population);
  for (std::size_t i = 0; i < ta.epoch_times.size(); ++i) {
    EXPECT_LE(rel_diff(ta.epoch_times[i], tb.epoch_times[i]), 1e-8)
        << "epoch " << i;
  }
}

TEST(FastForwardTest, MomentsMatchExactRecursion) {
  for (const Config& c : configs()) {
    SCOPED_TRACE(c.name);
    const net::NetworkSpec spec = make_spec(c);
    const core::TransientSolver on(spec, c.workstations);
    core::SolverOptions exact;
    exact.fast_forward = false;
    exact.cache_composite = false;
    const core::TransientSolver off(spec, c.workstations, exact);

    const std::size_t k = c.workstations;
    for (std::size_t n : {k, 2 * k, std::size_t{100}, std::size_t{5000}}) {
      SCOPED_TRACE("N=" + std::to_string(n));
      const core::MakespanMoments a = on.makespan_moments(n);
      const core::MakespanMoments b = off.makespan_moments(n);
      EXPECT_LE(rel_diff(a.mean, b.mean), 1e-8);
      EXPECT_LE(rel_diff(a.second_moment, b.second_moment), 1e-8);
      // The variance differences two near-equal quantities; bound it by the
      // scale of the moments it came from rather than by itself.
      EXPECT_LE(std::abs(a.variance - b.variance),
                1e-7 * std::max(b.second_moment, 1.0));
    }
  }
}

TEST(FastForwardTest, ActivatesAndSkipsEpochsOnLongRuns) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const Config c = configs()[0];
  const net::NetworkSpec spec = make_spec(c);
  const core::TransientSolver solver(spec, c.workstations);
  obs::counters_reset();
  (void)solver.makespan(5000);
  EXPECT_GE(obs::counter_value(obs::Counter::kFastForwardActivations), 1u);
  // Mixing takes far fewer than 5000 epochs on this network; nearly all of
  // the saturated phase must be closed analytically.
  EXPECT_GE(obs::counter_value(obs::Counter::kEpochsSkipped), 4000u);
  const std::uint64_t live =
      obs::counter_value(obs::Counter::kEpochRecursions);
  EXPECT_LT(live, 1000u);

  // Turned off, every epoch runs.
  core::SolverOptions exact;
  exact.fast_forward = false;
  const core::TransientSolver off(spec, c.workstations, exact);
  obs::counters_reset();
  (void)off.makespan(5000);
  EXPECT_EQ(obs::counter_value(obs::Counter::kFastForwardActivations), 0u);
  EXPECT_EQ(obs::counter_value(obs::Counter::kEpochsSkipped), 0u);
  EXPECT_GE(obs::counter_value(obs::Counter::kEpochRecursions), 5000u);
}

TEST(FastForwardTest, CompositeOperatorMatchesUncachedPath) {
  // The cached dense composite T = (I-P)^-1 Q R must reproduce the
  // uncached sparse path; force the amortisation gate open with a long run
  // and compare against a solver with caching disabled.
  const Config c = configs()[3];  // distributed K=4
  const net::NetworkSpec spec = make_spec(c);
  core::SolverOptions cached;  // defaults: composite on
  cached.fast_forward = false;
  const core::TransientSolver with(spec, c.workstations, cached);
  core::SolverOptions uncached;
  uncached.fast_forward = false;
  uncached.cache_composite = false;
  const core::TransientSolver without(spec, c.workstations, uncached);

  const std::size_t n = 1000;  // > max(D(4), composite_min_epochs)
  EXPECT_LE(rel_diff(with.makespan(n), without.makespan(n)), 1e-9);
  const core::MakespanMoments a = with.makespan_moments(n);
  const core::MakespanMoments b = without.makespan_moments(n);
  EXPECT_LE(rel_diff(a.mean, b.mean), 1e-9);
  EXPECT_LE(rel_diff(a.second_moment, b.second_moment), 1e-9);

  if (obs::kEnabled) {
    obs::counters_reset();
    (void)with.makespan(n);
    EXPECT_GE(obs::counter_value(obs::Counter::kMultiRhsSolves), 0u);
  }
}

}  // namespace
