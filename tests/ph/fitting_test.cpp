// Tests for the moment-matching fits: balanced H2, fixed-p H2, f(0) H2,
// mixed Erlang, scv dispatch, truncated power tail.

#include "ph/fitting.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ph = finwork::ph;

TEST(H2Balanced, MatchesMeanAndScv) {
  for (double scv : {1.5, 2.0, 10.0, 50.0, 100.0}) {
    const ph::PhaseType h = ph::hyperexponential_balanced(3.0, scv);
    EXPECT_NEAR(h.mean(), 3.0, 1e-10) << scv;
    EXPECT_NEAR(h.scv(), scv, 1e-8) << scv;
  }
}

TEST(H2Balanced, BalancedMeansProperty) {
  const ph::PhaseType h = ph::hyperexponential_balanced(2.0, 10.0);
  // p1/mu1 == p2/mu2
  const double r1 = h.entry()[0] / h.rate_matrix()(0, 0);
  const double r2 = h.entry()[1] / h.rate_matrix()(1, 1);
  EXPECT_NEAR(r1, r2, 1e-12);
}

TEST(H2Balanced, ScvOneDegeneratesToExponential) {
  const ph::PhaseType h = ph::hyperexponential_balanced(5.0, 1.0);
  EXPECT_EQ(h.phases(), 1u);
  EXPECT_NEAR(h.mean(), 5.0, 1e-12);
}

TEST(H2Balanced, RejectsScvBelowOne) {
  EXPECT_THROW((void)ph::hyperexponential_balanced(1.0, 0.5), std::domain_error);
  EXPECT_THROW((void)ph::hyperexponential_balanced(-1.0, 2.0),
               std::invalid_argument);
}

TEST(H2FixedP, MatchesMeanAndScv) {
  // Feasibility requires scv + 1 < 2 / min(p1, p2); pick pairs inside it.
  const std::pair<double, double> cases[] = {
      {0.2, 6.0}, {0.5, 2.5}, {0.8, 6.0}, {0.1, 15.0}};
  for (const auto& [p1, scv] : cases) {
    const ph::PhaseType h = ph::hyperexponential_fixed_p(4.0, scv, p1);
    EXPECT_NEAR(h.mean(), 4.0, 1e-9) << p1;
    EXPECT_NEAR(h.scv(), scv, 1e-7) << p1;
    EXPECT_NEAR(h.entry()[0], p1, 1e-12) << p1;
  }
}

TEST(H2FixedP, InfeasibleScvForBalancedProbabilitiesThrows) {
  // p1 = 0.5 caps the attainable scv at 3 (one branch degenerate).
  EXPECT_THROW((void)ph::hyperexponential_fixed_p(4.0, 6.0, 0.5),
               std::domain_error);
}

TEST(H2FixedP, GuardsParameters) {
  EXPECT_THROW((void)ph::hyperexponential_fixed_p(1.0, 2.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)ph::hyperexponential_fixed_p(1.0, 2.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)ph::hyperexponential_fixed_p(1.0, 0.9, 0.5),
               std::domain_error);
  EXPECT_THROW((void)ph::hyperexponential_fixed_p(0.0, 2.0, 0.5),
               std::invalid_argument);
}

TEST(H2F0, MatchesRequestedDensityAtZero) {
  const double mean = 2.0, scv = 8.0;
  // The balanced fit's f(0) is attainable by construction; perturb mildly.
  const ph::PhaseType b = ph::hyperexponential_balanced(mean, scv);
  const double f0 = b.pdf(0.0) * 1.05;
  const ph::PhaseType h = ph::hyperexponential_f0(mean, scv, f0);
  EXPECT_NEAR(h.mean(), mean, 1e-8);
  EXPECT_NEAR(h.scv(), scv, 1e-6);
  EXPECT_NEAR(h.pdf(0.0), f0, 1e-6);
}

TEST(H2F0, UnattainableThrows) {
  EXPECT_THROW((void)ph::hyperexponential_f0(1.0, 4.0, 1e9), std::domain_error);
  EXPECT_THROW((void)ph::hyperexponential_f0(1.0, 4.0, -1.0),
               std::invalid_argument);
}

TEST(ErlangMixture, PureErlangWhenScvIsReciprocalInteger) {
  const ph::PhaseType e = ph::erlang_mixture(6.0, 1.0 / 3.0);
  EXPECT_EQ(e.phases(), 3u);
  EXPECT_NEAR(e.mean(), 6.0, 1e-10);
  EXPECT_NEAR(e.scv(), 1.0 / 3.0, 1e-9);
}

TEST(ErlangMixture, MatchesIntermediateScv) {
  for (double scv : {0.9, 0.7, 0.42, 0.15}) {
    const ph::PhaseType e = ph::erlang_mixture(2.5, scv);
    EXPECT_NEAR(e.mean(), 2.5, 1e-9) << scv;
    EXPECT_NEAR(e.scv(), scv, 1e-7) << scv;
  }
}

TEST(ErlangMixture, ScvOneIsExponential) {
  EXPECT_EQ(ph::erlang_mixture(1.0, 1.0).phases(), 1u);
}

TEST(ErlangMixture, Guards) {
  EXPECT_THROW((void)ph::erlang_mixture(1.0, 0.0), std::domain_error);
  EXPECT_THROW((void)ph::erlang_mixture(1.0, 1.5), std::domain_error);
  EXPECT_THROW((void)ph::erlang_mixture(0.0, 0.5), std::invalid_argument);
}

TEST(FitScv, DispatchesAcrossFullRange) {
  for (double scv : {0.1, 0.33, 0.5, 1.0, 2.0, 10.0, 50.0}) {
    const ph::PhaseType d = ph::fit_scv(7.0, scv);
    EXPECT_NEAR(d.mean(), 7.0, 1e-8) << scv;
    EXPECT_NEAR(d.scv(), scv, 1e-6) << scv;
  }
  EXPECT_THROW((void)ph::fit_scv(1.0, 0.0), std::domain_error);
}

TEST(PowerTail, MeanNormalization) {
  const ph::PhaseType t = ph::truncated_power_tail(8, 1.4, 5.0);
  EXPECT_NEAR(t.mean(), 5.0, 1e-9);
  EXPECT_EQ(t.phases(), 8u);
}

TEST(PowerTail, HeavierTailThanExponential) {
  const ph::PhaseType t = ph::truncated_power_tail(10, 1.4, 1.0);
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  // Far in the tail the TPT reliability dominates the exponential's.
  EXPECT_GT(t.reliability(20.0), 10.0 * e.reliability(20.0));
}

TEST(PowerTail, ScvGrowsWithLevels) {
  const double s4 = ph::truncated_power_tail(4, 1.4, 1.0).scv();
  const double s8 = ph::truncated_power_tail(8, 1.4, 1.0).scv();
  const double s12 = ph::truncated_power_tail(12, 1.4, 1.0).scv();
  EXPECT_LT(s4, s8);
  EXPECT_LT(s8, s12);  // alpha < 2: variance diverges as M -> infinity
}

TEST(PowerTail, Guards) {
  EXPECT_THROW((void)ph::truncated_power_tail(0, 1.4, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ph::truncated_power_tail(4, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ph::truncated_power_tail(4, 1.4, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)ph::truncated_power_tail(4, 1.4, 0.0), std::invalid_argument);
}

// Property sweep: every fit in the paper's C^2 grid reproduces (mean, scv).
class FitSweep : public ::testing::TestWithParam<double> {};

TEST_P(FitSweep, MeanAndScvReproduced) {
  const double scv = GetParam();
  const double mean = 0.64;  // the default remote-disk service time scale
  const ph::PhaseType d = ph::fit_scv(mean, scv);
  EXPECT_NEAR(d.mean(), mean, 1e-9);
  EXPECT_NEAR(d.scv(), scv, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, FitSweep,
                         ::testing::Values(1.0 / 3.0, 0.5, 1.0, 2.0, 5.0, 10.0,
                                           20.0, 30.0, 40.0, 50.0, 60.0, 70.0,
                                           80.0, 90.0, 100.0));
