// Tests for the xoshiro256++ generator and variate transforms.

#include "ph/rng.h"

#include <gtest/gtest.h>

#include <set>

#include "stats/online_stats.h"

namespace rng = finwork::rng;

TEST(Rng, DeterministicForSameSeed) {
  rng::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  const rng::Xoshiro256 root(42);
  rng::Xoshiro256 c0 = root.split(0);
  rng::Xoshiro256 c0_again = root.split(0);
  EXPECT_EQ(c0(), c0_again());
  // Streams 0 and 1 should diverge immediately.
  rng::Xoshiro256 d0 = root.split(0);
  rng::Xoshiro256 d1 = root.split(1);
  EXPECT_NE(d0(), d1());
}

TEST(Rng, Uniform01InRange) {
  rng::Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng::uniform01(g);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenLowNeverZero) {
  rng::Xoshiro256 g(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng::uniform01_open_low(g), 0.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  rng::Xoshiro256 g(11);
  finwork::stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng::uniform01(g));
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  rng::Xoshiro256 g(13);
  finwork::stats::OnlineStats s;
  const double rate = 2.5;
  for (int i = 0; i < 200000; ++i) s.add(rng::exponential(g, rate));
  EXPECT_NEAR(s.mean(), 1.0 / rate, 0.01);
  // Exponential has C^2 = 1.
  EXPECT_NEAR(s.variance() / (s.mean() * s.mean()), 1.0, 0.05);
}

TEST(Rng, UniformIndexCoversRange) {
  rng::Xoshiro256 g(17);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng::uniform_index(g, 5);
    EXPECT_LT(idx, 5u);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Splitmix64KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = rng::splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(first, rng::splitmix64(state2));
  EXPECT_NE(rng::splitmix64(state), first);  // state advanced
}
