// Statistical tests for exact PH sampling: empirical moments and empirical
// CDF must match the analytic ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ph/fitting.h"
#include "ph/phase_type.h"
#include "ph/rng.h"
#include "stats/online_stats.h"

namespace ph = finwork::ph;
namespace rng = finwork::rng;

namespace {

finwork::stats::OnlineStats sample_stats(const ph::PhaseType& dist,
                                         std::size_t n, std::uint64_t seed) {
  rng::Xoshiro256 g(seed);
  finwork::stats::OnlineStats s;
  for (std::size_t i = 0; i < n; ++i) s.add(dist.sample(g));
  return s;
}

}  // namespace

TEST(Sampling, ExponentialMean) {
  const ph::PhaseType e = ph::PhaseType::exponential(0.5);
  const auto s = sample_stats(e, 100000, 1);
  EXPECT_NEAR(s.mean(), 2.0, 4.0 * s.std_error() + 1e-9);
}

TEST(Sampling, ErlangMeanAndVariance) {
  const ph::PhaseType e = ph::PhaseType::erlang(4, 2.0);
  const auto s = sample_stats(e, 100000, 2);
  EXPECT_NEAR(s.mean(), 2.0, 0.02);
  EXPECT_NEAR(s.variance(), e.variance(), 0.05 * e.variance() + 0.01);
}

TEST(Sampling, HyperexponentialHighVariance) {
  const ph::PhaseType h = ph::hyperexponential_balanced(1.0, 10.0);
  const auto s = sample_stats(h, 400000, 3);
  EXPECT_NEAR(s.mean(), 1.0, 0.03);
  const double scv = s.variance() / (s.mean() * s.mean());
  EXPECT_NEAR(scv, 10.0, 1.0);
}

TEST(Sampling, SamplesAreNonNegative) {
  const ph::PhaseType h = ph::hyperexponential_balanced(1.0, 25.0);
  rng::Xoshiro256 g(4);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(h.sample(g), 0.0);
}

TEST(Sampling, EmpiricalCdfMatchesAnalytic) {
  const ph::PhaseType e = ph::PhaseType::erlang(3, 1.0);
  rng::Xoshiro256 g(5);
  const std::size_t n = 100000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = e.sample(g);
  std::sort(xs.begin(), xs.end());
  // Kolmogorov-Smirnov-style check at a few quantiles.
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double xq = xs[static_cast<std::size_t>(p * (n - 1))];
    EXPECT_NEAR(e.cdf(xq), p, 0.01) << "quantile " << p;
  }
}

TEST(Sampling, EntryPhaseFollowsEntranceVector) {
  const ph::PhaseType h =
      ph::PhaseType::hyperexponential({0.2, 0.8}, {1.0, 2.0});
  rng::Xoshiro256 g(6);
  std::size_t first = 0;
  const std::size_t n = 100000;
  for (std::size_t i = 0; i < n; ++i) {
    if (h.sample_entry_phase(g) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / static_cast<double>(n), 0.2, 0.01);
}

TEST(Sampling, NextPhaseRespectsJumpProbabilities) {
  // Erlang-2: from phase 0 always to phase 1, from phase 1 always exit.
  const ph::PhaseType e = ph::PhaseType::erlang(2, 1.0);
  rng::Xoshiro256 g(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(e.sample_next_phase(g, 0), 1u);
    EXPECT_EQ(e.sample_next_phase(g, 1), 2u);  // phases() == exit marker
  }
}

TEST(Sampling, DeterministicGivenSeed) {
  const ph::PhaseType h = ph::hyperexponential_balanced(1.0, 5.0);
  rng::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(h.sample(a), h.sample(b));
  }
}

TEST(Sampling, PowerTailProducesExtremeValues) {
  const ph::PhaseType t = ph::truncated_power_tail(10, 1.2, 1.0);
  rng::Xoshiro256 g(8);
  double biggest = 0.0;
  for (int i = 0; i < 200000; ++i) biggest = std::max(biggest, t.sample(g));
  // With alpha = 1.2 and 200k draws the max should dwarf the mean.
  EXPECT_GT(biggest, 50.0);
}

// Property: empirical first two moments match analytic for every family.
class MomentAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MomentAgreement, FirstTwoMoments) {
  const ph::PhaseType dist = [&] {
    switch (GetParam()) {
      case 0: return ph::PhaseType::exponential(1.0);
      case 1: return ph::PhaseType::erlang(5, 3.0);
      case 2: return ph::hyperexponential_balanced(2.0, 4.0);
      case 3: return ph::erlang_mixture(1.5, 0.4);
      default: return ph::truncated_power_tail(6, 2.5, 1.0);
    }
  }();
  const auto s = sample_stats(dist, 300000, 100 + GetParam());
  EXPECT_NEAR(s.mean(), dist.mean(), 5.0 * s.std_error() + 1e-6);
  EXPECT_NEAR(s.variance(), dist.variance(),
              0.1 * dist.variance() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Families, MomentAgreement, ::testing::Range(0, 5));
