// Tests for PH closure operations: convolution, mixture, minimum, maximum.

#include "ph/algebra.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pf/order_statistics.h"
#include "ph/fitting.h"

namespace ph = finwork::ph;
namespace pf = finwork::pf;

TEST(PhAlgebra, ConvolveMeansAdd) {
  const ph::PhaseType a = ph::PhaseType::exponential(2.0);
  const ph::PhaseType b = ph::PhaseType::erlang(3, 1.5);
  const ph::PhaseType c = ph::convolve(a, b);
  EXPECT_EQ(c.phases(), 4u);
  EXPECT_NEAR(c.mean(), a.mean() + b.mean(), 1e-10);
  // Variances of independent summands add.
  EXPECT_NEAR(c.variance(), a.variance() + b.variance(), 1e-10);
}

TEST(PhAlgebra, ConvolveExponentialsIsErlang) {
  const ph::PhaseType e = ph::PhaseType::exponential(3.0);
  const ph::PhaseType sum = ph::convolve(e, e);
  const ph::PhaseType erl = ph::PhaseType::erlang(2, 2.0 / 3.0);
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(sum.pdf(t), erl.pdf(t), 1e-9) << t;
  }
}

TEST(PhAlgebra, NFoldSumMatchesErlang) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  const ph::PhaseType s5 = ph::n_fold_sum(e, 5);
  EXPECT_EQ(s5.phases(), 5u);
  EXPECT_NEAR(s5.mean(), 5.0, 1e-9);
  EXPECT_NEAR(s5.scv(), 0.2, 1e-9);
  EXPECT_THROW((void)ph::n_fold_sum(e, 0), std::invalid_argument);
}

TEST(PhAlgebra, MixtureOfExponentialsIsHyperexponential) {
  const ph::PhaseType a = ph::PhaseType::exponential(1.0);
  const ph::PhaseType b = ph::PhaseType::exponential(4.0);
  const ph::PhaseType mix = ph::mixture(0.3, a, b);
  const ph::PhaseType h2 = ph::PhaseType::hyperexponential({0.3, 0.7},
                                                           {1.0, 4.0});
  EXPECT_NEAR(mix.mean(), h2.mean(), 1e-12);
  for (double t : {0.2, 1.0, 3.0}) EXPECT_NEAR(mix.pdf(t), h2.pdf(t), 1e-10);
}

TEST(PhAlgebra, MixtureWeightBounds) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  EXPECT_THROW((void)ph::mixture(-0.1, e, e), std::invalid_argument);
  EXPECT_THROW((void)ph::mixture(1.1, e, e), std::invalid_argument);
  // Degenerate weights still behave.
  EXPECT_NEAR(ph::mixture(1.0, e, ph::PhaseType::exponential(9.0)).mean(),
              1.0, 1e-12);
}

TEST(PhAlgebra, MinimumOfExponentialsIsExponential) {
  const ph::PhaseType a = ph::PhaseType::exponential(2.0);
  const ph::PhaseType b = ph::PhaseType::exponential(3.0);
  const ph::PhaseType mn = ph::minimum(a, b);
  EXPECT_NEAR(mn.mean(), 1.0 / 5.0, 1e-12);
  for (double t : {0.1, 0.4, 1.0}) {
    EXPECT_NEAR(mn.reliability(t), std::exp(-5.0 * t), 1e-10) << t;
  }
}

TEST(PhAlgebra, MaximumOfExponentialsClosedForm) {
  // E[max(Exp(a), Exp(b))] = 1/a + 1/b - 1/(a+b).
  const ph::PhaseType a = ph::PhaseType::exponential(1.0);
  const ph::PhaseType b = ph::PhaseType::exponential(2.5);
  const ph::PhaseType mx = ph::maximum(a, b);
  EXPECT_NEAR(mx.mean(), 1.0 + 0.4 - 1.0 / 3.5, 1e-10);
  EXPECT_EQ(mx.phases(), 1u + 1u + 1u);
}

TEST(PhAlgebra, MinMaxComplementarity) {
  // E[min] + E[max] = E[X] + E[Y] for any independent pair.
  const ph::PhaseType x = ph::PhaseType::erlang(2, 1.0);
  const ph::PhaseType y = ph::hyperexponential_balanced(1.5, 5.0);
  EXPECT_NEAR(ph::minimum(x, y).mean() + ph::maximum(x, y).mean(),
              x.mean() + y.mean(), 1e-9);
}

TEST(PhAlgebra, MaximumReliabilityIsProductOfCdfsComplement) {
  // F_max(t) = F_x(t) F_y(t).
  const ph::PhaseType x = ph::PhaseType::erlang(2, 1.0);
  const ph::PhaseType y = ph::PhaseType::exponential(0.8);
  const ph::PhaseType mx = ph::maximum(x, y);
  for (double t : {0.3, 1.0, 2.5}) {
    EXPECT_NEAR(mx.cdf(t), x.cdf(t) * y.cdf(t), 1e-9) << t;
  }
}

TEST(PhAlgebra, MinimumReliabilityIsProductOfReliabilities) {
  const ph::PhaseType x = ph::PhaseType::erlang(3, 2.0);
  const ph::PhaseType y = ph::hyperexponential_balanced(1.0, 4.0);
  const ph::PhaseType mn = ph::minimum(x, y);
  for (double t : {0.3, 1.0, 2.5}) {
    EXPECT_NEAR(mn.reliability(t), x.reliability(t) * y.reliability(t), 1e-9)
        << t;
  }
}

TEST(PhAlgebra, NFoldMaximumMatchesOrderStatisticsQuadrature) {
  // The exact PH construction of max of n iid must agree with the
  // numerical-integration estimate used by the fork/join module.
  const ph::PhaseType e = ph::PhaseType::erlang(2, 1.0);
  for (std::size_t n : {2u, 3u, 4u}) {
    const double exact = ph::n_fold_maximum(e, n).mean();
    const double quad = pf::expected_maximum(e, n);
    EXPECT_NEAR(exact, quad, 1e-5) << n;
  }
  EXPECT_THROW((void)ph::n_fold_maximum(e, 0), std::invalid_argument);
}

TEST(PhAlgebra, ComposedTaskModel) {
  // A realistic composition: setup (Erlang-2) then with prob 0.3 a slow
  // branch, all followed by a cleanup; sanity on mean via linearity.
  const ph::PhaseType setup = ph::PhaseType::erlang(2, 0.5);
  const ph::PhaseType fast = ph::PhaseType::exponential(4.0);
  const ph::PhaseType slow = ph::PhaseType::exponential(0.5);
  const ph::PhaseType work = ph::mixture(0.7, fast, slow);
  const ph::PhaseType cleanup = ph::PhaseType::exponential(10.0);
  const ph::PhaseType task = ph::convolve(ph::convolve(setup, work), cleanup);
  EXPECT_NEAR(task.mean(), 0.5 + 0.7 * 0.25 + 0.3 * 2.0 + 0.1, 1e-9);
  EXPECT_EQ(task.phases(), 2u + 2u + 1u);
}
