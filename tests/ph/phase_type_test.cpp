// Tests for the PhaseType <p, B> representation: moments, density,
// reliability, embedding pieces.

#include "ph/phase_type.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ph = finwork::ph;
namespace la = finwork::la;

TEST(PhaseType, ExponentialBasics) {
  const ph::PhaseType e = ph::PhaseType::exponential(2.0);
  EXPECT_EQ(e.phases(), 1u);
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
  EXPECT_NEAR(e.scv(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.phase_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(e.exit_probability(0), 1.0);
}

TEST(PhaseType, ExponentialMomentsClosedForm) {
  const double rate = 3.0;
  const ph::PhaseType e = ph::PhaseType::exponential(rate);
  // E[T^n] = n! / rate^n
  double factorial = 1.0;
  for (std::size_t n = 1; n <= 5; ++n) {
    factorial *= static_cast<double>(n);
    EXPECT_NEAR(e.moment(n), factorial / std::pow(rate, n), 1e-10)
        << "n = " << n;
  }
}

TEST(PhaseType, ExponentialPdfCdf) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.5);
  for (double t : {0.1, 0.7, 2.0}) {
    EXPECT_NEAR(e.pdf(t), 1.5 * std::exp(-1.5 * t), 1e-10);
    EXPECT_NEAR(e.cdf(t), 1.0 - std::exp(-1.5 * t), 1e-10);
    EXPECT_NEAR(e.reliability(t), std::exp(-1.5 * t), 1e-10);
  }
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.reliability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.pdf(-1.0), 0.0);
}

TEST(PhaseType, ErlangMeanAndScv) {
  for (std::size_t m : {1u, 2u, 3u, 5u, 10u}) {
    const ph::PhaseType e = ph::PhaseType::erlang(m, 4.0);
    EXPECT_EQ(e.phases(), m);
    EXPECT_NEAR(e.mean(), 4.0, 1e-12);
    EXPECT_NEAR(e.scv(), 1.0 / static_cast<double>(m), 1e-10);
  }
}

TEST(PhaseType, Erlang1IsExponential) {
  const ph::PhaseType e1 = ph::PhaseType::erlang(1, 2.0);
  const ph::PhaseType ex = ph::PhaseType::exponential(0.5);
  EXPECT_NEAR(e1.mean(), ex.mean(), 1e-14);
  for (double t : {0.2, 1.0, 5.0}) {
    EXPECT_NEAR(e1.pdf(t), ex.pdf(t), 1e-11);
  }
}

TEST(PhaseType, ErlangPdfClosedForm) {
  // Erlang-2 with rate 2 per stage (mean 1): f(t) = 4 t e^{-2t}.
  const ph::PhaseType e = ph::PhaseType::erlang(2, 1.0);
  for (double t : {0.1, 0.5, 1.5, 3.0}) {
    EXPECT_NEAR(e.pdf(t), 4.0 * t * std::exp(-2.0 * t), 1e-9) << t;
  }
}

TEST(PhaseType, HyperexponentialMeanAndMoments) {
  const ph::PhaseType h =
      ph::PhaseType::hyperexponential({0.25, 0.75}, {1.0, 3.0});
  EXPECT_NEAR(h.mean(), 0.25 / 1.0 + 0.75 / 3.0, 1e-12);
  EXPECT_NEAR(h.moment(2), 2.0 * (0.25 / 1.0 + 0.75 / 9.0), 1e-12);
}

TEST(PhaseType, HyperexponentialPdfClosedForm) {
  const ph::PhaseType h =
      ph::PhaseType::hyperexponential({0.4, 0.6}, {2.0, 0.5});
  for (double t : {0.1, 1.0, 4.0}) {
    const double expected =
        0.4 * 2.0 * std::exp(-2.0 * t) + 0.6 * 0.5 * std::exp(-0.5 * t);
    EXPECT_NEAR(h.pdf(t), expected, 1e-10) << t;
  }
}

TEST(PhaseType, CdfIsMonotoneAndNormalized) {
  const ph::PhaseType h =
      ph::PhaseType::hyperexponential({0.1, 0.9}, {0.2, 5.0});
  double prev = 0.0;
  for (double t = 0.0; t < 40.0; t += 0.5) {
    const double c = h.cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(200.0), 1.0, 1e-8);
}

TEST(PhaseType, WithMeanRescalesPreservingShape) {
  const ph::PhaseType e = ph::PhaseType::erlang(3, 2.0);
  const ph::PhaseType scaled = e.with_mean(10.0);
  EXPECT_NEAR(scaled.mean(), 10.0, 1e-10);
  EXPECT_NEAR(scaled.scv(), e.scv(), 1e-10);
  EXPECT_EQ(scaled.phases(), e.phases());
}

TEST(PhaseType, PsiOfIdentityIsOne) {
  const ph::PhaseType e = ph::PhaseType::erlang(4, 1.0);
  EXPECT_NEAR(e.psi(la::identity(4)), 1.0, 1e-14);
}

TEST(PhaseType, PsiDimensionMismatchThrows) {
  const ph::PhaseType e = ph::PhaseType::exponential(1.0);
  EXPECT_THROW((void)e.psi(la::identity(2)), std::invalid_argument);
}

TEST(PhaseType, EmbeddingPiecesOfErlang) {
  const ph::PhaseType e = ph::PhaseType::erlang(3, 3.0);  // stage rate 1
  EXPECT_DOUBLE_EQ(e.phase_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(e.jump_probability(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(e.jump_probability(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(e.exit_probability(0), 0.0);
  EXPECT_DOUBLE_EQ(e.exit_probability(2), 1.0);
}

TEST(PhaseType, ValidationRejectsBadInputs) {
  // entrance not summing to one
  EXPECT_THROW((void)ph::PhaseType(la::Vector{0.5}, la::Matrix{{1.0}}),
               std::invalid_argument);
  // negative entrance
  EXPECT_THROW((void)ph::PhaseType(la::Vector{-0.5, 1.5}, la::identity(2)),
      std::invalid_argument);
  // non-positive diagonal
  EXPECT_THROW((void)ph::PhaseType(la::Vector{1.0}, la::Matrix{{0.0}}),
      std::invalid_argument);
  // positive off-diagonal in B (not a sub-generator)
  EXPECT_THROW((void)ph::PhaseType(la::Vector{1.0, 0.0}, la::Matrix{{1.0, 0.5}, {0.0, 1.0}}),
      std::invalid_argument);
  // dimension mismatch
  EXPECT_THROW((void)ph::PhaseType(la::Vector{1.0}, la::identity(2)),
               std::invalid_argument);
  // empty
  EXPECT_THROW((void)ph::PhaseType(la::Vector{}, la::Matrix{}),
               std::invalid_argument);
}

TEST(PhaseType, ConstructorGuardsBadRates) {
  EXPECT_THROW((void)ph::PhaseType::exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)ph::PhaseType::exponential(-1.0), std::invalid_argument);
  EXPECT_THROW((void)ph::PhaseType::erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ph::PhaseType::erlang(2, -1.0), std::invalid_argument);
  EXPECT_THROW((void)ph::PhaseType::hyperexponential({1.0}, {0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)ph::PhaseType::hyperexponential({0.5, 0.5}, {1.0}),
               std::invalid_argument);
}

TEST(PhaseType, MomentZeroIsOne) {
  EXPECT_DOUBLE_EQ(ph::PhaseType::exponential(2.0).moment(0), 1.0);
}

// Property: for any PH here, pdf integrates (by trapezoid) to ~cdf.
class PhDensityConsistency : public ::testing::TestWithParam<int> {};

TEST_P(PhDensityConsistency, PdfIntegratesToCdf) {
  ph::PhaseType dist = [&] {
    switch (GetParam()) {
      case 0: return ph::PhaseType::exponential(1.0);
      case 1: return ph::PhaseType::erlang(4, 2.0);
      case 2:
        return ph::PhaseType::hyperexponential({0.3, 0.7}, {0.5, 4.0});
      default:
        return ph::PhaseType::erlang(2, 0.5);
    }
  }();
  const double upto = 3.0 * dist.mean();
  const int steps = 4000;
  const double h = upto / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double t0 = i * h;
    integral += 0.5 * h * (dist.pdf(t0) + dist.pdf(t0 + h));
  }
  EXPECT_NEAR(integral, dist.cdf(upto), 2e-5);
}

INSTANTIATE_TEST_SUITE_P(Distributions, PhDensityConsistency,
                         ::testing::Range(0, 4));
