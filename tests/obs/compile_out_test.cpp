// Compile-out guarantees of the observability layer.
//
// This TU forces FINWORK_OBSERVABILITY=0 before including the obs headers
// (the rest of the test binary, including the linked library, is built with
// the layer on), so it sees exactly what an OFF build sees: `kEnabled` is
// false and ObsSpan is the stateless empty specialization.  It also checks
// that the hot-path headers instrumented by this layer do not include obs
// headers themselves — the instrumentation lives in .cpp files only.

// Hot headers first, before any obs include: if one of them dragged the
// obs layer in, the marker below would already be defined.
#include "core/transient_solver.h"
#include "linalg/lu.h"
#include "network/state_space.h"
#include "parallel/thread_pool.h"

#ifdef FINWORK_OBS_CONFIG_INCLUDED
#error "a hot-path header includes the obs layer; keep obs out of headers"
#endif

// Now simulate an OFF build for the obs headers in this TU only.
#undef FINWORK_OBSERVABILITY
#define FINWORK_OBSERVABILITY 0
#include "obs/counters.h"
#include "obs/sink.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <type_traits>

namespace {

using namespace finwork;

static_assert(!obs::kEnabled,
              "FINWORK_OBSERVABILITY=0 must disable the layer");
static_assert(std::is_same_v<obs::ObsSpan, obs::BasicSpan<false>>,
              "disabled builds must select the empty span");
static_assert(std::is_empty_v<obs::ObsSpan>,
              "the disabled span must carry no state");
static_assert(sizeof(obs::ObsSpan) == 1,
              "the disabled span must occupy no real storage");
static_assert(std::is_nothrow_constructible_v<obs::ObsSpan, const char*>,
              "the disabled span must be nothrow-constructible");

// The recording wrappers must still be declared and callable (they expand
// to nothing); the read-side API stays fully live so exporters link.
TEST(ObsCompileOutTest, DisabledSpanRecordsNothing) {
  obs::trace_reset();
  {
    const obs::BasicSpan<false> span("test/disabled");
    (void)span;
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
  EXPECT_TRUE(obs::trace_summary().empty());
}

TEST(ObsCompileOutTest, ReadSideApiStaysLiveWhenDisabled) {
  obs::counters_reset();
  obs::events_reset();
  EXPECT_EQ(obs::counter_value(obs::Counter::kInvariantViolations), 0u);
  EXPECT_EQ(obs::gauge_value(obs::Gauge::kMaxQueueDepth), 0u);
  EXPECT_EQ(obs::counters_snapshot().size(),
            static_cast<std::size_t>(obs::Counter::kCount) +
                static_cast<std::size_t>(obs::Gauge::kCount));
  EXPECT_TRUE(obs::events_snapshot().empty());
  EXPECT_EQ(obs::counter_name(obs::Counter::kLuReuseHits),
            "solver.lu_reuse_hits");
}

}  // namespace
