// JSON well-formedness of the obs exporters: the Chrome trace export and
// the perf record must parse with the repo's own JSON parser (src/io/json),
// including names that need escaping.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "io/json.h"
#include "obs/counters.h"
#include "obs/perf_record.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace {

using namespace finwork;

class ObsJsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
    obs::trace_reset();
    obs::events_reset();
    obs::counters_reset();
  }
};

std::vector<std::string> event_names(const io::JsonValue& doc) {
  std::vector<std::string> names;
  for (const io::JsonValue& ev : doc.at("traceEvents").as_array()) {
    names.push_back(ev.at("name").as_string());
  }
  return names;
}

TEST_F(ObsJsonTest, ChromeTraceParsesAndContainsSpans) {
  {
    const obs::ObsSpan outer("test/outer");
    const obs::ObsSpan inner("test/inner");
  }
  std::ostringstream out;
  obs::write_chrome_trace(out);

  const io::JsonValue doc = io::JsonValue::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  const auto names = event_names(doc);
  EXPECT_NE(std::find(names.begin(), names.end(), "test/outer"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test/inner"), names.end());

  for (const io::JsonValue& ev : doc.at("traceEvents").as_array()) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_EQ(ev.at("cat").as_string(), "finwork");
    EXPECT_GE(ev.at("ts").as_number(), 0.0);
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    EXPECT_GE(ev.at("tid").as_number(), 1.0);
  }
}

TEST_F(ObsJsonTest, EmptyTraceIsStillValidJson) {
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const io::JsonValue doc = io::JsonValue::parse(out.str());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST_F(ObsJsonTest, StructuredEventEscapingSurvivesRoundTrip) {
  const std::string nasty = "quote\" back\\slash\nnewline\ttab";
  obs::emit_event("invariant-violation/finite", nasty, 3, 7, nasty);

  std::ostringstream out;
  obs::write_chrome_trace(out);
  const io::JsonValue doc = io::JsonValue::parse(out.str());

  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const io::JsonValue& ev = events.front();
  EXPECT_EQ(ev.at("ph").as_string(), "i");
  EXPECT_EQ(ev.at("name").as_string(), "invariant-violation/finite");
  const io::JsonValue& args = ev.at("args");
  EXPECT_EQ(args.at("object").as_string(), nasty);
  EXPECT_EQ(args.at("detail").as_string(), nasty);
  EXPECT_EQ(args.at("level").as_number(), 3.0);
  EXPECT_EQ(args.at("row").as_number(), 7.0);
}

TEST_F(ObsJsonTest, PerfRecordParsesWithExpectedSchema) {
  {
    const obs::ObsSpan span("test/perf_phase");
  }
  obs::counter_add(obs::Counter::kKronProducts, 3);

  obs::PerfRecord record("unit_test");
  record.set_meta("note", "escaped \"meta\" value");
  obs::PerfEntry entry;
  entry.name = "BM_Something/4";
  entry.real_seconds = 0.125;
  entry.iterations = 10;
  entry.metrics["states"] = 42.0;
  record.add_entry(entry);

  std::ostringstream out;
  record.write(out);
  const io::JsonValue doc = io::JsonValue::parse(out.str());

  EXPECT_EQ(doc.at("schema").as_string(), "finwork-perf-record/1");
  EXPECT_EQ(doc.at("tool").as_string(), "unit_test");
  EXPECT_FALSE(doc.at("git_sha").as_string().empty());
  EXPECT_FALSE(doc.at("build_type").as_string().empty());
  EXPECT_EQ(doc.at("meta").at("note").as_string(), "escaped \"meta\" value");

  const auto& benchmarks = doc.at("benchmarks").as_array();
  ASSERT_EQ(benchmarks.size(), 1u);
  EXPECT_EQ(benchmarks[0].at("name").as_string(), "BM_Something/4");
  EXPECT_DOUBLE_EQ(benchmarks[0].at("real_seconds").as_number(), 0.125);
  EXPECT_DOUBLE_EQ(benchmarks[0].at("iterations").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(benchmarks[0].at("metrics").at("states").as_number(), 42.0);

  // The registry state at write() time is embedded.
  bool found_phase = false;
  for (const io::JsonValue& phase : doc.at("phases").as_array()) {
    if (phase.at("name").as_string() == "test/perf_phase") found_phase = true;
  }
  EXPECT_TRUE(found_phase);
  EXPECT_EQ(doc.at("counters").at("linalg.kron_products").as_number(), 3.0);
}

TEST_F(ObsJsonTest, TextSummaryMentionsSpansAndCounters) {
  {
    const obs::ObsSpan span("test/summary_span");
  }
  obs::counter_add(obs::Counter::kSimReplications, 5);

  std::ostringstream out;
  obs::write_text_summary(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("test/summary_span"), std::string::npos);
  EXPECT_NE(text.find("sim.replications"), std::string::npos);
  EXPECT_NE(text.find("== counters =="), std::string::npos);
}

}  // namespace
