// Concurrency stress for the obs registries, meant to run under the
// debug-tsan preset: counters must be exactly additive, the gauge must
// settle on the true maximum, and per-thread span buffers must not lose
// or corrupt events when hammered from the pool.

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/counters.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace {

using namespace finwork;

constexpr std::size_t kIters = 20000;

class ObsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
    obs::trace_reset();
    obs::events_reset();
    obs::counters_reset();
  }
};

TEST_F(ObsStressTest, CountersAreExactlyAdditiveUnderContention) {
  par::parallel_for(0, kIters, [](std::size_t i) {
    obs::counter_add(obs::Counter::kSimReplications);
    obs::counter_add(obs::Counter::kNeumannIterations, 3);
    obs::gauge_raise(obs::Gauge::kMaxQueueDepth, static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(obs::counter_value(obs::Counter::kSimReplications), kIters);
  EXPECT_EQ(obs::counter_value(obs::Counter::kNeumannIterations), 3 * kIters);
  EXPECT_EQ(obs::gauge_value(obs::Gauge::kMaxQueueDepth), kIters - 1);
}

TEST_F(ObsStressTest, SpansRecordedFromAllPoolThreadsAreAllRetained) {
  par::parallel_for(0, kIters, [](std::size_t) {
    const obs::ObsSpan span("test/stress_span");
  });
  std::uint64_t recorded = 0;
  for (const obs::SpanStats& s : obs::trace_summary()) {
    if (s.name == "test/stress_span") recorded = s.count;
  }
  EXPECT_EQ(recorded, kIters);
  EXPECT_EQ(obs::counter_value(obs::Counter::kTraceEventsDropped), 0u);

  // parallel_for may run entirely inline for tiny ranges, but at this size
  // it must have dispatched to the pool, which feeds the task counters.
  EXPECT_GT(obs::counter_value(obs::Counter::kPoolTasksExecuted), 0u);
}

TEST_F(ObsStressTest, StructuredEventsSurviveConcurrentEmission) {
  constexpr std::size_t kEvents = 256;  // below the sink's retention cap
  par::parallel_for(0, kEvents, [](std::size_t i) {
    obs::emit_event("test/concurrent", "obj", i, obs::kNoIndex, "detail");
  });
  const auto events = obs::events_snapshot();
  EXPECT_EQ(events.size(), kEvents);
  for (const obs::StructuredEvent& ev : events) {
    EXPECT_EQ(ev.category, "test/concurrent");
    EXPECT_EQ(ev.object, "obj");
    EXPECT_LT(ev.level, kEvents);
  }
}

TEST_F(ObsStressTest, SnapshotWhileRecordingDoesNotTearOrDeadlock) {
  par::ThreadPool pool(4);
  auto writer = pool.submit([] {
    for (std::size_t i = 0; i < 5000; ++i) {
      const obs::ObsSpan span("test/reader_writer");
      obs::counter_add(obs::Counter::kEpochRecursions);
    }
  });
  // Drain concurrently with the writer; every snapshot must be coherent.
  for (int round = 0; round < 50; ++round) {
    for (const obs::TraceEvent& ev : obs::trace_snapshot()) {
      ASSERT_NE(ev.name, nullptr);
      ASSERT_GE(ev.tid, 1u);
    }
    (void)obs::counters_snapshot();
  }
  writer.get();
  EXPECT_EQ(obs::counter_value(obs::Counter::kEpochRecursions), 5000u);
}

}  // namespace
