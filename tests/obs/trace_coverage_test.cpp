// Acceptance check for the span instrumentation: on a realistic solver run
// the top-level spans must cover at least 95% of the measured wall time, so
// a --trace-out capture actually explains where a run went.  Also smoke-
// checks that the resulting Chrome trace parses and names the expected
// phases.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "io/json.h"
#include "obs/counters.h"
#include "obs/trace.h"

namespace {

using namespace finwork;

// Spans that are not nested inside any other span on a ctor + solve +
// steady_state run; their totals partition the solver's wall time.
// (state_space/build_level is NOT listed: on this run it happens inside
// solver/prebuild_levels, which would double-count it.)
const char* const kTopLevelSpans[] = {
    "state_space/enumerate",
    "solver/prebuild_levels",
    "solver/solve",
    "solver/steady_state",
};

TEST(TraceCoverageTest, TopLevelSpansCoverSolverWallTime) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";

  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = 5;
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  const net::NetworkSpec spec = cluster::build_cluster(cfg);

  obs::trace_reset();
  obs::counters_reset();
  const std::uint64_t t0 = obs::now_ns();
  const core::TransientSolver solver(spec, cfg.workstations);
  const core::DepartureTimeline tl = solver.solve(30);
  const core::SteadyStateResult& ss = solver.steady_state();
  const std::uint64_t wall_ns = obs::now_ns() - t0;
  ASSERT_GT(tl.makespan, 0.0);
  ASSERT_GT(ss.interdeparture, 0.0);
  ASSERT_GT(wall_ns, 0u);

  const std::vector<obs::SpanStats> summary = obs::trace_summary();
  std::uint64_t covered_ns = 0;
  for (const obs::SpanStats& s : summary) {
    if (std::find_if(std::begin(kTopLevelSpans), std::end(kTopLevelSpans),
                     [&](const char* name) { return s.name == name; }) !=
        std::end(kTopLevelSpans)) {
      covered_ns += s.total_ns;
    }
  }
  EXPECT_GE(static_cast<double>(covered_ns),
            0.95 * static_cast<double>(wall_ns))
      << "top-level spans cover only "
      << 100.0 * static_cast<double>(covered_ns) /
             static_cast<double>(wall_ns)
      << "% of the solver wall time";
  // Sanity: span totals cannot exceed the enclosing measurement.
  EXPECT_LE(covered_ns, wall_ns);

  // The run must have exercised the phases the catalog promises.
  const auto has_span = [&](const std::string& name) {
    return std::any_of(summary.begin(), summary.end(),
                       [&](const obs::SpanStats& s) { return s.name == name; });
  };
  EXPECT_TRUE(has_span("solver/prepare_level"));
  EXPECT_TRUE(has_span("solver/epoch"));
  EXPECT_TRUE(has_span("state_space/build_level"));
  EXPECT_GT(obs::counter_value(obs::Counter::kEpochRecursions), 0u);
  EXPECT_GT(obs::counter_value(obs::Counter::kLuReuseHits), 0u);

  // The same capture must export as parseable Chrome trace JSON.
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const io::JsonValue doc = io::JsonValue::parse(out.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  const auto has_event = [&](const std::string& name) {
    return std::any_of(events.begin(), events.end(),
                       [&](const io::JsonValue& ev) {
                         return ev.at("name").as_string() == name;
                       });
  };
  for (const char* name : kTopLevelSpans) EXPECT_TRUE(has_event(name));
}

}  // namespace
