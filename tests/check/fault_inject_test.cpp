// Deterministic fault-injection regressions for the fallback ladder
// (docs/ROBUSTNESS.md).  Built only when FINWORK_FAULT_INJECT is ON (the
// debug-fault preset / CI fault-inject job): each test arms a named failure
// site, drives the solver through the degraded path, and asserts that the
// fallback reproduced the healthy numbers, that the right counters/events
// fired, and that exhaustion surfaces as the right SolverError.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "check/fault_inject.h"
#include "cluster/experiments.h"
#include "core/model_cache.h"
#include "core/transient_solver.h"
#include "linalg/solver_error.h"
#include "obs/counters.h"
#include "obs/obs_config.h"
#include "obs/sink.h"

namespace check = finwork::check;
namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace obs = finwork::obs;
using finwork::SolverError;
using finwork::SolverErrorKind;
using finwork::SolverStage;

static_assert(check::kFaultInjectEnabled,
              "fault_inject_test must be built with FINWORK_FAULT_INJECT=ON");

namespace {

finwork::net::NetworkSpec small_cluster(std::size_t workstations = 2) {
  cluster::ExperimentConfig cfg;
  cfg.workstations = workstations;
  return cluster::build_cluster(cfg);
}

bool saw_event(const std::string& category) {
  for (const obs::StructuredEvent& ev : obs::events_snapshot()) {
    if (ev.category == category) return true;
  }
  return false;
}

class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { check::disarm_all_faults(); }
  void TearDown() override { check::disarm_all_faults(); }
};

}  // namespace

TEST_F(FaultInjectTest, RegistryListsEveryLadderSite) {
  const std::vector<std::string_view> sites = check::fault_sites();
  for (const char* expected :
       {"lu/factorize", "ladder/refine", "ladder/rescue", "iterative/neumann",
        "iterative/bicgstab", "iterative/gmres", "cache/build"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << expected;
  }
  EXPECT_THROW(check::arm_fault("no/such/site"), std::logic_error);
  EXPECT_THROW((void)check::fault_fire_count("no/such/site"),
               std::logic_error);
}

TEST_F(FaultInjectTest, SingularFactorizationDegradesToIterativeBackend) {
  const finwork::net::NetworkSpec spec = small_cluster();
  const core::TransientSolver healthy(spec, 2);
  const double reference = healthy.makespan(10);

  // Both dense levels of a fresh model hit the armed probe and degrade to
  // the matrix-free backend; the numbers must not move.
  const std::uint64_t fallback_before =
      obs::counter_value(obs::Counter::kFallbackActivations);
  check::arm_fault("lu/factorize", 8);
  const core::TransientSolver degraded(spec, 2);
  const double value = degraded.makespan(10);
  check::disarm_all_faults();
  EXPECT_NEAR(value, reference, 1e-8 * reference);
  EXPECT_GT(check::fault_fire_count("lu/factorize"), 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::counter_value(obs::Counter::kFallbackActivations),
              fallback_before);
    EXPECT_TRUE(saw_event("degradation/lu-singular"));
  }
}

TEST_F(FaultInjectTest, SingularFactorizationIsFatalUnderStrict) {
  core::SolverOptions opts;
  opts.strict = true;
  const core::ModelArtifacts model(small_cluster(), 2, opts);
  check::arm_fault("lu/factorize", 1);
  try {
    (void)model.tau(1);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kSingular);
    EXPECT_EQ(e.stage(), SolverStage::kLuFactorize);
    EXPECT_EQ(e.context().level, 1u);
    EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
  }
}

TEST_F(FaultInjectTest, StalledRefinementFallsBackToIterativeBackend) {
  const finwork::net::NetworkSpec spec = small_cluster();
  const core::TransientSolver healthy(spec, 2);
  const double reference = healthy.makespan(10);

  // max_condition = 1 routes every dense solve through refinement; the armed
  // probe makes refinement report failure, forcing stage 3.
  core::SolverOptions opts;
  opts.max_condition = 1.0;
  check::arm_fault("ladder/refine", 100000);
  const core::TransientSolver degraded(spec, 2, opts);
  const double value = degraded.makespan(10);
  check::disarm_all_faults();
  EXPECT_NEAR(value, reference, 1e-8 * reference);
  EXPECT_GT(check::fault_fire_count("ladder/refine"), 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_TRUE(saw_event("degradation/refinement"));
  }
}

TEST_F(FaultInjectTest, ExhaustedKrylovBackendsRecoverViaShiftedRetry) {
  // dense_threshold = 0: every level runs the matrix-free backend, so one
  // armed failure per backend pushes a single solve into the rescue stage.
  core::SolverOptions opts;
  opts.dense_threshold = 0;
  const core::ModelArtifacts model(small_cluster(), 2, opts);
  const finwork::la::Vector b(model.space().dimension(2), 1.0);
  const finwork::la::Vector reference = model.solve_left(2, b);

  check::arm_fault("iterative/neumann", 1);
  check::arm_fault("iterative/bicgstab", 1);
  check::arm_fault("iterative/gmres", 1);
  const finwork::la::Vector rescued = model.solve_left(2, b);
  check::disarm_all_faults();
  ASSERT_EQ(rescued.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(rescued[i], reference[i],
                1e-8 * (1.0 + std::abs(reference[i])))
        << "component " << i;
  }
  EXPECT_GT(check::fault_fire_count("iterative/neumann"), 0u);
  EXPECT_GT(check::fault_fire_count("iterative/bicgstab"), 0u);
  EXPECT_GT(check::fault_fire_count("iterative/gmres"), 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_TRUE(saw_event("degradation/iterative"));
    EXPECT_TRUE(saw_event("degradation/shifted-retry"));
  }
}

TEST_F(FaultInjectTest, LadderExhaustionThrowsShiftedRetryError) {
  core::SolverOptions opts;
  opts.dense_threshold = 0;
  const core::ModelArtifacts model(small_cluster(), 2, opts);
  const finwork::la::Vector b(model.space().dimension(2), 1.0);
  (void)model.tau(2);  // prepare the level with healthy solves first

  check::arm_fault("iterative/neumann", 1);
  check::arm_fault("iterative/bicgstab", 1);
  check::arm_fault("iterative/gmres", 1);
  check::arm_fault("ladder/rescue", 1);
  try {
    (void)model.solve_left(2, b);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kNonConvergence);
    EXPECT_EQ(e.stage(), SolverStage::kShiftedRetry);
    EXPECT_EQ(e.context().level, 2u);
  }
  check::disarm_all_faults();
}

TEST_F(FaultInjectTest, StrictModeStopsBeforeTheRescueStage) {
  core::SolverOptions opts;
  opts.dense_threshold = 0;
  opts.strict = true;
  const core::ModelArtifacts model(small_cluster(), 2, opts);
  const finwork::la::Vector b(model.space().dimension(2), 1.0);
  (void)model.tau(2);

  const std::uint64_t rescue_before = check::fault_fire_count("ladder/rescue");
  check::arm_fault("iterative/neumann", 1);
  check::arm_fault("iterative/bicgstab", 1);
  check::arm_fault("iterative/gmres", 1);
  check::arm_fault("ladder/rescue", 1);
  try {
    (void)model.solve_left(2, b);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kNonConvergence);
    EXPECT_EQ(e.stage(), SolverStage::kGmres);
  }
  check::disarm_all_faults();
  // Strict stopped before the rescue stage: its armed probe never fired.
  EXPECT_EQ(check::fault_fire_count("ladder/rescue"), rescue_before);
}

TEST_F(FaultInjectTest, FailedCacheBuildIsNotPoisonedAndRetries) {
  core::ModelCache cache(4);
  const finwork::net::NetworkSpec spec = small_cluster();

  check::arm_fault("cache/build", 1);
  try {
    (void)cache.acquire(spec, 2, {});
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kCacheBuildFailure);
    EXPECT_EQ(e.stage(), SolverStage::kCacheBuild);
  }
  // The failed flight left no entry behind: the retry builds cleanly.
  EXPECT_EQ(cache.stats().size, 0u);
  const auto model = cache.acquire(spec, 2, {});
  EXPECT_NE(model, nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().size, 1u);
}

TEST_F(FaultInjectTest, WaitersOfAFailedFlightAllSeeTheSolverError) {
  core::ModelCache cache(4);
  const finwork::net::NetworkSpec spec = small_cluster(3);

  const std::uint64_t fired_before = check::fault_fire_count("cache/build");
  check::arm_fault("cache/build", 1);
  constexpr std::size_t kThreads = 6;
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> successes{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      try {
        const auto m = cache.acquire(spec, 3, {});
        if (m != nullptr) successes.fetch_add(1);
      } catch (const SolverError& e) {
        if (e.kind() == SolverErrorKind::kCacheBuildFailure) {
          failures.fetch_add(1);
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  // Exactly one flight hit the armed fault; its builder and every thread
  // parked on the same shared future saw the same SolverError.  Threads that
  // arrived after the failed entry was erased rebuilt successfully.
  EXPECT_EQ(check::fault_fire_count("cache/build"), fired_before + 1);
  EXPECT_GE(failures.load(), 1u);
  EXPECT_EQ(failures.load() + successes.load(), kThreads);
  // The key is never poisoned: a final acquire always succeeds.
  EXPECT_NE(cache.acquire(spec, 3, {}), nullptr);
}

TEST_F(FaultInjectTest, DisarmCancelsRemainingFailures) {
  check::arm_fault("iterative/neumann", 5);
  check::disarm_fault("iterative/neumann");
  EXPECT_FALSE(check::fault_at("iterative/neumann"));
  check::arm_fault("iterative/neumann", 1);
  EXPECT_TRUE(check::fault_at("iterative/neumann"));
  EXPECT_FALSE(check::fault_at("iterative/neumann"));  // count consumed
}
