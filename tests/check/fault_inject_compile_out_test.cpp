// Compile-out guarantees of the fault-injection framework.
//
// This TU forces FINWORK_FAULT_INJECT=0 before including the header (the
// rest of the binary keeps whatever the build selected), so it sees exactly
// what a production build sees: `kFaultInjectEnabled` is false and every
// `fault_at` probe is a constant `false` with zero generated code.  The
// control API stays declared so tests and tools always link; whether
// arm_fault throws is decided by how the *library* was built, which the
// runtime test below dispatches on.

// Hot headers first, before the framework header: if one of them dragged
// fault_inject.h in, the marker below would already be defined.
#include "core/transient_solver.h"
#include "linalg/iterative.h"
#include "linalg/lu.h"

#ifdef FINWORK_FAULT_INJECT_INCLUDED
#error "a hot-path header includes fault_inject.h; keep probes in .cpp files"
#endif

// Now simulate a production build for the framework header in this TU only.
#undef FINWORK_FAULT_INJECT
#define FINWORK_FAULT_INJECT 0
#include "check/fault_inject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace check = finwork::check;

static_assert(!check::kFaultInjectEnabled,
              "FINWORK_FAULT_INJECT=0 must disable the framework");
static_assert(noexcept(check::fault_at("lu/factorize")),
              "the probe must be noexcept");
static_assert(noexcept(check::disarm_all_faults()),
              "disarm_all_faults must be a safe no-op");

TEST(FaultInjectCompileOutTest, DisabledProbeIsAlwaysFalse) {
  // In this TU the probe short-circuits before reaching the registry, so it
  // is false even if the linked library has injection enabled and armed.
  EXPECT_FALSE(check::fault_at("lu/factorize"));
  EXPECT_FALSE(check::fault_at("iterative/neumann"));
  EXPECT_FALSE(check::fault_at("definitely/not/a/site"));
}

TEST(FaultInjectCompileOutTest, RegistryStaysReadableWhenDisabled) {
  const std::vector<std::string_view> sites = check::fault_sites();
  EXPECT_FALSE(sites.empty());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "cache/build"),
            sites.end());
  // Unknown sites fail loudly in every build flavour.
  EXPECT_THROW((void)check::fault_fire_count("no/such/site"),
               std::logic_error);
  check::disarm_all_faults();  // must not throw
}
