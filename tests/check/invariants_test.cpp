// Tests for the runtime invariant checker (src/check): each checker accepts
// lawful inputs, rejects corrupted ones with a message naming the object,
// the population level and the offending row, and the matrices of a real
// model pass every check.

#include "check/invariants.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "cluster/experiments.h"
#include "linalg/sparse.h"
#include "network/state_space.h"

namespace check = finwork::check;
namespace la = finwork::la;
namespace cluster = finwork::cluster;
namespace net = finwork::net;

namespace {

// A lawful substochastic 2x2 matrix: row sums 0.9 and 0.5.
la::CsrMatrix lawful_p() {
  return la::CsrMatrix(2, 2, {{0, 0, 0.4}, {0, 1, 0.5}, {1, 0, 0.5}});
}

// Extract the full what() of the violation thrown by `fn`.
template <typename Fn>
std::string violation_message(Fn&& fn) {
  try {
    fn();
  } catch (const check::InvariantViolation& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected InvariantViolation";
  return {};
}

}  // namespace

TEST(CheckFinite, AcceptsFiniteRejectsNanAndInf) {
  EXPECT_NO_THROW(check::check_finite(la::Vector{1.0, -2.0, 0.0}, "v"));
  la::Vector bad{1.0, std::nan(""), 3.0};
  EXPECT_THROW(check::check_finite(bad, "v"), check::InvariantViolation);
  la::Vector inf{std::numeric_limits<double>::infinity()};
  EXPECT_THROW(check::check_finite(inf, "v"), check::InvariantViolation);
}

TEST(CheckProbabilityVector, AcceptsSimplexRejectsDrift) {
  EXPECT_NO_THROW(
      check::check_probability_vector(la::Vector{0.25, 0.75}, "pi"));
  // Off-simplex mass.
  EXPECT_THROW(check::check_probability_vector(la::Vector{0.25, 0.7}, "pi"),
               check::InvariantViolation);
  // Negative entry even though the sum is 1.
  EXPECT_THROW(
      check::check_probability_vector(la::Vector{1.2, -0.2}, "pi"),
      check::InvariantViolation);
}

TEST(CheckPositiveRates, RejectsZeroNegativeAndNan) {
  EXPECT_NO_THROW(check::check_positive_rates(la::Vector{0.1, 5.0}, "M"));
  EXPECT_THROW(check::check_positive_rates(la::Vector{1.0, 0.0}, "M"),
               check::InvariantViolation);
  EXPECT_THROW(check::check_positive_rates(la::Vector{-1.0}, "M"),
               check::InvariantViolation);
  EXPECT_THROW(check::check_positive_rates(la::Vector{std::nan("")}, "M"),
               check::InvariantViolation);
}

TEST(CheckSubstochastic, AcceptsLawfulMatrix) {
  EXPECT_NO_THROW(check::check_substochastic(lawful_p(), "P_k", 2));
}

TEST(CheckSubstochastic, CorruptedRowSumNamesMatrixLevelAndRow) {
  // Deliberately corrupted P_k: row 1 sums to 1.3 > 1.
  la::CsrMatrix corrupted(
      2, 2, {{0, 0, 0.4}, {1, 0, 0.6}, {1, 1, 0.7}});
  const std::string msg = violation_message(
      [&] { check::check_substochastic(corrupted, "P_k", 3); });
  EXPECT_NE(msg.find("P_k"), std::string::npos) << msg;
  EXPECT_NE(msg.find("level 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;

  try {
    check::check_substochastic(corrupted, "P_k", 3);
    FAIL() << "expected InvariantViolation";
  } catch (const check::InvariantViolation& e) {
    EXPECT_EQ(e.object(), "P_k");
    EXPECT_EQ(e.level(), 3u);
    EXPECT_EQ(e.row(), 1u);
    EXPECT_EQ(e.invariant(), "substochastic");
  }
}

TEST(CheckSubstochastic, RejectsNegativeEntry) {
  la::CsrMatrix neg(1, 2, {{0, 0, -0.1}, {0, 1, 0.5}});
  EXPECT_THROW(check::check_substochastic(neg, "P_k", 1),
               check::InvariantViolation);
}

TEST(CheckStochastic, RequiresUnitRowSums) {
  la::CsrMatrix r(2, 2, {{0, 0, 0.5}, {0, 1, 0.5}, {1, 1, 1.0}});
  EXPECT_NO_THROW(check::check_stochastic(r, "R_k", 4));
  la::CsrMatrix leaky(1, 2, {{0, 0, 0.5}, {0, 1, 0.4}});
  const std::string msg = violation_message(
      [&] { check::check_stochastic(leaky, "R_k", 4); });
  EXPECT_NE(msg.find("R_k"), std::string::npos) << msg;
  EXPECT_NE(msg.find("level 4"), std::string::npos) << msg;
}

TEST(CheckLevelFlow, DetectsLeakedMass) {
  // Lawful: P row sums + Q row sums = 1 for each row.
  la::CsrMatrix p = lawful_p();  // row sums 0.9, 0.5
  la::CsrMatrix q_good(2, 1, {{0, 0, 0.1}, {1, 0, 0.5}});
  EXPECT_NO_THROW(check::check_level_flow(p, q_good, 2));
  la::CsrMatrix q_bad(2, 1, {{0, 0, 0.1}, {1, 0, 0.3}});
  EXPECT_THROW(check::check_level_flow(p, q_bad, 2),
               check::InvariantViolation);
}

TEST(CheckFixedPoint, BoundsResidual) {
  la::Vector pi{0.5, 0.5};
  la::Vector close{0.5 + 1e-12, 0.5 - 1e-12};
  EXPECT_NO_THROW(check::check_fixed_point(pi, close, "p_ss", 5, 1e-9));
  la::Vector far{0.6, 0.4};
  const std::string msg = violation_message(
      [&] { check::check_fixed_point(pi, far, "p_ss", 5, 1e-9); });
  EXPECT_NE(msg.find("p_ss"), std::string::npos) << msg;
  EXPECT_NE(msg.find("level 5"), std::string::npos) << msg;
}

TEST(CheckIntegration, RealModelMatricesSatisfyAllInvariants) {
  // The matrices of an actual cluster model are lawful at every level —
  // the same checks the builder runs when FINWORK_CHECK_INVARIANTS is on.
  cluster::ExperimentConfig cfg;
  cfg.workstations = 3;
  net::StateSpace space(cluster::build_cluster(cfg), cfg.workstations);
  for (std::size_t k = 1; k <= cfg.workstations; ++k) {
    const net::LevelMatrices& lm = space.level(k);
    EXPECT_NO_THROW(check::check_positive_rates(lm.event_rates, "M_k", k));
    EXPECT_NO_THROW(check::check_substochastic(lm.p, "P_k", k));
    EXPECT_NO_THROW(check::check_level_flow(lm.p, lm.q, k));
    EXPECT_NO_THROW(check::check_stochastic(lm.r, "R_k", k));
    EXPECT_NO_THROW(check::check_probability_vector(
        space.initial_vector(k), "p_k", k));
  }
}
