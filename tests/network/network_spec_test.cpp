// Tests for NetworkSpec: validation, visit ratios, and the single-customer
// LAQT view (the paper's Section 5.4 worked example).

#include "network/network_spec.h"

#include <gtest/gtest.h>

#include "cluster/builders.h"
#include "linalg/lu.h"

namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace cluster = finwork::cluster;

namespace {

/// The paper's central-cluster network at station granularity with simple
/// hand-picked numbers: q = 0.2, p1 = 0.6, p2 = 0.4.
net::NetworkSpec paper_example() {
  const double q = 0.2, p1 = 0.6, p2 = 0.4;
  std::vector<net::Station> st;
  st.push_back({"CPU", ph::PhaseType::exponential(2.0), 5});
  st.push_back({"Disk", ph::PhaseType::exponential(1.0), 5});
  st.push_back({"Comm", ph::PhaseType::exponential(4.0), 1});
  st.push_back({"RDisk", ph::PhaseType::exponential(0.5), 1});
  la::Vector entry{1.0, 0.0, 0.0, 0.0};
  la::Matrix routing(4, 4, 0.0);
  routing(0, 1) = (1 - q) * p1;
  routing(0, 2) = (1 - q) * p2;
  routing(1, 0) = 1.0;
  routing(2, 3) = 1.0;
  routing(3, 0) = 1.0;
  la::Vector exit{q, 0.0, 0.0, 0.0};
  return net::NetworkSpec(std::move(st), std::move(entry), std::move(routing),
                          std::move(exit));
}

}  // namespace

TEST(NetworkSpec, ValidatesProbabilities) {
  std::vector<net::Station> st{{"A", ph::PhaseType::exponential(1.0), 1}};
  // entry not summing to 1
  EXPECT_THROW((void)net::NetworkSpec(st, la::Vector{0.5}, la::Matrix(1, 1, 0.0),
                                la::Vector{1.0}),
               std::invalid_argument);
  // routing row + exit != 1
  EXPECT_THROW((void)net::NetworkSpec(st, la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                                la::Vector{0.5}),
               std::invalid_argument);
  // negative routing
  EXPECT_THROW((void)net::NetworkSpec(st, la::Vector{1.0}, la::Matrix{{-0.5}},
                                la::Vector{1.5}),
               std::invalid_argument);
  // dimension mismatch
  EXPECT_THROW((void)net::NetworkSpec(st, la::Vector{1.0, 0.0},
                                la::Matrix(1, 1, 0.0), la::Vector{1.0}),
               std::invalid_argument);
  // no stations
  EXPECT_THROW((void)net::NetworkSpec({}, la::Vector{}, la::Matrix{}, la::Vector{}),
               std::invalid_argument);
}

TEST(NetworkSpec, VisitRatiosOfPaperExample) {
  const net::NetworkSpec spec = paper_example();
  const la::Vector v = spec.visit_ratios();
  // CPU visited 1/q = 5 times; disk 5 * 0.8 * 0.6 = 2.4; comm and remote
  // disk 5 * 0.8 * 0.4 = 1.6 each.
  EXPECT_NEAR(v[0], 5.0, 1e-10);
  EXPECT_NEAR(v[1], 2.4, 1e-10);
  EXPECT_NEAR(v[2], 1.6, 1e-10);
  EXPECT_NEAR(v[3], 1.6, 1e-10);
}

TEST(NetworkSpec, ServiceDemands) {
  const net::NetworkSpec spec = paper_example();
  const la::Vector d = spec.service_demands();
  EXPECT_NEAR(d[0], 5.0 * 0.5, 1e-10);
  EXPECT_NEAR(d[3], 1.6 * 2.0, 1e-10);
}

TEST(NetworkSpec, SingleCustomerTimeComponents) {
  // The paper's pV = [t_cpu/q, t_d p1(1-q)/q, t_com p2(1-q)/q,
  //                   t_rd p2(1-q)/q].
  const net::NetworkSpec spec = paper_example();
  const net::SingleCustomerView view = spec.single_customer();
  EXPECT_NEAR(view.time_components[0], 0.5 / 0.2, 1e-10);
  EXPECT_NEAR(view.time_components[1], 1.0 * 0.6 * 0.8 / 0.2, 1e-10);
  EXPECT_NEAR(view.time_components[2], 0.25 * 0.4 * 0.8 / 0.2, 1e-10);
  EXPECT_NEAR(view.time_components[3], 2.0 * 0.4 * 0.8 / 0.2, 1e-10);
  EXPECT_NEAR(view.mean_task_time, view.time_components.sum(), 1e-12);
}

TEST(NetworkSpec, SingleCustomerTransitionRowsStochastic) {
  const net::NetworkSpec spec = paper_example();
  const net::SingleCustomerView view = spec.single_customer();
  for (std::size_t i = 0; i < view.p.size(); ++i) {
    double row = view.exit[i];
    for (std::size_t j = 0; j < view.p.size(); ++j) {
      row += view.transition(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-12) << "row " << i;
  }
  EXPECT_NEAR(view.p.sum(), 1.0, 1e-12);
}

TEST(NetworkSpec, SingleCustomerPhaseExpansion) {
  // Replacing the CPU with Erlang-2 adds one phase, exactly like the paper's
  // Section 5.4.1 matrix.
  net::NetworkSpec spec = paper_example();
  spec = spec.with_service(0, ph::PhaseType::erlang(2, 0.5));
  const net::SingleCustomerView view = spec.single_customer();
  EXPECT_EQ(view.p.size(), 5u);
  EXPECT_EQ(view.phase_station[0], 0u);
  EXPECT_EQ(view.phase_station[1], 0u);
  EXPECT_EQ(view.phase_station[2], 1u);
  // Mean task time is unchanged by the shape substitution.
  EXPECT_NEAR(view.mean_task_time, paper_example().single_customer().mean_task_time,
              1e-10);
}

TEST(NetworkSpec, MeanTaskTimeEqualsPsiOfV) {
  // Psi[V] computed directly from B at phase granularity must equal the sum
  // of the time components (definition check).
  const net::SingleCustomerView view = paper_example().single_customer();
  const la::Vector tau = la::LuDecomposition(view.b).solve(la::ones(4));
  EXPECT_NEAR(la::dot(view.p, tau), view.mean_task_time, 1e-10);
}

TEST(NetworkSpec, WithServiceOutOfRangeThrows) {
  EXPECT_THROW((void)paper_example().with_service(9, ph::PhaseType::exponential(1.0)),
               std::out_of_range);
}

TEST(NetworkSpec, ExponentializedPreservesMeans) {
  net::NetworkSpec spec = paper_example();
  spec = spec.with_service(3, ph::hyperexponential_balanced(2.0, 25.0));
  const net::NetworkSpec expo = spec.exponentialized();
  for (std::size_t j = 0; j < spec.num_stations(); ++j) {
    EXPECT_NEAR(expo.station(j).service.mean(), spec.station(j).service.mean(),
                1e-10);
    EXPECT_EQ(expo.station(j).service.phases(), 1u);
  }
}

TEST(NetworkSpec, ClusterBuilderProducesValidSpec) {
  // Smoke-check the two builders through the validation constructor.
  cluster::ApplicationModel app;
  const net::NetworkSpec c = cluster::central_cluster(4, app);
  EXPECT_EQ(c.num_stations(), 4u);
  EXPECT_NEAR(c.single_customer().mean_task_time, app.task_mean_time(), 1e-9);
  const net::NetworkSpec d = cluster::distributed_cluster(4, app);
  EXPECT_EQ(d.num_stations(), 7u);
  EXPECT_NEAR(d.single_customer().mean_task_time, app.task_mean_time(), 1e-9);
}
