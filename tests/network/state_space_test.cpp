// Tests for the reduced-product state space and the level matrices
// M_k, P_k, Q_k, R_k: dimensions, stochasticity invariants, known examples.

#include "network/state_space.h"

#include <gtest/gtest.h>

#include "cluster/builders.h"
#include "ph/fitting.h"

namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace cluster = finwork::cluster;

namespace {

/// Closed tandem of M exponential single-server stations with exit from the
/// last one.
net::NetworkSpec tandem(std::size_t m, double rate = 1.0) {
  std::vector<net::Station> st;
  for (std::size_t j = 0; j < m; ++j) {
    st.push_back({"S" + std::to_string(j), ph::PhaseType::exponential(rate), 1});
  }
  la::Vector entry(m, 0.0);
  entry[0] = 1.0;
  la::Matrix routing(m, m, 0.0);
  for (std::size_t j = 0; j + 1 < m; ++j) routing(j, j + 1) = 1.0;
  la::Vector exit(m, 0.0);
  exit[m - 1] = 1.0;
  return net::NetworkSpec(std::move(st), std::move(entry), std::move(routing),
                          std::move(exit));
}

}  // namespace

TEST(StateSpace, ReducedProductDimensionFormula) {
  EXPECT_EQ(net::StateSpace::reduced_product_dimension(4, 0), 1u);
  EXPECT_EQ(net::StateSpace::reduced_product_dimension(4, 1), 4u);
  EXPECT_EQ(net::StateSpace::reduced_product_dimension(4, 5), 56u);  // C(8,5)
  EXPECT_EQ(net::StateSpace::reduced_product_dimension(11, 5), 3003u);
}

TEST(StateSpace, TandemDimensionsMatchFormula) {
  const net::StateSpace space(tandem(3), 4);
  for (std::size_t k = 0; k <= 4; ++k) {
    EXPECT_EQ(space.dimension(k),
              net::StateSpace::reduced_product_dimension(3, k))
        << "k = " << k;
  }
}

TEST(StateSpace, PaperCentralClusterDimension) {
  // The paper's reduced space for the 4-station central cluster with K
  // customers is C(K+3, K): D(5) = 56 for K = 5.
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(5, app);
  const net::StateSpace space(spec, 5);
  EXPECT_EQ(space.dimension(5), 56u);
}

TEST(StateSpace, PaperDistributedClusterDimension) {
  // Our distributed model has K + 3 stations (CPU, LDisk, Comm, D_1..D_K).
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::distributed_cluster(5, app);
  const net::StateSpace space(spec, 5);
  EXPECT_EQ(space.dimension(5),
            net::StateSpace::reduced_product_dimension(8, 5));
}

TEST(StateSpace, OccupancySumsToLevel) {
  cluster::ApplicationModel app;
  const net::StateSpace space(cluster::central_cluster(4, app), 4);
  for (std::size_t k = 0; k <= 4; ++k) {
    for (std::size_t i = 0; i < space.dimension(k); ++i) {
      const auto occ = space.occupancy(k, i);
      std::size_t total = 0;
      for (std::size_t n : occ) total += n;
      EXPECT_EQ(total, k);
    }
  }
}

TEST(StateSpace, IndexOfRoundTrips) {
  const net::StateSpace space(tandem(3), 3);
  for (std::size_t k = 0; k <= 3; ++k) {
    const auto& states = space.states(k);
    for (std::size_t i = 0; i < states.size(); ++i) {
      EXPECT_EQ(space.index_of(k, states[i]), i);
    }
  }
}

TEST(StateSpace, LevelRowsAreStochastic) {
  // P_k eps + Q_k eps = eps and R_k eps = eps for every level of several
  // representative networks.
  cluster::ApplicationModel app;
  cluster::ClusterShapes h2_shapes;
  h2_shapes.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
  cluster::ClusterShapes cpu_shapes;
  cpu_shapes.cpu = cluster::ServiceShape::erlang(3);
  const std::vector<net::NetworkSpec> specs = {
      tandem(3),
      cluster::central_cluster(4, app),
      cluster::central_cluster(3, app, h2_shapes),
      cluster::central_cluster(3, app, cpu_shapes),
      cluster::distributed_cluster(3, app, h2_shapes),
  };
  for (const auto& spec : specs) {
    const net::StateSpace space(spec, 3);
    for (std::size_t k = 1; k <= 3; ++k) {
      const net::LevelMatrices& lm = space.level(k);
      const la::Vector prow = lm.p.row_sums();
      const la::Vector qrow = lm.q.row_sums();
      for (std::size_t i = 0; i < space.dimension(k); ++i) {
        EXPECT_NEAR(prow[i] + qrow[i], 1.0, 1e-10)
            << "level " << k << " state " << space.describe(k, i);
      }
      const la::Vector rrow = lm.r.row_sums();
      for (std::size_t i = 0; i < space.dimension(k - 1); ++i) {
        EXPECT_NEAR(rrow[i], 1.0, 1e-10);
      }
      for (std::size_t i = 0; i < space.dimension(k); ++i) {
        EXPECT_GT(lm.event_rates[i], 0.0);
      }
    }
  }
}

TEST(StateSpace, SingleStationLevelMatricesExact) {
  // One exponential single-server station with direct exit: level k has one
  // state, M_k = rate, P_k = 0, Q_k = 1, R_k = 1.
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(3.0), 1}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix(1, 1, 0.0), la::Vector{1.0});
  const net::StateSpace space(spec, 2);
  const net::LevelMatrices& l1 = space.level(1);
  EXPECT_DOUBLE_EQ(l1.event_rates[0], 3.0);
  EXPECT_EQ(l1.p.nnz(), 0u);
  EXPECT_DOUBLE_EQ(l1.q.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(l1.r.at(0, 0), 1.0);
  // Level 2: single server, rate still 3.
  EXPECT_DOUBLE_EQ(space.level(2).event_rates[0], 3.0);
}

TEST(StateSpace, TwoStationFeedbackTransitions) {
  // Station A routes to B, B exits; with k = 1 the P_1 matrix moves the
  // customer from A to B with probability 1.
  const net::NetworkSpec spec = tandem(2, 2.0);
  const net::StateSpace space(spec, 1);
  const net::LevelMatrices& lm = space.level(1);
  // States of level 1: customer at A (1,0) or at B (0,1); find indices.
  std::size_t at_a = 0, at_b = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto occ = space.occupancy(1, i);
    if (occ[0] == 1) at_a = i;
    if (occ[1] == 1) at_b = i;
  }
  EXPECT_DOUBLE_EQ(lm.p.at(at_a, at_b), 1.0);
  EXPECT_DOUBLE_EQ(lm.q.at(at_b, 0), 1.0);
  EXPECT_DOUBLE_EQ(lm.q.at(at_a, 0), 0.0);
}

TEST(StateSpace, InitialVectorIsDistribution) {
  cluster::ApplicationModel app;
  const net::StateSpace space(cluster::central_cluster(4, app), 4);
  const la::Vector p4 = space.initial_vector(4);
  EXPECT_EQ(p4.size(), space.dimension(4));
  EXPECT_NEAR(p4.sum(), 1.0, 1e-12);
  for (std::size_t i = 0; i < p4.size(); ++i) EXPECT_GE(p4[i], -1e-15);
}

TEST(StateSpace, InitialVectorAllAtEntryStations) {
  // With instantaneous streaming-in and entry at the CPU only, every task
  // starts at the (ample) CPU: the initial vector concentrates on the state
  // with all K customers there.
  cluster::ApplicationModel app;
  const net::StateSpace space(cluster::central_cluster(3, app), 3);
  const la::Vector p3 = space.initial_vector(3);
  std::size_t support = 0;
  for (std::size_t i = 0; i < p3.size(); ++i) {
    if (p3[i] > 0.0) {
      ++support;
      EXPECT_EQ(space.occupancy(3, i)[0], 3u);
    }
  }
  EXPECT_EQ(support, 1u);
}

TEST(StateSpace, GuardsBadArguments) {
  const net::StateSpace space(tandem(2), 2);
  EXPECT_THROW((void)space.level(0), std::out_of_range);
  EXPECT_THROW((void)space.level(3), std::out_of_range);
  EXPECT_THROW((void)space.dimension(3), std::out_of_range);
  EXPECT_THROW((void)space.initial_vector(0), std::out_of_range);
  EXPECT_THROW((void)net::StateSpace(tandem(2), 0), std::invalid_argument);
}

TEST(StateSpace, DescribeMentionsStations) {
  const net::StateSpace space(tandem(2), 2);
  const std::string d = space.describe(2, 0);
  EXPECT_NE(d.find("S0"), std::string::npos);
  EXPECT_NE(d.find("S1"), std::string::npos);
}

// Property: level dimensions are consistent with per-station local counts
// across mixed-shape clusters.
class LevelDimensions : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelDimensions, QAndRHaveMatchingShapes) {
  cluster::ApplicationModel app;
  cluster::ClusterShapes shapes;
  shapes.remote_disk = cluster::ServiceShape::hyperexponential(5.0);
  const std::size_t k = GetParam();
  const net::StateSpace space(cluster::central_cluster(k, app, shapes), k);
  for (std::size_t lvl = 1; lvl <= k; ++lvl) {
    const net::LevelMatrices& lm = space.level(lvl);
    EXPECT_EQ(lm.p.rows(), space.dimension(lvl));
    EXPECT_EQ(lm.p.cols(), space.dimension(lvl));
    EXPECT_EQ(lm.q.rows(), space.dimension(lvl));
    EXPECT_EQ(lm.q.cols(), space.dimension(lvl - 1));
    EXPECT_EQ(lm.r.rows(), space.dimension(lvl - 1));
    EXPECT_EQ(lm.r.cols(), space.dimension(lvl));
  }
}

INSTANTIATE_TEST_SUITE_P(Populations, LevelDimensions,
                         ::testing::Values(1, 2, 3, 5));
