// The lumping check: the naive tagged (Kronecker) model and the
// reduced-product transient solver must produce identical means.

#include "network/tagged_reference.h"

#include <gtest/gtest.h>

#include "cluster/builders.h"
#include "core/transient_solver.h"
#include "ph/fitting.h"

namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace core = finwork::core;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec one_station(ph::PhaseType svc, std::size_t mult) {
  std::vector<net::Station> st{{"S", std::move(svc), mult}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

}  // namespace

TEST(TaggedReference, ForkJoinClosedForm) {
  // 3 tagged tasks on private Exp(2) servers: first departure 1/6,
  // makespan = H_3 / 2.
  const auto res = net::tagged_reference(
      one_station(ph::PhaseType::exponential(2.0), 3), 3);
  EXPECT_EQ(res.states, 8u);  // (1 phase + done)^3
  EXPECT_NEAR(res.first_departure, 1.0 / 6.0, 1e-10);
  EXPECT_NEAR(res.makespan, (1.0 + 0.5 + 1.0 / 3.0) / 2.0, 1e-10);
}

TEST(TaggedReference, SharedExponentialServer) {
  // 2 tasks on one shared Exp(1) server: makespan = 2 (two services).
  const auto res = net::tagged_reference(
      one_station(ph::PhaseType::exponential(1.0), 1), 2);
  EXPECT_NEAR(res.first_departure, 1.0, 1e-10);
  EXPECT_NEAR(res.makespan, 2.0, 1e-10);
}

TEST(TaggedReference, MatchesReducedProductExponentialCluster) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(3, app);
  const auto tagged = net::tagged_reference(spec, 3);
  const core::TransientSolver solver(spec, 3);
  const la::Vector p3 = solver.initial_vector();
  EXPECT_NEAR(tagged.first_departure, solver.mean_epoch_time(3, p3),
              1e-8 * tagged.first_departure);
  EXPECT_NEAR(tagged.makespan, solver.makespan(3), 1e-8 * tagged.makespan);
}

TEST(TaggedReference, MatchesReducedProductWithErlangCpu) {
  cluster::ApplicationModel app = cluster::ApplicationModel::coarse_grained();
  cluster::ClusterShapes shapes;
  shapes.cpu = cluster::ServiceShape::erlang(2);
  const net::NetworkSpec spec = cluster::central_cluster(2, app, shapes);
  const auto tagged = net::tagged_reference(spec, 2);
  const core::TransientSolver solver(spec, 2);
  EXPECT_NEAR(tagged.makespan, solver.makespan(2), 1e-8 * tagged.makespan);
  EXPECT_NEAR(tagged.first_departure,
              solver.mean_epoch_time(2, solver.initial_vector()),
              1e-8 * tagged.first_departure);
}

TEST(TaggedReference, MatchesReducedProductWithHyperexponentialCpu) {
  cluster::ApplicationModel app = cluster::ApplicationModel::coarse_grained();
  cluster::ClusterShapes shapes;
  shapes.cpu = cluster::ServiceShape::hyperexponential(4.0);
  const net::NetworkSpec spec = cluster::central_cluster(2, app, shapes);
  const auto tagged = net::tagged_reference(spec, 2);
  const core::TransientSolver solver(spec, 2);
  EXPECT_NEAR(tagged.makespan, solver.makespan(2), 1e-8 * tagged.makespan);
}

TEST(TaggedReference, KroneckerSpaceIsExponentiallyLarger) {
  // The paper's point: tagged space is |codes|^K vs C(K + M - 1, K).
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(3, app);
  const auto tagged = net::tagged_reference(spec, 3);
  const net::StateSpace reduced(spec, 3);
  EXPECT_EQ(tagged.states, 125u);  // (4 phases + done)^3
  EXPECT_EQ(reduced.dimension(3), 20u);  // C(6, 3)
  EXPECT_GT(tagged.states, 6 * reduced.dimension(3));
}

TEST(TaggedReference, RejectsQueuedPhStations) {
  cluster::ApplicationModel app;
  cluster::ClusterShapes shapes;
  shapes.remote_disk = cluster::ServiceShape::hyperexponential(4.0);
  const net::NetworkSpec spec = cluster::central_cluster(2, app, shapes);
  EXPECT_THROW((void)net::tagged_reference(spec, 2), std::invalid_argument);
}

TEST(TaggedReference, RejectsHugeSpaces) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(16, app);
  EXPECT_THROW((void)net::tagged_reference(spec, 16), std::invalid_argument);
}

TEST(TaggedReference, Guards) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(2, app);
  EXPECT_THROW((void)net::tagged_reference(spec, 0), std::invalid_argument);
}
