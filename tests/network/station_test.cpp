// Tests for StationModel: local state counts, activities, arrivals, and the
// probability invariants each local state must satisfy.

#include "network/station.h"

#include <gtest/gtest.h>

#include <numeric>

#include "ph/fitting.h"

namespace net = finwork::net;
namespace ph = finwork::ph;

namespace {

net::StationModel make_model(ph::PhaseType svc, std::size_t mult,
                             std::size_t max_pop) {
  return net::StationModel({"S", std::move(svc), mult}, max_pop);
}

/// Sum of internal + completion probabilities of one activity.
double outcome_mass(const net::LocalActivity& a) {
  double s = 0.0;
  for (const auto& o : a.internal) s += o.probability;
  for (const auto& o : a.completion) s += o.probability;
  return s;
}

}  // namespace

TEST(StationModel, QueuedExponentialCounts) {
  const auto m = make_model(ph::PhaseType::exponential(1.0), 1, 5);
  for (std::size_t n = 0; n <= 5; ++n) EXPECT_EQ(m.count(n), 1u);
  EXPECT_EQ(m.total_codes(), 6u);
  EXPECT_FALSE(m.is_ample());
}

TEST(StationModel, AmpleExponentialCounts) {
  const auto m = make_model(ph::PhaseType::exponential(1.0), 5, 5);
  for (std::size_t n = 0; n <= 5; ++n) EXPECT_EQ(m.count(n), 1u);
  EXPECT_TRUE(m.is_ample());
}

TEST(StationModel, AmplePhCountsAreCompositions) {
  // Erlang-2, ample: count(n) = n + 1 (compositions of n into 2 parts).
  const auto m = make_model(ph::PhaseType::erlang(2, 1.0), 4, 4);
  for (std::size_t n = 0; n <= 4; ++n) EXPECT_EQ(m.count(n), n + 1);
}

TEST(StationModel, AmpleH3Counts) {
  // 3 phases: count(n) = C(n+2, 2).
  const auto m = make_model(
      ph::PhaseType::hyperexponential({0.2, 0.3, 0.5}, {1.0, 2.0, 3.0}), 4, 4);
  EXPECT_EQ(m.count(0), 1u);
  EXPECT_EQ(m.count(1), 3u);
  EXPECT_EQ(m.count(2), 6u);
  EXPECT_EQ(m.count(3), 10u);
}

TEST(StationModel, QueuedPhCounts) {
  // Single-server H2: one empty state, (n, phase) for n >= 1.
  const auto m = make_model(ph::hyperexponential_balanced(1.0, 4.0), 1, 3);
  EXPECT_EQ(m.count(0), 1u);
  EXPECT_EQ(m.count(1), 2u);
  EXPECT_EQ(m.count(2), 2u);
  EXPECT_EQ(m.count(3), 2u);
}

TEST(StationModel, MultiServerPhRejected) {
  EXPECT_THROW((void)make_model(ph::hyperexponential_balanced(1.0, 4.0), 2, 5),
               std::invalid_argument);
}

TEST(StationModel, MultiServerExponentialAllowed) {
  const auto m = make_model(ph::PhaseType::exponential(2.0), 3, 6);
  // Rate scales with min(n, c).
  EXPECT_DOUBLE_EQ(m.activities(1, 0)[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(m.activities(2, 0)[0].rate, 4.0);
  EXPECT_DOUBLE_EQ(m.activities(3, 0)[0].rate, 6.0);
  EXPECT_DOUBLE_EQ(m.activities(5, 0)[0].rate, 6.0);  // capped at c = 3
}

TEST(StationModel, ZeroMultiplicityRejected) {
  EXPECT_THROW((void)make_model(ph::PhaseType::exponential(1.0), 0, 3),
               std::invalid_argument);
}

TEST(StationModel, DecodeRoundTrips) {
  const auto m = make_model(ph::PhaseType::erlang(2, 1.0), 4, 4);
  for (std::size_t n = 0; n <= 4; ++n) {
    for (std::size_t idx = 0; idx < m.count(n); ++idx) {
      const auto [dn, didx] = m.decode(m.code_offset(n) + idx);
      EXPECT_EQ(dn, n);
      EXPECT_EQ(didx, idx);
    }
  }
  EXPECT_THROW((void)m.decode(m.total_codes()), std::out_of_range);
}

TEST(StationModel, EmptyStateHasNoActivities) {
  const auto m = make_model(ph::PhaseType::exponential(1.0), 1, 3);
  EXPECT_TRUE(m.activities(0, 0).empty());
}

TEST(StationModel, ActivityOutcomesAreStochastic) {
  // Every activity's outcome mass must be exactly 1 across all station kinds.
  const std::vector<net::StationModel> models = {
      make_model(ph::PhaseType::exponential(1.0), 1, 4),
      make_model(ph::PhaseType::exponential(1.0), 4, 4),
      make_model(ph::PhaseType::erlang(3, 1.0), 4, 4),
      make_model(ph::hyperexponential_balanced(1.0, 9.0), 1, 4),
      make_model(ph::PhaseType::erlang(2, 1.0), 1, 4),
  };
  for (const auto& m : models) {
    for (std::size_t n = 1; n <= 4; ++n) {
      for (std::size_t idx = 0; idx < m.count(n); ++idx) {
        for (const auto& act : m.activities(n, idx)) {
          EXPECT_NEAR(outcome_mass(act), 1.0, 1e-12)
              << m.describe(n, idx);
          EXPECT_GT(act.rate, 0.0);
        }
      }
    }
  }
}

TEST(StationModel, ArrivalOutcomesAreStochastic) {
  const std::vector<net::StationModel> models = {
      make_model(ph::PhaseType::exponential(1.0), 1, 4),
      make_model(ph::PhaseType::erlang(3, 1.0), 4, 4),
      make_model(ph::hyperexponential_balanced(1.0, 9.0), 1, 4),
  };
  for (const auto& m : models) {
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t idx = 0; idx < m.count(n); ++idx) {
        double mass = 0.0;
        for (const auto& o : m.arrival(n, idx)) mass += o.probability;
        EXPECT_NEAR(mass, 1.0, 1e-12) << m.describe(n, idx);
      }
    }
  }
}

TEST(StationModel, QueuedPhCompletionDrawsNextEntryPhase) {
  const auto m = make_model(
      ph::PhaseType::hyperexponential({0.3, 0.7}, {1.0, 5.0}), 1, 3);
  // In state (2, phase 0), a completion hands service to the next customer
  // whose phase follows the entrance vector.
  const auto acts = m.activities(2, 0);
  ASSERT_EQ(acts.size(), 1u);
  ASSERT_EQ(acts[0].completion.size(), 2u);
  EXPECT_NEAR(acts[0].completion[0].probability, 0.3, 1e-12);
  EXPECT_NEAR(acts[0].completion[1].probability, 0.7, 1e-12);
}

TEST(StationModel, QueuedPhDrainToEmpty) {
  const auto m = make_model(
      ph::PhaseType::hyperexponential({0.3, 0.7}, {1.0, 5.0}), 1, 3);
  const auto acts = m.activities(1, 1);
  ASSERT_EQ(acts.size(), 1u);
  ASSERT_EQ(acts[0].completion.size(), 1u);
  EXPECT_EQ(acts[0].completion[0].index, 0u);
  EXPECT_NEAR(acts[0].completion[0].probability, 1.0, 1e-12);
}

TEST(StationModel, AmplePhaseRatesScaleWithOccupancy) {
  const auto m = make_model(ph::PhaseType::erlang(2, 2.0), 4, 4);  // stage rate 1
  // Find the composition (3, 0): all three tasks in stage 1.
  for (std::size_t idx = 0; idx < m.count(3); ++idx) {
    const auto counts = m.phase_counts(3, idx);
    if (counts[0] == 3 && counts[1] == 0) {
      const auto acts = m.activities(3, idx);
      ASSERT_EQ(acts.size(), 1u);
      EXPECT_DOUBLE_EQ(acts[0].rate, 3.0);
      return;
    }
  }
  FAIL() << "composition (3,0) not found";
}

TEST(StationModel, PhaseCountsConsistent) {
  const auto m = make_model(ph::hyperexponential_balanced(1.0, 4.0), 1, 3);
  // Queued station: only the in-service customer carries a phase.
  const auto counts = m.phase_counts(3, 1);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(StationModel, DescribeProducesText) {
  const auto amp = make_model(ph::PhaseType::erlang(2, 1.0), 3, 3);
  EXPECT_FALSE(amp.describe(2, 0).empty());
  const auto q = make_model(ph::hyperexponential_balanced(1.0, 4.0), 1, 3);
  EXPECT_NE(q.describe(2, 1).find("ph="), std::string::npos);
  const auto e = make_model(ph::PhaseType::exponential(1.0), 1, 3);
  EXPECT_EQ(e.describe(2, 0), "n=2");
}
