// Tests for the thread pool and parallel loops.

#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace par = finwork::par;

TEST(ThreadPool, ConstructsRequestedThreads) {
  par::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  par::ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  par::ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  par::ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)fut.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  par::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelFor, CoversExactRange) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  par::parallel_for(pool, 0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  par::ThreadPool pool(2);
  bool touched = false;
  par::parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SmallRangeRunsInline) {
  par::ThreadPool pool(4);
  std::vector<int> order;
  // With grain larger than the range the loop runs on the calling thread in
  // order, so a non-atomic vector is safe.
  par::parallel_for(pool, 0, 4, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  }, 100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParallelFor, PropagatesFirstException) {
  par::ThreadPool pool(4);
  EXPECT_THROW((void)par::parallel_for(pool, 0, 100, [](std::size_t i) {
    if (i == 57) throw std::runtime_error("57");
  }),
               std::runtime_error);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<std::size_t> sum{0};
  par::parallel_for(0, 100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelSum, MatchesSerialSum) {
  par::ThreadPool pool(4);
  const double got = par::parallel_sum(pool, 0, 10000, [](std::size_t i) {
    return static_cast<double>(i) * 0.5;
  });
  EXPECT_DOUBLE_EQ(got, 0.5 * (10000.0 * 9999.0 / 2.0));
}

TEST(ParallelSum, DeterministicAcrossRuns) {
  par::ThreadPool pool(8);
  auto run = [&] {
    return par::parallel_sum(pool, 0, 100000, [](std::size_t i) {
      return 1.0 / (1.0 + static_cast<double>(i));
    });
  };
  const double first = run();
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_DOUBLE_EQ(run(), first);  // bitwise equal: chunk-ordered reduction
  }
}

TEST(ParallelSum, EmptyRangeIsZero) {
  par::ThreadPool pool(2);
  EXPECT_DOUBLE_EQ(
      par::parallel_sum(pool, 3, 3, [](std::size_t) { return 1.0; }), 0.0);
}

// ---- edge cases ------------------------------------------------------------

TEST(ParallelFor, InvertedRangeIsNoop) {
  par::ThreadPool pool(2);
  bool touched = false;
  par::parallel_for(pool, 9, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelSum, InvertedRangeIsZero) {
  par::ThreadPool pool(2);
  EXPECT_DOUBLE_EQ(
      par::parallel_sum(pool, 9, 3, [](std::size_t) { return 1.0; }), 0.0);
}

TEST(ThreadPoolSizeOne, SubmitAndLoopsStillWork) {
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  auto fut = pool.submit([] { return 7; });
  EXPECT_EQ(fut.get(), 7);

  std::vector<std::atomic<int>> hits(257);
  par::parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  const double got = par::parallel_sum(pool, 0, 1000, [](std::size_t i) {
    return static_cast<double>(i);
  });
  EXPECT_DOUBLE_EQ(got, 1000.0 * 999.0 / 2.0);
}

TEST(ThreadPoolSizeOne, ExceptionStillPropagates) {
  par::ThreadPool pool(1);
  EXPECT_THROW((void)par::parallel_for(pool, 0, 64,
                                       [](std::size_t i) {
                                         if (i == 13) {
                                           throw std::runtime_error("13");
                                         }
                                       },
                                       /*grain=*/4),
               std::runtime_error);
}

TEST(ParallelFor, EveryChunkThrowsFirstExceptionWins) {
  par::ThreadPool pool(4);
  // Small grain so every chunk raises; the contract is that *one* exception
  // (the first by chunk order) is rethrown, not a crash or a hang.
  try {
    par::parallel_for(pool, 0, 256,
                      [](std::size_t i) {
                        throw std::runtime_error(
                            "chunk " + std::to_string(i / 16));
                      },
                      /*grain=*/16);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // First by chunk order: chunk 0 (futures are drained in submit order).
    EXPECT_STREQ(e.what(), "chunk 0");
  }
  // The pool remains usable afterwards.
  auto fut = pool.submit([] { return 3; });
  EXPECT_EQ(fut.get(), 3);
}

TEST(ParallelSum, EveryChunkThrowsStillRethrows) {
  par::ThreadPool pool(3);
  EXPECT_THROW((void)par::parallel_sum(pool, 0, 128,
                                       [](std::size_t) -> double {
                                         throw std::runtime_error("all fail");
                                       },
                                       /*grain=*/8),
               std::runtime_error);
}
