// ThreadSanitizer-targeted stress tests for finwork::par::ThreadPool.
//
// These tests exist to give TSan (FINWORK_SANITIZE=thread / the debug-tsan
// preset) real contention to chew on: many producer threads hammering
// submit(), overlapping parallel_for / parallel_sum calls sharing one pool,
// exceptions crossing worker boundaries, and pool construction/destruction
// races.  They also pass under plain builds — every assertion is about
// observable results, not timing.

#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace par = finwork::par;

TEST(ThreadPoolStress, ConcurrentSubmittersAllTasksRun) {
  par::ThreadPool pool(4);
  static constexpr int kProducers = 8;
  static constexpr int kTasksPerProducer = 200;
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksPerProducer);
      for (int t = 0; t < kTasksPerProducer; ++t) {
        const int val = p * kTasksPerProducer + t;
        futures[p].push_back(pool.submit([&executed, val] {
          ++executed;
          return val;
        }));
      }
    });
  }
  for (auto& pr : producers) pr.join();

  long long sum = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) sum += f.get();
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
  const long long n = kProducers * kTasksPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ThreadPoolStress, OverlappingParallelForCallsShareOnePool) {
  par::ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kRange = 2000;
  std::vector<std::atomic<int>> hits(kRange);

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      par::parallel_for(pool, 0, kRange,
                        [&](std::size_t i) { ++hits[i]; });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), kCallers);
}

TEST(ThreadPoolStress, ConcurrentParallelSumsAreDeterministic) {
  par::ThreadPool pool(4);
  constexpr int kCallers = 6;
  const auto map = [](std::size_t i) {
    return 1.0 / (1.0 + static_cast<double>(i));
  };
  const double expected = par::parallel_sum(pool, 0, 20000, map);

  std::vector<double> results(kCallers, 0.0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      results[c] = par::parallel_sum(pool, 0, 20000, map);
    });
  }
  for (auto& t : callers) t.join();
  // Chunk-ordered reduction: bitwise equal no matter how calls interleave.
  for (double r : results) EXPECT_DOUBLE_EQ(r, expected);
}

TEST(ThreadPoolStress, ExceptionsPropagateAcrossWorkersUnderContention) {
  par::ThreadPool pool(4);
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran{0};
    EXPECT_THROW(
        (void)par::parallel_for(pool, 0, 512,
                                [&](std::size_t i) {
                                  ++ran;
                                  if (i % 64 == 3) {
                                    throw std::runtime_error("chunk failure");
                                  }
                                },
                                /*grain=*/8),
        std::runtime_error);
    // The pool survives and stays usable after the failed round.
    EXPECT_GT(ran.load(), 0);
    auto fut = pool.submit([] { return 1; });
    EXPECT_EQ(fut.get(), 1);
  }
}

TEST(ThreadPoolStress, PoolChurnWithInflightWork) {
  // Construct and destroy pools while tasks are still queued: the destructor
  // must drain the queue (no task lost) without racing worker shutdown.
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> done{0};
    {
      par::ThreadPool pool(3);
      for (int t = 0; t < 64; ++t) {
        (void)pool.submit([&done] { ++done; });
      }
      // Destructor runs here with most tasks still pending.
    }
    EXPECT_EQ(done.load(), 64);
  }
}

TEST(ThreadPoolStress, GlobalPoolSurvivesConcurrentMixedUse) {
  constexpr int kCallers = 4;
  std::atomic<long long> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      par::parallel_for(0, 500, [&](std::size_t i) {
        total += static_cast<long long>(i);
      });
      const double s = par::parallel_sum(par::ThreadPool::global(), 0, 500,
                                         [](std::size_t i) {
                                           return static_cast<double>(i);
                                         });
      EXPECT_DOUBLE_EQ(s, 500.0 * 499.0 / 2.0);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * (500LL * 499LL / 2LL));
}
