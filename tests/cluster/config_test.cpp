// Tests for the JSON experiment-config layer.

#include "cluster/config.h"

#include <gtest/gtest.h>

#include "core/transient_solver.h"

namespace cluster = finwork::cluster;
namespace io = finwork::io;

namespace {

cluster::ExperimentSpec parse(const char* text) {
  return cluster::parse_experiment(io::JsonValue::parse(text));
}

}  // namespace

TEST(Config, ShapeParsing) {
  using io::JsonValue;
  EXPECT_NEAR(cluster::parse_shape(JsonValue::parse(R"({"type":"exponential"})"))
                  .make(2.0)
                  .scv(),
              1.0, 1e-9);
  const auto e4 =
      cluster::parse_shape(JsonValue::parse(R"({"type":"erlang","stages":4})"))
          .make(2.0);
  EXPECT_NEAR(e4.scv(), 0.25, 1e-9);
  const auto h2 = cluster::parse_shape(
                      JsonValue::parse(R"({"type":"hyperexponential","scv":9})"))
                      .make(1.0);
  EXPECT_NEAR(h2.scv(), 9.0, 1e-7);
  const auto fit =
      cluster::parse_shape(JsonValue::parse(R"({"type":"scv","scv":0.4})"))
          .make(1.0);
  EXPECT_NEAR(fit.scv(), 0.4, 1e-7);
  const auto tpt = cluster::parse_shape(JsonValue::parse(
                       R"({"type":"power_tail","alpha":1.4,"levels":6})"))
                       .make(3.0);
  EXPECT_NEAR(tpt.mean(), 3.0, 1e-8);
  EXPECT_EQ(tpt.phases(), 6u);
  EXPECT_THROW((void)cluster::parse_shape(JsonValue::parse(R"({"type":"weird"})")),
               std::invalid_argument);
}

TEST(Config, ApplicationDefaultsAndOverrides) {
  const auto app = cluster::parse_application(
      io::JsonValue::parse(R"({"remote_share": 0.3})"));
  EXPECT_DOUBLE_EQ(app.remote_share, 0.3);
  EXPECT_DOUBLE_EQ(app.local_time, 10.5);  // default preserved
  const auto coarse = cluster::parse_application(
      io::JsonValue::parse(R"({"preset": "coarse_grained"})"));
  EXPECT_DOUBLE_EQ(coarse.mean_cycles, 2.0);
  EXPECT_THROW((void)cluster::parse_application(
                   io::JsonValue::parse(R"({"cpu_fraction": 2.0})")),
               std::invalid_argument);
}

TEST(Config, ClusterFormRoundTrip) {
  const auto spec = parse(R"({
    "architecture": "distributed",
    "workstations": 4,
    "tasks": 25,
    "shapes": {"remote_disk": {"type": "hyperexponential", "scv": 5}},
    "contention": "shared"
  })");
  ASSERT_TRUE(spec.config.has_value());
  EXPECT_EQ(spec.workstations, 4u);
  EXPECT_EQ(spec.tasks, 25u);
  const auto network = spec.build();
  EXPECT_EQ(network.num_stations(), 7u);  // CPU, LDisk, Comm, D1..D4
  EXPECT_NEAR(network.station(3).service.scv(), 5.0, 1e-7);
}

TEST(Config, NoContention) {
  const auto spec = parse(R"({
    "architecture": "central", "workstations": 3, "tasks": 5,
    "contention": "none"
  })");
  const auto network = spec.build();
  EXPECT_EQ(network.station(3).multiplicity, 3u);
}

TEST(Config, CustomNetworkForm) {
  const auto spec = parse(R"({
    "tasks": 10,
    "workstations": 2,
    "network": {
      "stations": [
        {"name": "A", "mean": 0.5, "multiplicity": 2,
         "shape": {"type": "erlang", "stages": 2}},
        {"name": "B", "mean": 0.2, "multiplicity": 1}
      ],
      "entry": [1, 0],
      "routing": [[0, 1], [0, 0]],
      "exit": [0, 1]
    }
  })");
  ASSERT_TRUE(spec.network.has_value());
  const auto network = spec.build();
  EXPECT_EQ(network.num_stations(), 2u);
  EXPECT_EQ(network.station(0).service.phases(), 2u);
  EXPECT_NEAR(network.single_customer().mean_task_time, 0.7, 1e-10);
  // The parsed network is solvable end to end.
  const finwork::core::TransientSolver solver(network, spec.workstations);
  EXPECT_GT(solver.makespan(spec.tasks), 0.0);
}

TEST(Config, SimulationAndOutputs) {
  const auto spec = parse(R"({
    "workstations": 2, "tasks": 4,
    "simulate": {"replications": 123, "seed": 9},
    "outputs": ["summary", "simulate"]
  })");
  EXPECT_EQ(spec.replications, 123u);
  EXPECT_EQ(spec.seed, 9u);
  ASSERT_EQ(spec.outputs.size(), 2u);
  EXPECT_EQ(spec.outputs[1], "simulate");
}

TEST(Config, ValidationErrors) {
  EXPECT_THROW((void)parse(R"({"architecture": "mesh"})"), std::invalid_argument);
  EXPECT_THROW((void)parse(R"({"contention": "maybe"})"), std::invalid_argument);
  EXPECT_THROW((void)parse(R"({"tasks": 0})"), std::invalid_argument);
  EXPECT_THROW((void)parse(R"({"workstations": 0, "tasks": 1})"),
               std::invalid_argument);
  // routing row width mismatch in the custom form
  EXPECT_THROW((void)parse(R"({
    "tasks": 1, "workstations": 1,
    "network": {"stations": [{"name": "A", "mean": 1}],
                "entry": [1], "routing": [[0, 0]], "exit": [1]}
  })"),
               std::invalid_argument);
}

TEST(Config, MissingRequiredShapeFieldThrows) {
  EXPECT_THROW((void)cluster::parse_shape(io::JsonValue::parse(R"({"type":"erlang"})")),
               io::JsonError);
}

TEST(Config, SweepParsing) {
  const auto spec = parse(R"({
    "workstations": 3, "tasks": 12,
    "sweep": {"parameter": "remote_scv", "values": [1, 10, 50]}
  })");
  EXPECT_EQ(spec.sweep_parameter, "remote_scv");
  ASSERT_EQ(spec.sweep_values.size(), 3u);
  const auto table = cluster::run_sweep(spec);
  ASSERT_EQ(table.num_rows(), 3u);
  // error grows with the swept scv; zero at scv = 1
  EXPECT_NEAR(table.at(0, 3), 0.0, 1e-6);
  EXPECT_GT(table.at(2, 3), table.at(1, 3));
}

TEST(Config, SweepOverWorkstations) {
  const auto spec = parse(R"({
    "workstations": 2, "tasks": 20,
    "sweep": {"parameter": "workstations", "values": [1, 2, 4]}
  })");
  const auto table = cluster::run_sweep(spec);
  // makespan shrinks with cluster size
  EXPECT_GT(table.at(0, 1), table.at(1, 1));
  EXPECT_GT(table.at(1, 1), table.at(2, 1));
  // speedup of 1 at K = 1
  EXPECT_NEAR(table.at(0, 2), 1.0, 1e-9);
}

TEST(Config, SweepValidation) {
  EXPECT_THROW(parse(R"({
    "workstations": 2, "tasks": 4,
    "sweep": {"parameter": "x", "values": []}
  })"),
               std::invalid_argument);
  const auto bad_param = parse(R"({
    "workstations": 2, "tasks": 4,
    "sweep": {"parameter": "warp_factor", "values": [1]}
  })");
  EXPECT_THROW((void)cluster::run_sweep(bad_param), std::invalid_argument);
  // sweeps on custom networks are rejected
  auto custom = parse(R"({
    "tasks": 2, "workstations": 1,
    "network": {"stations": [{"name": "A", "mean": 1}],
                "entry": [1], "routing": [[0]], "exit": [1]},
    "sweep": {"parameter": "tasks", "values": [1, 2]}
  })");
  EXPECT_THROW((void)cluster::run_sweep(custom), std::invalid_argument);
}
