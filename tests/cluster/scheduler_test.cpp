// Tests for the scheduling-overhead extension and for multiprogramming
// (more admitted tasks than workstations) — the two "more parameters can
// always be added" hooks the paper's conclusion mentions.

#include <gtest/gtest.h>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "pf/product_form.h"

namespace cluster = finwork::cluster;
namespace core = finwork::core;
namespace pf = finwork::pf;

TEST(SchedulerOverhead, AddsDispatcherStation) {
  cluster::ApplicationModel app;
  app.scheduler_overhead = 0.1;
  const auto central = cluster::central_cluster(4, app);
  ASSERT_EQ(central.num_stations(), 5u);
  EXPECT_EQ(central.station(4).name, "Sched");
  EXPECT_EQ(central.station(4).multiplicity, 1u);
  // Entry goes through the scheduler.
  EXPECT_DOUBLE_EQ(central.entry()[4], 1.0);
  const auto dist = cluster::distributed_cluster(3, app);
  ASSERT_EQ(dist.num_stations(), 7u);
  EXPECT_EQ(dist.station(6).name, "Sched");
}

TEST(SchedulerOverhead, ZeroOverheadKeepsLayout) {
  cluster::ApplicationModel app;
  const auto spec = cluster::central_cluster(4, app);
  EXPECT_EQ(spec.num_stations(), 4u);
}

TEST(SchedulerOverhead, SingleTaskTimeIncludesOverhead) {
  cluster::ApplicationModel app;
  app.scheduler_overhead = 0.25;
  EXPECT_NEAR(app.task_mean_time(), 12.25, 1e-12);
  const auto spec = cluster::central_cluster(3, app);
  EXPECT_NEAR(spec.single_customer().mean_task_time, 12.25, 1e-9);
}

TEST(SchedulerOverhead, SharedDispatcherHurtsLargeClusters) {
  // A serial dispatcher is a scalability ceiling: its damage grows with K.
  cluster::ApplicationModel with;
  with.scheduler_overhead = 0.4;
  cluster::ApplicationModel without;

  auto speedup_at = [&](std::size_t k, const cluster::ApplicationModel& app) {
    cluster::ExperimentConfig cfg;
    cfg.workstations = k;
    cfg.app = app;
    return cluster::cluster_speedup(cfg, 60);
  };
  const double loss4 = speedup_at(4, without) - speedup_at(4, with);
  const double loss8 = speedup_at(8, without) - speedup_at(8, with);
  EXPECT_GT(loss4, 0.0);
  EXPECT_GT(loss8, loss4);
}

TEST(SchedulerOverhead, NegativeRejected) {
  cluster::ApplicationModel app;
  app.scheduler_overhead = -0.1;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);
}

TEST(Multiprogramming, AdmittingMoreTasksThanWorkstations) {
  // Multiprogramming level L > K: the CPU bank (multiplicity K) saturates
  // and extra admitted tasks queue at it.  The exponential model supports
  // this directly; throughput must not decrease with L.
  cluster::ApplicationModel app;
  const auto spec = cluster::central_cluster(4, app);
  const core::TransientSolver at_k(spec, 4);
  const core::TransientSolver at_2k(spec, 8);
  const double x_k = at_k.steady_state().throughput;
  const double x_2k = at_2k.steady_state().throughput;
  EXPECT_GE(x_2k, x_k - 1e-9);
  // And it still agrees with product form (CPU bank becomes an M/M/4 node).
  EXPECT_NEAR(x_2k, pf::convolution(spec, 8).system_throughput, 1e-8);
}

TEST(Multiprogramming, DiminishingReturnsBeyondSaturation) {
  cluster::ApplicationModel app;
  const auto spec = cluster::central_cluster(3, app);
  const double x1 = core::TransientSolver(spec, 3).steady_state().throughput;
  const double x2 = core::TransientSolver(spec, 6).steady_state().throughput;
  const double x3 = core::TransientSolver(spec, 9).steady_state().throughput;
  EXPECT_GT(x2 - x1, x3 - x2);  // concave in the multiprogramming level
}
