// Tests for the figure experiment drivers: table shapes and the qualitative
// relationships each figure depends on.

#include "cluster/experiments.h"

#include <gtest/gtest.h>

namespace cluster = finwork::cluster;

namespace {

cluster::ExperimentConfig small_central() {
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kCentral;
  cfg.workstations = 3;
  return cfg;
}

}  // namespace

TEST(Experiments, BuildClusterDispatch) {
  cluster::ExperimentConfig cfg = small_central();
  EXPECT_EQ(cluster::build_cluster(cfg).num_stations(), 4u);
  cfg.architecture = cluster::Architecture::kDistributed;
  EXPECT_EQ(cluster::build_cluster(cfg).num_stations(), 6u);
}

TEST(Experiments, MakespanAndSpeedupConsistent) {
  const cluster::ExperimentConfig cfg = small_central();
  const double makespan = cluster::cluster_makespan(cfg, 12);
  const double sp = cluster::cluster_speedup(cfg, 12);
  EXPECT_NEAR(sp, 12.0 * cfg.app.task_mean_time() / makespan, 1e-12);
}

TEST(Experiments, PredictionErrorZeroForExponential) {
  // Exponentializing an already exponential cluster changes nothing.
  EXPECT_NEAR(cluster::cluster_prediction_error(small_central(), 10), 0.0,
              1e-8);
}

TEST(Experiments, PredictionErrorPositiveForHighVariance) {
  cluster::ExperimentConfig cfg = small_central();
  cfg.shapes.remote_disk = cluster::ServiceShape::hyperexponential(20.0);
  EXPECT_GT(cluster::cluster_prediction_error(cfg, 30), 1.0);
}

TEST(Experiments, InterdepartureSeriesShape) {
  const std::vector<cluster::ShapeVariant> variants = {
      {"Exp", {}},
      {"H2", [] {
         cluster::ClusterShapes s;
         s.remote_disk = cluster::ServiceShape::hyperexponential(10.0);
         return s;
       }()},
  };
  const auto table =
      cluster::interdeparture_series(small_central(), variants, 12);
  ASSERT_EQ(table.num_columns(), 3u);
  ASSERT_EQ(table.num_rows(), 12u);
  // Task order column is 1..N.
  EXPECT_DOUBLE_EQ(table.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.at(11, 0), 12.0);
  // All epoch times positive.
  for (std::size_t r = 0; r < 12; ++r) {
    EXPECT_GT(table.at(r, 1), 0.0);
    EXPECT_GT(table.at(r, 2), 0.0);
  }
}

TEST(Experiments, SteadyStateVsScvShape) {
  const auto table =
      cluster::steady_state_vs_scv(small_central(), {1.0, 10.0, 30.0});
  ASSERT_EQ(table.num_rows(), 3u);
  ASSERT_EQ(table.num_columns(), 3u);
  // Contention: t_ss grows with C2 beyond some point; at least it must
  // exceed the no-contention value which stays flat.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_GE(table.at(r, 1), table.at(r, 2) - 1e-9);
  }
  // No contention is distribution-insensitive.
  EXPECT_NEAR(table.at(0, 2), table.at(2, 2), 1e-6);
}

TEST(Experiments, PredictionErrorSweepShape) {
  const auto table = cluster::prediction_error_vs_scv(
      small_central(), {1.0, 10.0, 40.0}, {9, 30});
  ASSERT_EQ(table.num_rows(), 3u);
  ASSERT_EQ(table.num_columns(), 3u);
  // C2 = 1 row is ~0 error.
  EXPECT_NEAR(table.at(0, 1), 0.0, 1e-6);
  EXPECT_NEAR(table.at(0, 2), 0.0, 1e-6);
  // Error grows with C2.
  EXPECT_GT(table.at(2, 2), table.at(1, 2));
  EXPECT_GT(table.at(1, 2), table.at(0, 2));
}

TEST(Experiments, SpeedupSweepDecreasesWithScv) {
  const auto table =
      cluster::speedup_vs_scv(small_central(), {1.0, 20.0, 60.0}, {30});
  ASSERT_EQ(table.num_rows(), 3u);
  EXPECT_GT(table.at(0, 1), table.at(1, 1));
  EXPECT_GT(table.at(1, 1), table.at(2, 1));
}

TEST(Experiments, CpuScvSweepUsesDedicatedServers) {
  const auto table = cluster::prediction_error_vs_cpu_scv(
      small_central(), {1.0 / 3.0, 1.0, 5.0}, {20});
  ASSERT_EQ(table.num_rows(), 3u);
  // Erlang CPU (C2 < 1): small error; H2 CPU: larger positive error.
  EXPECT_NEAR(table.at(1, 1), 0.0, 1e-6);
  EXPECT_GT(table.at(2, 1), table.at(1, 1));
}

TEST(Experiments, SpeedupVsKGrowsWithTasks) {
  const auto table = cluster::speedup_vs_k(small_central(), {1, 2, 4}, {8, 40});
  ASSERT_EQ(table.num_rows(), 3u);
  ASSERT_EQ(table.num_columns(), 3u);
  // K = 1 speedup is exactly 1.
  EXPECT_NEAR(table.at(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(table.at(0, 2), 1.0, 1e-9);
  // Bigger workloads exploit the cluster better (steady region dominates).
  EXPECT_GT(table.at(2, 2), table.at(2, 1));
}

TEST(Experiments, SpeedupVsKShapesOrdersDistributions) {
  const std::vector<cluster::ShapeVariant> variants = {
      {"Exp", {}},
      {"E2", [] {
         cluster::ClusterShapes s;
         s.cpu = cluster::ServiceShape::erlang(2);
         return s;
       }()},
      {"H2", [] {
         cluster::ClusterShapes s;
         s.cpu = cluster::ServiceShape::hyperexponential(2.0);
         return s;
       }()},
  };
  const auto table =
      cluster::speedup_vs_k_shapes(small_central(), {2, 4}, variants, 30);
  ASSERT_EQ(table.num_rows(), 2u);
  ASSERT_EQ(table.num_columns(), 4u);
  // H2 CPU lowers speedup versus Exp; E2 does not lower it.
  EXPECT_GE(table.at(1, 2) + 1e-9, table.at(1, 3));
  EXPECT_GE(table.at(1, 1) + 1e-9, table.at(1, 3));
}
