// Tests for the application model's derived parameters.

#include "cluster/app_model.h"

#include <gtest/gtest.h>

namespace cluster = finwork::cluster;

TEST(AppModel, DefaultsReproducePaperTaskTime) {
  const cluster::ApplicationModel app;
  EXPECT_NEAR(app.task_mean_time(), 12.0, 1e-12);
  app.validate();
}

TEST(AppModel, DerivedParameters) {
  const cluster::ApplicationModel app;
  EXPECT_DOUBLE_EQ(app.q(), 0.05);
  EXPECT_DOUBLE_EQ(app.p1() + app.p2(), 1.0);
  // Per-visit service times reproduce the time totals:
  // CPU: t_cpu / q = C X.
  EXPECT_NEAR(app.cpu_service() / app.q(),
              app.cpu_fraction * app.local_time, 1e-12);
  // Local disk: t_d p1 (1-q) / q = (1-C) X.
  EXPECT_NEAR(app.local_disk_service() * app.p1() * (1.0 - app.q()) / app.q(),
              (1.0 - app.cpu_fraction) * app.local_time, 1e-12);
  // Remote disk: t_rd p2 (1-q) / q = Y.
  EXPECT_NEAR(app.remote_disk_service() * app.p2() * (1.0 - app.q()) / app.q(),
              app.remote_time, 1e-12);
  // Comm: t_com p2 (1-q) / q = B Y.
  EXPECT_NEAR(app.comm_service() * app.p2() * (1.0 - app.q()) / app.q(),
              app.comm_factor * app.remote_time, 1e-12);
}

TEST(AppModel, TaskTimeDecomposition) {
  cluster::ApplicationModel app;
  app.local_time = 6.0;
  app.remote_time = 2.0;
  app.comm_factor = 0.5;
  EXPECT_NEAR(app.task_mean_time(), 6.0 + 1.5 * 2.0, 1e-12);
}

TEST(AppModel, ValidationCatchesBadParameters) {
  cluster::ApplicationModel app;
  app.local_time = 0.0;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);

  app = {};
  app.cpu_fraction = 0.0;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);
  app.cpu_fraction = 1.5;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);

  app = {};
  app.remote_time = -1.0;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);

  app = {};
  app.comm_factor = -0.1;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);

  app = {};
  app.mean_cycles = 1.0;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);

  app = {};
  app.remote_share = 0.0;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);
  app.remote_share = 1.0;
  EXPECT_THROW((void)app.validate(), std::invalid_argument);
}

TEST(AppModel, CpuFractionOneHasNoDiskTime) {
  cluster::ApplicationModel app;
  app.cpu_fraction = 1.0;
  app.validate();
  EXPECT_DOUBLE_EQ(app.local_disk_service(), 0.0);
}
