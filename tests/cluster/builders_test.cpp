// Tests for the central/distributed cluster builders and service shapes.

#include "cluster/builders.h"

#include <gtest/gtest.h>

#include "core/transient_solver.h"

namespace cluster = finwork::cluster;
namespace net = finwork::net;

TEST(ServiceShape, FactoriesProduceRequestedMeanAndShape) {
  const double mean = 0.8;
  EXPECT_NEAR(cluster::ServiceShape::exponential().make(mean).mean(), mean,
              1e-12);
  const auto e3 = cluster::ServiceShape::erlang(3).make(mean);
  EXPECT_NEAR(e3.mean(), mean, 1e-12);
  EXPECT_NEAR(e3.scv(), 1.0 / 3.0, 1e-10);
  const auto h2 = cluster::ServiceShape::hyperexponential(10.0).make(mean);
  EXPECT_NEAR(h2.mean(), mean, 1e-10);
  EXPECT_NEAR(h2.scv(), 10.0, 1e-8);
  const auto fit = cluster::ServiceShape::from_scv(0.5).make(mean);
  EXPECT_NEAR(fit.scv(), 0.5, 1e-8);
  const auto tpt = cluster::ServiceShape::power_tail(1.4).make(mean);
  EXPECT_NEAR(tpt.mean(), mean, 1e-9);
}

TEST(CentralCluster, StationLayout) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(6, app);
  ASSERT_EQ(spec.num_stations(), 4u);
  EXPECT_EQ(spec.station(0).name, "CPU");
  EXPECT_EQ(spec.station(0).multiplicity, 6u);   // dedicated
  EXPECT_EQ(spec.station(1).multiplicity, 6u);   // dedicated
  EXPECT_EQ(spec.station(2).multiplicity, 1u);   // shared comm
  EXPECT_EQ(spec.station(3).multiplicity, 1u);   // shared central disk
}

TEST(CentralCluster, NoContentionReplicatesSharedDevices) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(
      6, app, {}, cluster::Contention::kNone);
  EXPECT_EQ(spec.station(2).multiplicity, 6u);
  EXPECT_EQ(spec.station(3).multiplicity, 6u);
}

TEST(CentralCluster, MeanTaskTimePreservedAcrossShapes) {
  cluster::ApplicationModel app;
  for (double scv : {0.5, 1.0, 10.0, 50.0}) {
    cluster::ClusterShapes shapes;
    shapes.remote_disk = cluster::ServiceShape::from_scv(scv);
    shapes.cpu = cluster::ServiceShape::from_scv(scv);
    const net::NetworkSpec spec = cluster::central_cluster(4, app, shapes);
    EXPECT_NEAR(spec.single_customer().mean_task_time, 12.0, 1e-8) << scv;
  }
}

TEST(CentralCluster, RoutingProbabilitiesMatchAppModel) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(4, app);
  const double q = app.q();
  EXPECT_NEAR(spec.exit()[0], q, 1e-12);
  EXPECT_NEAR(spec.routing()(0, 1), (1.0 - q) * app.p1(), 1e-12);
  EXPECT_NEAR(spec.routing()(0, 2), (1.0 - q) * app.p2(), 1e-12);
  EXPECT_NEAR(spec.routing()(2, 3), 1.0, 1e-12);
  EXPECT_NEAR(spec.routing()(3, 0), 1.0, 1e-12);
}

TEST(CentralCluster, GuardsZeroWorkstations) {
  cluster::ApplicationModel app;
  EXPECT_THROW((void)cluster::central_cluster(0, app), std::invalid_argument);
}

TEST(DistributedCluster, StationLayout) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::distributed_cluster(5, app);
  ASSERT_EQ(spec.num_stations(), 8u);  // CPU, LDisk, Comm, D1..D5
  EXPECT_EQ(spec.station(3).name, "D1");
  EXPECT_EQ(spec.station(7).name, "D5");
  EXPECT_EQ(spec.station(3).multiplicity, 1u);
}

TEST(DistributedCluster, UniformAllocationByDefault) {
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::distributed_cluster(4, app);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(spec.routing()(2, 3 + i), 0.25, 1e-12);
  }
}

TEST(DistributedCluster, CustomAllocation) {
  cluster::ApplicationModel app;
  const std::vector<double> alloc{0.7, 0.1, 0.1, 0.1};
  const net::NetworkSpec spec =
      cluster::distributed_cluster(4, app, {}, alloc);
  EXPECT_NEAR(spec.routing()(2, 3), 0.7, 1e-12);
  // Mean task time is allocation-invariant (same disk speed everywhere).
  EXPECT_NEAR(spec.single_customer().mean_task_time, 12.0, 1e-9);
}

TEST(DistributedCluster, AllocationValidation) {
  cluster::ApplicationModel app;
  EXPECT_THROW((void)cluster::distributed_cluster(3, app, {}, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW((void)cluster::distributed_cluster(2, app, {}, {0.7, 0.7}),
               std::invalid_argument);
  EXPECT_THROW((void)cluster::distributed_cluster(2, app, {}, {-0.5, 1.5}),
               std::invalid_argument);
}

TEST(DistributedCluster, SameSingleTaskTimeAsCentral) {
  // A lone task sees identical time totals in both architectures.
  cluster::ApplicationModel app;
  const double central =
      cluster::central_cluster(5, app).single_customer().mean_task_time;
  const double dist =
      cluster::distributed_cluster(5, app).single_customer().mean_task_time;
  EXPECT_NEAR(central, dist, 1e-9);
}

TEST(DistributedCluster, SpreadsRemoteLoad) {
  // With contention, distributing storage must beat the central bottleneck
  // in steady-state inter-departure time.
  cluster::ApplicationModel app;
  app.remote_share = 0.45;  // make the remote path hot
  const finwork::core::TransientSolver central(
      cluster::central_cluster(5, app), 5);
  const finwork::core::TransientSolver dist(
      cluster::distributed_cluster(5, app), 5);
  EXPECT_LT(dist.steady_state().interdeparture,
            central.steady_state().interdeparture);
}
