// Unit and property tests for the PLU factorization: solves, transpose
// solves, inverse, determinant, conditioning.

#include "linalg/lu.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace la = finwork::la;

namespace {

la::Matrix random_matrix(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m(r, c) = dist(gen);
  }
  // Diagonal dominance guarantees nonsingularity.
  for (std::size_t i = 0; i < n; ++i) m(i, i) += 5.0;
  return m;
}

}  // namespace

TEST(Lu, SolvesKnownSystem) {
  la::Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const la::Vector x = la::solve(a, la::Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolveLeftSolvesRowSystem) {
  la::Matrix a{{2.0, 1.0}, {0.5, 3.0}};
  la::Vector b{1.0, 2.0};
  const la::Vector x = la::solve_left(a, b);
  // x a = b
  EXPECT_TRUE(la::allclose(x * a, b));
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW((void)la::LuDecomposition(la::Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SingularThrows) {
  la::Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW((void)la::LuDecomposition{a}, std::runtime_error);
}

TEST(Lu, ZeroPivotNeedsRowExchange) {
  // A(0,0) = 0 forces pivoting; must still solve correctly.
  la::Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const la::Vector x = la::solve(a, la::Vector{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const la::Matrix a = random_matrix(6, 1);
  const la::Matrix inv = la::inverse(a);
  EXPECT_TRUE(la::allclose(a * inv, la::identity(6), 1e-9, 1e-10));
  EXPECT_TRUE(la::allclose(inv * a, la::identity(6), 1e-9, 1e-10));
}

TEST(Lu, DeterminantOfKnownMatrices) {
  EXPECT_NEAR(la::determinant(la::Matrix{{3.0}}), 3.0, 1e-14);
  EXPECT_NEAR(la::determinant(la::Matrix{{1.0, 2.0}, {3.0, 4.0}}), -2.0, 1e-12);
  EXPECT_NEAR(la::determinant(la::identity(5)), 1.0, 1e-14);
  // Permutation matrix has determinant -1 (odd swap).
  la::Matrix p{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(la::determinant(p), -1.0, 1e-14);
}

TEST(Lu, DeterminantMultiplicative) {
  const la::Matrix a = random_matrix(4, 7);
  const la::Matrix b = random_matrix(4, 8);
  EXPECT_NEAR(la::determinant(a * b),
              la::determinant(a) * la::determinant(b),
              1e-6 * std::abs(la::determinant(a) * la::determinant(b)));
}

TEST(Lu, SolveMatrixRhs) {
  const la::Matrix a = random_matrix(5, 2);
  const la::Matrix b = random_matrix(5, 3);
  const la::Matrix x = la::LuDecomposition(a).solve(b);
  EXPECT_TRUE(la::allclose(a * x, b, 1e-9, 1e-10));
}

TEST(Lu, RcondReasonableForWellConditioned) {
  const la::LuDecomposition lu(la::identity(4));
  EXPECT_GT(lu.rcond_estimate(), 0.1);
}

TEST(Lu, RcondSmallForNearSingular) {
  la::Matrix a{{1.0, 1.0}, {1.0, 1.0 + 1e-12}};
  const la::LuDecomposition lu(a);
  EXPECT_LT(lu.rcond_estimate(), 1e-9);
}

TEST(Lu, SizeMismatchThrows) {
  la::LuDecomposition lu(la::identity(3));
  EXPECT_THROW((void)lu.solve(la::Vector(2)), std::invalid_argument);
  EXPECT_THROW((void)lu.solve_left(la::Vector(4)), std::invalid_argument);
}

// Property sweep: random systems of several sizes round-trip through solve
// and solve_left.
class LuRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRoundTrip, SolveResidualSmall) {
  const std::size_t n = GetParam();
  const la::Matrix a = random_matrix(n, static_cast<unsigned>(n));
  la::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i));
  const la::LuDecomposition lu(a);
  EXPECT_TRUE(la::allclose(a * lu.solve(b), b, 1e-9, 1e-10));
  EXPECT_TRUE(la::allclose(lu.solve_left(b) * a, b, 1e-9, 1e-10));
}

TEST_P(LuRoundTrip, LeftAndRightSolvesAgreeThroughTranspose) {
  const std::size_t n = GetParam();
  const la::Matrix a = random_matrix(n, static_cast<unsigned>(n) + 100);
  la::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = std::cos(static_cast<double>(i));
  const la::Vector left = la::LuDecomposition(a).solve_left(b);
  const la::Vector right = la::LuDecomposition(a.transposed()).solve(b);
  EXPECT_TRUE(la::allclose(left, right, 1e-9, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));
