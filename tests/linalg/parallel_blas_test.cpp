// Tests for the blocked parallel dense kernels: exact agreement with the
// serial reference across shapes, blocks and thread counts.

#include "linalg/parallel_blas.h"

#include <gtest/gtest.h>

#include <random>

namespace la = finwork::la;
namespace par = finwork::par;

namespace {

la::Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  la::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = dist(gen);
  }
  return m;
}

}  // namespace

TEST(ParallelBlas, MatchesSerialBitwiseSquare) {
  par::ThreadPool pool(4);
  const la::Matrix a = random_matrix(97, 97, 1);
  const la::Matrix b = random_matrix(97, 97, 2);
  const la::Matrix serial = a * b;
  const la::Matrix parallel = la::multiply_blocked(a, b, pool, 16);
  ASSERT_EQ(parallel.rows(), serial.rows());
  for (std::size_t r = 0; r < serial.rows(); ++r) {
    for (std::size_t c = 0; c < serial.cols(); ++c) {
      EXPECT_EQ(parallel(r, c), serial(r, c)) << r << "," << c;
    }
  }
}

TEST(ParallelBlas, MatchesSerialRectangular) {
  par::ThreadPool pool(3);
  const la::Matrix a = random_matrix(31, 77, 3);
  const la::Matrix b = random_matrix(77, 13, 4);
  EXPECT_EQ(la::multiply_blocked(a, b, pool, 8), a * b);
}

TEST(ParallelBlas, DimensionMismatchThrows) {
  par::ThreadPool pool(2);
  EXPECT_THROW((void)la::multiply_blocked(la::Matrix(2, 3), la::Matrix(2, 3), pool),
               std::invalid_argument);
  EXPECT_THROW((void)la::multiply_blocked(la::identity(2), la::identity(2), pool, 0),
      std::invalid_argument);
}

TEST(ParallelBlas, GlobalPoolOverload) {
  const la::Matrix a = random_matrix(40, 40, 5);
  EXPECT_EQ(la::multiply_blocked(a, la::identity(40)), a);
}

TEST(ParallelBlas, IdentityNeutral) {
  par::ThreadPool pool(4);
  const la::Matrix a = random_matrix(65, 65, 6);
  EXPECT_EQ(la::multiply_blocked(la::identity(65), a, pool), a);
  EXPECT_EQ(la::multiply_blocked(a, la::identity(65), pool), a);
}

TEST(ParallelBlas, VectorActionMatchesSerial) {
  par::ThreadPool pool(4);
  const la::Matrix a = random_matrix(300, 211, 7);
  la::Vector x(300);
  std::mt19937 gen(8);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : x) v = dist(gen);
  EXPECT_EQ(la::multiply_left_parallel(x, a, pool), x * a);
}

TEST(ParallelBlas, VectorActionDimensionThrows) {
  par::ThreadPool pool(2);
  EXPECT_THROW((void)la::multiply_left_parallel(la::Vector(3), la::Matrix(2, 2), pool),
               std::invalid_argument);
}

// Property: agreement holds across block sizes and thread counts.
class BlockSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockSweep, AllBlocksAgree) {
  par::ThreadPool pool(GetParam() % 3 + 1);
  const la::Matrix a = random_matrix(50, 60, 100 + GetParam());
  const la::Matrix b = random_matrix(60, 45, 200 + GetParam());
  EXPECT_EQ(la::multiply_blocked(a, b, pool, GetParam()), a * b);
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSweep,
                         ::testing::Values(1, 2, 7, 16, 64, 1000));
