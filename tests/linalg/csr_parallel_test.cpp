// Determinism contract of the parallel CSR actions: apply_parallel is
// bitwise identical to the serial kernel (disjoint row ownership), and
// apply_left_parallel is bitwise reproducible run to run (fixed panel
// split, fixed merge order) even though its merge reassociates additions
// relative to the serial kernel.  Also covers the nested-dispatch guard:
// both kernels fall back to the serial path on a pool worker instead of
// deadlocking the pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cluster/experiments.h"
#include "core/transient_solver.h"
#include "linalg/sparse.h"
#include "network/state_space.h"
#include "parallel/thread_pool.h"

namespace {

using namespace finwork;

// Deterministic LCG so the fixture needs no <random> seeding subtleties.
std::uint64_t lcg(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

// A CSR matrix big enough to clear the parallel nnz threshold (2^15).
la::CsrMatrix make_matrix(std::size_t rows, std::size_t cols,
                          std::size_t nnz_per_row, std::uint64_t seed) {
  std::vector<la::Triplet> trips;
  trips.reserve(rows * nnz_per_row);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < nnz_per_row; ++j) {
      const std::size_t c = lcg(seed) % cols;
      const double v =
          (static_cast<double>(lcg(seed) % 2000) - 1000.0) / 977.0;
      trips.push_back({r, c, v});
    }
  }
  return la::CsrMatrix(rows, cols, std::move(trips));
}

la::Vector make_vector(std::size_t n, std::uint64_t seed) {
  la::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (static_cast<double>(lcg(seed) % 2000) - 1000.0) / 491.0;
  }
  return x;
}

TEST(CsrParallelTest, ApplyParallelIsBitwiseSerial) {
  const la::CsrMatrix a = make_matrix(2500, 1800, 20, 7);
  ASSERT_GE(a.nnz(), std::size_t{1} << 15);
  const la::Vector x = make_vector(a.cols(), 11);
  par::ThreadPool pool(4);
  const la::Vector serial = a.apply(x);
  const la::Vector parallel = a.apply_parallel(x, pool);
  EXPECT_EQ(serial, parallel);  // bitwise: each row owned by one panel
}

TEST(CsrParallelTest, ApplyLeftParallelIsReproducibleAndCorrect) {
  const la::CsrMatrix a = make_matrix(2500, 1800, 20, 13);
  const la::Vector x = make_vector(a.rows(), 17);
  par::ThreadPool pool(4);
  const la::Vector serial = a.apply_left(x);
  const la::Vector first = a.apply_left_parallel(x, pool);
  EXPECT_TRUE(la::allclose(first, serial, 1e-13, 1e-13));
  for (int run = 0; run < 5; ++run) {
    const la::Vector again = a.apply_left_parallel(x, pool);
    EXPECT_EQ(first, again);  // bitwise run-to-run
  }
}

TEST(CsrParallelTest, ApplyLeftAddAccumulatesInPlace) {
  const la::CsrMatrix a = make_matrix(300, 200, 8, 19);
  const la::Vector x = make_vector(a.rows(), 23);
  la::Vector y(a.cols(), 0.0);
  a.apply_left_add(x, y);
  EXPECT_EQ(y, a.apply_left(x));
  a.apply_left_add(x, y);  // second pass accumulates
  const la::Vector twice = a.apply_left(x) + a.apply_left(x);
  EXPECT_TRUE(la::allclose(y, twice, 1e-14, 1e-14));
}

TEST(CsrParallelTest, NestedCallsOnWorkerFallBackSerially) {
  const la::CsrMatrix a = make_matrix(2500, 1800, 20, 29);
  const la::Vector x = make_vector(a.cols(), 31);
  const la::Vector xl = make_vector(a.rows(), 37);
  par::ThreadPool pool(4);
  const la::Vector serial = a.apply(x);
  const la::Vector serial_left = a.apply_left(xl);
  // From inside a worker the kernels must not fan out again (deadlock
  // hazard) — and the serial fallback keeps the results bitwise identical.
  auto fut = pool.submit([&] {
    EXPECT_TRUE(par::ThreadPool::on_worker_thread());
    const la::Vector nested = a.apply_parallel(x, pool);
    const la::Vector nested_left = a.apply_left_parallel(xl, pool);
    return nested == serial && nested_left == serial_left;
  });
  EXPECT_TRUE(fut.get());
  EXPECT_FALSE(par::ThreadPool::on_worker_thread());
}

TEST(CsrParallelTest, ConcurrentLevelAccessBuildsOnce) {
  // StateSpace::level is documented thread-safe: hammer every level from
  // many threads; call_once must serialise the builders and everyone must
  // see fully built matrices.
  cluster::ExperimentConfig cfg;
  cfg.architecture = cluster::Architecture::kDistributed;
  cfg.workstations = 4;
  const net::NetworkSpec spec = cluster::build_cluster(cfg);
  core::SolverOptions opts;
  opts.prebuild_levels = false;  // the threads below do the building
  const core::TransientSolver solver(spec, cfg.workstations, opts);
  const net::StateSpace& space = solver.space();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (std::size_t k = 1; k <= cfg.workstations; ++k) {
        const net::LevelMatrices& lm = space.level(k);
        if (lm.level != k || lm.p.rows() != space.dimension(k) ||
            lm.event_rates.size() != space.dimension(k) ||
            lm.max_event_rate <= 0.0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
