// Unit tests for the dense Matrix/Vector types.

#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace la = finwork::la;

TEST(Vector, ConstructionAndAccess) {
  la::Vector v(3, 2.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  v[1] = -1.0;
  EXPECT_DOUBLE_EQ(v[1], -1.0);
}

TEST(Vector, InitializerList) {
  la::Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(Vector, SumAndNorms) {
  la::Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.sum(), -1.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(v.norm1(), 7.0);
}

TEST(Vector, Arithmetic) {
  la::Vector a{1.0, 2.0};
  la::Vector b{3.0, 5.0};
  EXPECT_EQ(a + b, (la::Vector{4.0, 7.0}));
  EXPECT_EQ(b - a, (la::Vector{2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (la::Vector{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (la::Vector{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (la::Vector{1.5, 2.5}));
}

TEST(Vector, DotAndAxpy) {
  la::Vector a{1.0, 2.0, 3.0};
  la::Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(la::dot(a, b), 32.0);
  la::axpy(2.0, a, b);
  EXPECT_EQ(b, (la::Vector{6.0, 9.0, 12.0}));
}

TEST(Vector, OnesAndUnit) {
  EXPECT_DOUBLE_EQ(la::ones(4).sum(), 4.0);
  const la::Vector e = la::unit(3, 1);
  EXPECT_DOUBLE_EQ(e[0], 0.0);
  EXPECT_DOUBLE_EQ(e[1], 1.0);
  EXPECT_DOUBLE_EQ(e[2], 0.0);
}

TEST(Vector, Fill) {
  la::Vector v(3, 1.0);
  v.fill(7.0);
  EXPECT_EQ(v, (la::Vector{7.0, 7.0, 7.0}));
}

TEST(Matrix, ConstructionAndAccess) {
  la::Matrix m(2, 3, 1.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  m(1, 2) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(Matrix, InitializerList) {
  la::Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(m.square());
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((void)(la::Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const la::Matrix i = la::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i.trace(), 3.0);
}

TEST(Matrix, Transposed) {
  la::Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const la::Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatMul) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const la::Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatMulDimensionMismatchThrows) {
  la::Matrix a(2, 3);
  la::Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
}

TEST(Matrix, MatVec) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::Vector x{1.0, 1.0};
  EXPECT_EQ(a * x, (la::Vector{3.0, 7.0}));
}

TEST(Matrix, VecMatIsRowAction) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::Vector x{1.0, 1.0};
  EXPECT_EQ(x * a, (la::Vector{4.0, 6.0}));
}

TEST(Matrix, VecMatMatchesTransposedMatVec) {
  la::Matrix a{{1.0, -2.0, 0.5}, {3.0, 4.0, -1.0}, {0.0, 2.0, 7.0}};
  la::Vector x{0.2, -1.5, 3.0};
  EXPECT_TRUE(la::allclose(x * a, a.transposed() * x));
}

TEST(Matrix, DiagonalAndDiagOf) {
  const la::Matrix d = la::diagonal(la::Vector{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_EQ(la::diag_of(d), (la::Vector{1.0, 2.0, 3.0}));
}

TEST(Matrix, Norms) {
  la::Matrix m{{1.0, -2.0}, {-3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.norm_inf(), 7.0);  // max row sum of abs
  EXPECT_DOUBLE_EQ(m.norm1(), 6.0);     // max col sum of abs
  EXPECT_DOUBLE_EQ(m.norm_frobenius() * m.norm_frobenius(), 30.0);
}

TEST(Matrix, Arithmetic) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((a * 3.0)(0, 1), 6.0);
}

TEST(Matrix, TraceRequiresSquare) {
  EXPECT_THROW((void)la::Matrix(2, 3).trace(), std::invalid_argument);
}

TEST(Allclose, RespectsTolerances) {
  la::Matrix a{{1.0}};
  la::Matrix b{{1.0 + 1e-13}};
  EXPECT_TRUE(la::allclose(a, b));
  la::Matrix c{{1.1}};
  EXPECT_FALSE(la::allclose(a, c));
  EXPECT_FALSE(la::allclose(la::Matrix(1, 2), la::Matrix(2, 1)));
}

TEST(Printing, StreamsWithoutCrashing) {
  std::ostringstream ss;
  ss << la::Vector{1.0, 2.0} << la::Matrix{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NE(ss.str().find("1"), std::string::npos);
}
