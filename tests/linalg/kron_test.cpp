// Tests for Kronecker products and sums.

#include "linalg/kron.h"

#include <gtest/gtest.h>

#include "linalg/expm.h"

namespace la = finwork::la;

TEST(Kron, KnownProduct) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  la::Matrix b{{0.0, 5.0}, {6.0, 7.0}};
  const la::Matrix k = la::kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // a00 * b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // a00 * b10
  EXPECT_DOUBLE_EQ(k(2, 1), 15.0);   // a10 * b01
  EXPECT_DOUBLE_EQ(k(2, 3), 20.0);   // a11 * b01
  EXPECT_DOUBLE_EQ(k(3, 3), 28.0);   // a11 * b11
}

TEST(Kron, IdentityIsNeutralUpToPermutation) {
  la::Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(la::allclose(la::kron(la::identity(1), a), a));
  EXPECT_TRUE(la::allclose(la::kron(a, la::identity(1)), a));
}

TEST(Kron, MixedProductProperty) {
  // (A (x) B)(C (x) D) = (AC) (x) (BD)
  la::Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  la::Matrix b{{2.0, 0.0}, {1.0, 1.0}};
  la::Matrix c{{0.5, 1.0}, {1.0, 0.0}};
  la::Matrix d{{1.0, 1.0}, {0.0, 2.0}};
  EXPECT_TRUE(la::allclose(la::kron(a, b) * la::kron(c, d),
                           la::kron(a * c, b * d), 1e-12, 1e-13));
}

TEST(Kron, VectorProduct) {
  la::Vector a{1.0, 2.0};
  la::Vector b{3.0, 4.0};
  EXPECT_EQ(la::kron(a, b), (la::Vector{3.0, 4.0, 6.0, 8.0}));
}

TEST(KronSum, DimensionsAndStructure) {
  la::Matrix a{{-1.0, 1.0}, {0.0, -1.0}};
  la::Matrix b{{-2.0}};
  const la::Matrix s = la::kron_sum(a, b);
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 1.0);
}

TEST(KronSum, RequiresSquare) {
  EXPECT_THROW((void)la::kron_sum(la::Matrix(2, 3), la::identity(2)),
               std::invalid_argument);
}

TEST(KronSum, ExpOfSumIsKronOfExps) {
  // exp(A (+) B) = exp(A) (x) exp(B): the joint process of two independent
  // Markov chains.
  la::Matrix a{{-1.0, 1.0}, {0.5, -0.5}};
  la::Matrix b{{-2.0, 2.0}, {1.0, -1.0}};
  EXPECT_TRUE(la::allclose(la::expm(la::kron_sum(a, b)),
                           la::kron(la::expm(a), la::expm(b)), 1e-10, 1e-12));
}

TEST(Kron, PaperStateSpaceComparison) {
  // The paper notes the naive Kronecker space for K workstations modeled
  // with 2K+1 servers has (2K+1)^K states; kron dimensions grow accordingly.
  la::Matrix one_server(3, 3, 0.0);  // a 3-state toy server
  la::Matrix joint = la::kron(one_server, one_server);
  EXPECT_EQ(joint.rows(), 9u);
  joint = la::kron(joint, one_server);
  EXPECT_EQ(joint.rows(), 27u);
}
