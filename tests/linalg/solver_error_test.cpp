// The structured error taxonomy (linalg/solver_error.h) and the numerical
// behaviours that produce it: stable names, context formatting, LU
// singularity diagnostics, and the GMRES backend added for the fallback
// ladder.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "linalg/iterative.h"
#include "linalg/lu.h"
#include "linalg/solver_error.h"

namespace la = finwork::la;
using finwork::SolverError;
using finwork::SolverErrorContext;
using finwork::SolverErrorKind;
using finwork::SolverStage;

TEST(SolverErrorTest, KindAndStageNamesAreStable) {
  EXPECT_EQ(finwork::solver_error_kind_name(SolverErrorKind::kSingular),
            "singular");
  EXPECT_EQ(finwork::solver_error_kind_name(SolverErrorKind::kIllConditioned),
            "ill_conditioned");
  EXPECT_EQ(finwork::solver_error_kind_name(SolverErrorKind::kNonConvergence),
            "non_convergence");
  EXPECT_EQ(
      finwork::solver_error_kind_name(SolverErrorKind::kNumericalBreakdown),
      "numerical_breakdown");
  EXPECT_EQ(
      finwork::solver_error_kind_name(SolverErrorKind::kCacheBuildFailure),
      "cache_build_failure");
  EXPECT_EQ(finwork::solver_stage_name(SolverStage::kLuFactorize),
            "lu_factorize");
  EXPECT_EQ(finwork::solver_stage_name(SolverStage::kIterativeRefinement),
            "iterative_refinement");
  EXPECT_EQ(finwork::solver_stage_name(SolverStage::kGmres), "gmres");
  EXPECT_EQ(finwork::solver_stage_name(SolverStage::kShiftedRetry),
            "shifted_retry");
  EXPECT_EQ(finwork::solver_stage_name(SolverStage::kCacheBuild),
            "cache_build");
}

TEST(SolverErrorTest, WhatCarriesKindStageAndContext) {
  SolverErrorContext ctx;
  ctx.level = 3;
  ctx.dimension = 40;
  ctx.pivot = 17;
  ctx.condition_estimate = 1e12;
  ctx.detail = "synthetic";
  const SolverError err(SolverErrorKind::kSingular, SolverStage::kLuFactorize,
                        ctx);
  const std::string msg = err.what();
  EXPECT_NE(msg.find("singular"), std::string::npos) << msg;
  EXPECT_NE(msg.find("lu_factorize"), std::string::npos) << msg;
  EXPECT_NE(msg.find("40"), std::string::npos) << msg;
  EXPECT_NE(msg.find("17"), std::string::npos) << msg;
  EXPECT_NE(msg.find("synthetic"), std::string::npos) << msg;
  EXPECT_EQ(err.kind(), SolverErrorKind::kSingular);
  EXPECT_EQ(err.stage(), SolverStage::kLuFactorize);
  EXPECT_EQ(err.context().level, 3u);
}

TEST(SolverErrorTest, IsARuntimeErrorForLegacyCatchSites) {
  const SolverError err(SolverErrorKind::kNonConvergence, SolverStage::kGmres);
  const std::runtime_error& base = err;  // must upcast
  EXPECT_NE(std::string(base.what()).find("non_convergence"),
            std::string::npos);
}

TEST(SolverErrorTest, SingularFactorizationReportsDiagnostics) {
  // Row 2 duplicates row 0 with power-of-two entries, so elimination is
  // exact and the pivot in column 2 is exactly zero.
  la::Matrix a(3, 3, 0.0);
  a(0, 0) = 2.0; a(0, 1) = 4.0; a(0, 2) = 8.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 5.0;
  a(2, 0) = 2.0; a(2, 1) = 4.0; a(2, 2) = 8.0;
  try {
    const la::LuDecomposition lu(a);
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.kind(), SolverErrorKind::kSingular);
    EXPECT_EQ(e.stage(), SolverStage::kLuFactorize);
    EXPECT_EQ(e.context().dimension, 3u);
    EXPECT_NE(e.context().pivot, SolverErrorContext::kNoIndex);
    EXPECT_LT(e.context().pivot, 3u);
    // The pivot-ratio estimate must flag effective singularity: a huge
    // finite value or infinity, never a "healthy" small number.
    EXPECT_GT(e.context().condition_estimate, 1e12);
  }
}

TEST(SolverErrorTest, LegacyRuntimeErrorCatchStillWorks) {
  la::Matrix a(2, 2, 1.0);  // rank one
  EXPECT_THROW((void)la::LuDecomposition(a), std::runtime_error);
}

TEST(GmresTest, SolvesRandomWellConditionedSystems) {
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (std::size_t trial = 0; trial < 6; ++trial) {
    const std::size_t n = 5 + 7 * trial;
    // A = I - P with P substochastic: the ladder's actual operator family.
    la::Matrix p(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        p(i, j) = unif(rng);
        row_sum += p(i, j);
      }
      for (std::size_t j = 0; j < n; ++j) p(i, j) *= 0.9 / row_sum;
    }
    la::Matrix a(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = -p(i, j);
      a(i, i) += 1.0;
    }
    la::Vector b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = unif(rng) + 0.1;

    const la::IterativeResult res =
        la::gmres_left(la::row_operator(a), b, 1e-12, 10000, 11);
    ASSERT_TRUE(res.converged) << "trial " << trial;
    const la::Vector exact = la::solve_left(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(res.x[i], exact[i], 1e-8 * (1.0 + std::abs(exact[i])))
          << "trial " << trial << " component " << i;
    }
  }
}

TEST(GmresTest, ReportsNonConvergenceOnSingularSystem) {
  // x (I - P) = b with P stochastic (row sums 1) and b outside the range:
  // the system is singular, so GMRES must give up cleanly, not loop.
  const std::size_t n = 4;
  la::Matrix a(n, n, -1.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  la::Vector b(n, 1.0);
  const la::IterativeResult res =
      la::gmres_left(la::row_operator(a), b, 1e-12, 200, 8);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.residual, 0.0);
}

TEST(GmresTest, HandlesHappyBreakdownAtExactSolution) {
  // b is an eigenvector direction: the Krylov space closes after one step.
  const std::size_t n = 6;
  la::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = 2.0;
  la::Vector b(n, 3.0);
  const la::IterativeResult res = la::gmres_left(la::row_operator(a), b);
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], 1.5, 1e-12);
}
