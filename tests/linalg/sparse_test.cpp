// Tests for the CSR sparse matrix.

#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace la = finwork::la;

TEST(Csr, EmptyMatrix) {
  la::CsrMatrix m(3, 4, {});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.apply(la::Vector(4, 1.0)), la::Vector(3, 0.0));
}

TEST(Csr, BuildFromTriplets) {
  la::CsrMatrix m(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Csr, DuplicatesAreSummed) {
  la::CsrMatrix m(1, 1, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(Csr, ExactZerosAreDropped) {
  la::CsrMatrix m(1, 2, {{0, 0, 1.0}, {0, 1, 0.0}});
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(Csr, CancellingDuplicatesDropped) {
  la::CsrMatrix m(1, 1, {{0, 0, 2.0}, {0, 0, -2.0}});
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW((void)la::CsrMatrix(2, 2, {{2, 0, 1.0}}), std::out_of_range);
  EXPECT_THROW((void)la::CsrMatrix(2, 2, {{0, 2, 1.0}}), std::out_of_range);
}

TEST(Csr, Apply) {
  // [[1, 2], [0, 3]] * [1, 1] = [3, 3]
  la::CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.apply(la::Vector{1.0, 1.0}), (la::Vector{3.0, 3.0}));
}

TEST(Csr, ApplyLeft) {
  la::CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.apply_left(la::Vector{1.0, 1.0}), (la::Vector{1.0, 5.0}));
}

TEST(Csr, SizeMismatchThrows) {
  la::CsrMatrix m(2, 3, {});
  EXPECT_THROW((void)m.apply(la::Vector(2)), std::invalid_argument);
  EXPECT_THROW((void)m.apply_left(la::Vector(3)), std::invalid_argument);
}

TEST(Csr, RowSums) {
  la::CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, -1.0}});
  EXPECT_EQ(m.row_sums(), (la::Vector{3.0, -1.0}));
}

TEST(Csr, NormInf) {
  la::CsrMatrix m(2, 2, {{0, 0, -4.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  EXPECT_DOUBLE_EQ(m.norm_inf(), 4.0);
}

TEST(Csr, DenseRoundTrip) {
  std::mt19937 gen(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  la::Matrix d(7, 5, 0.0);
  for (int k = 0; k < 12; ++k) {
    d(gen() % 7, gen() % 5) = dist(gen);
  }
  const la::CsrMatrix s = la::to_csr(d);
  EXPECT_TRUE(la::allclose(s.to_dense(), d));
}

TEST(Csr, DropTolerance) {
  la::Matrix d(1, 2, 0.0);
  d(0, 0) = 1e-15;
  d(0, 1) = 1.0;
  EXPECT_EQ(la::to_csr(d, 1e-12).nnz(), 1u);
}

// Property: CSR actions agree with the dense equivalents on random matrices.
class CsrDenseAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(CsrDenseAgreement, BothActionsMatchDense) {
  std::mt19937 gen(GetParam());
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const std::size_t rows = 3 + gen() % 20;
  const std::size_t cols = 3 + gen() % 20;
  la::Matrix d(rows, cols, 0.0);
  const std::size_t nnz = rows * cols / 3;
  for (std::size_t k = 0; k < nnz; ++k) {
    d(gen() % rows, gen() % cols) = dist(gen);
  }
  const la::CsrMatrix s = la::to_csr(d);
  la::Vector x(cols), y(rows);
  for (auto& v : x) v = dist(gen);
  for (auto& v : y) v = dist(gen);
  EXPECT_TRUE(la::allclose(s.apply(x), d * x, 1e-12, 1e-13));
  EXPECT_TRUE(la::allclose(s.apply_left(y), y * d, 1e-12, 1e-13));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrDenseAgreement,
                         ::testing::Range(0u, 10u));
