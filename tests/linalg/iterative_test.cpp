// Tests for the iterative kernels: Neumann series, BiCGSTAB, power iteration.

#include "linalg/iterative.h"

#include <gtest/gtest.h>

#include <random>

#include "linalg/lu.h"

namespace la = finwork::la;

namespace {

/// A random substochastic matrix with exit mass at least `exit_mass` per row.
la::Matrix random_substochastic(std::size_t n, double exit_mass,
                                unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  la::Matrix p(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      p(r, c) = dist(gen);
      sum += p(r, c);
    }
    const double scale = (1.0 - exit_mass) / sum;
    for (std::size_t c = 0; c < n; ++c) p(r, c) *= scale;
  }
  return p;
}

}  // namespace

TEST(Neumann, SolvesSubstochasticSystem) {
  const la::Matrix p = random_substochastic(10, 0.2, 1);
  la::Vector b(10, 1.0);
  const auto apply = la::row_operator(p);
  const la::IterativeResult res = la::neumann_solve_left(apply, b);
  ASSERT_TRUE(res.converged);
  // x (I - P) = b
  la::Matrix a = la::identity(10);
  a -= p;
  EXPECT_TRUE(la::allclose(res.x * a, b, 1e-9, 1e-10));
}

TEST(Neumann, MatchesDenseLu) {
  const la::Matrix p = random_substochastic(8, 0.3, 2);
  la::Vector b(8);
  for (std::size_t i = 0; i < 8; ++i) b[i] = static_cast<double>(i) - 3.0;
  la::Matrix a = la::identity(8);
  a -= p;
  const la::Vector dense = la::solve_left(a, b);
  const la::IterativeResult res =
      la::neumann_solve_left(la::row_operator(p), b);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(la::allclose(res.x, dense, 1e-8, 1e-9));
}

TEST(Neumann, ReportsNonConvergenceWhenCapped) {
  const la::Matrix p = random_substochastic(6, 1e-4, 3);  // slow decay
  const la::IterativeResult res =
      la::neumann_solve_left(la::row_operator(p), la::Vector(6, 1.0), 1e-14, 3);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
}

TEST(Bicgstab, SolvesGeneralSystem) {
  const la::Matrix p = random_substochastic(12, 0.05, 4);
  la::Matrix a = la::identity(12);
  a -= p;
  la::Vector b(12);
  for (std::size_t i = 0; i < 12; ++i) b[i] = std::sin(static_cast<double>(i));
  const auto apply_a = [&a](const la::Vector& x) { return x * a; };
  const la::IterativeResult res = la::bicgstab_left(apply_a, b, 1e-12);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(la::allclose(res.x * a, b, 1e-8, 1e-9));
}

TEST(Bicgstab, AgreesWithLuOnHardSystem) {
  // Tiny exit mass: Neumann would need ~1e5 terms; BiCGSTAB gets it directly.
  const la::Matrix p = random_substochastic(9, 1e-3, 5);
  la::Matrix a = la::identity(9);
  a -= p;
  la::Vector b(9, 1.0);
  const la::Vector dense = la::solve_left(a, b);
  const auto apply_a = [&a](const la::Vector& x) { return x * a; };
  const la::IterativeResult res = la::bicgstab_left(apply_a, b, 1e-13);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(la::allclose(res.x, dense, 1e-6, 1e-8));
}

TEST(PowerIteration, FindsStationaryOfStochasticMatrix) {
  // Simple 3-state chain with known stationary distribution.
  la::Matrix t{{0.5, 0.5, 0.0}, {0.25, 0.5, 0.25}, {0.0, 0.5, 0.5}};
  const la::IterativeResult res = la::power_iteration_left(
      la::row_operator(t), la::Vector{1.0, 0.0, 0.0});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 0.25, 1e-10);
  EXPECT_NEAR(res.x[1], 0.50, 1e-10);
  EXPECT_NEAR(res.x[2], 0.25, 1e-10);
  EXPECT_NEAR(res.x.sum(), 1.0, 1e-12);
}

TEST(PowerIteration, FixedPointIsInvariant) {
  la::Matrix t{{0.1, 0.9}, {0.6, 0.4}};
  const la::IterativeResult res = la::power_iteration_left(
      la::row_operator(t), la::Vector{0.5, 0.5});
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(la::allclose(res.x * t, res.x, 1e-10, 1e-12));
}

TEST(PowerIteration, ZeroInitialThrows) {
  la::Matrix t{{1.0}};
  EXPECT_THROW((void)la::power_iteration_left(la::row_operator(t), la::Vector{0.0}),
      std::invalid_argument);
}

TEST(RowOperator, CsrAndDenseAgree) {
  const la::Matrix d = random_substochastic(7, 0.2, 6);
  const la::CsrMatrix s = la::to_csr(d);
  la::Vector x(7);
  for (std::size_t i = 0; i < 7; ++i) x[i] = static_cast<double>(i + 1);
  EXPECT_TRUE(la::allclose(la::row_operator(d)(x), la::row_operator(s)(x)));
}

// Property: Neumann and BiCGSTAB agree across exit masses.
class IterativeAgreement : public ::testing::TestWithParam<double> {};

TEST_P(IterativeAgreement, NeumannAndBicgstabMatch) {
  const double exit_mass = GetParam();
  const la::Matrix p = random_substochastic(10, exit_mass, 11);
  la::Vector b(10, 0.5);
  const la::IterativeResult neu =
      la::neumann_solve_left(la::row_operator(p), b, 1e-13, 1000000);
  la::Matrix a = la::identity(10);
  a -= p;
  const auto apply_a = [&a](const la::Vector& x) { return x * a; };
  const la::IterativeResult bi = la::bicgstab_left(apply_a, b, 1e-13);
  ASSERT_TRUE(neu.converged);
  ASSERT_TRUE(bi.converged);
  EXPECT_TRUE(la::allclose(neu.x, bi.x, 1e-6, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(ExitMasses, IterativeAgreement,
                         ::testing::Values(0.5, 0.1, 0.02, 0.005));
