// Tests for the matrix exponential and the uniformization-based action.

#include "linalg/expm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/lu.h"

namespace la = finwork::la;

TEST(Expm, ZeroMatrixGivesIdentity) {
  EXPECT_TRUE(la::allclose(la::expm(la::Matrix(3, 3, 0.0)), la::identity(3)));
}

TEST(Expm, DiagonalMatrix) {
  la::Matrix d = la::diagonal(la::Vector{1.0, -2.0, 0.5});
  const la::Matrix e = la::expm(d);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-14);
}

TEST(Expm, NilpotentMatrixExactSeries) {
  // N = [[0,1],[0,0]] => exp(N) = I + N.
  la::Matrix n{{0.0, 1.0}, {0.0, 0.0}};
  const la::Matrix e = la::expm(n);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, Known2x2) {
  // A = [[0, 1], [-1, 0]] => exp(A) = rotation by 1 radian.
  la::Matrix a{{0.0, 1.0}, {-1.0, 0.0}};
  const la::Matrix e = la::expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(1.0), 1e-12);
  EXPECT_NEAR(e(0, 1), std::sin(1.0), 1e-12);
  EXPECT_NEAR(e(1, 0), -std::sin(1.0), 1e-12);
}

TEST(Expm, LargeNormTriggersScaling) {
  // 20 * rotation: exp is rotation by 20 radians; requires squaring steps.
  la::Matrix a{{0.0, 20.0}, {-20.0, 0.0}};
  const la::Matrix e = la::expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(20.0), 1e-10);
  EXPECT_NEAR(e(0, 1), std::sin(20.0), 1e-10);
}

TEST(Expm, InverseProperty) {
  la::Matrix a{{0.3, 0.1, 0.0}, {0.2, -0.4, 0.1}, {0.0, 0.5, -0.2}};
  const la::Matrix e = la::expm(a);
  la::Matrix neg = a;
  neg *= -1.0;
  const la::Matrix einv = la::expm(neg);
  EXPECT_TRUE(la::allclose(e * einv, la::identity(3), 1e-10, 1e-11));
}

TEST(Expm, DeterminantIsExpTrace) {
  la::Matrix a{{0.2, 0.7}, {0.1, -0.5}};
  EXPECT_NEAR(la::determinant(la::expm(a)), std::exp(a.trace()), 1e-10);
}

TEST(Expm, NonSquareThrows) {
  EXPECT_THROW((void)la::expm(la::Matrix(2, 3)), std::invalid_argument);
}

TEST(ExpmAction, MatchesDenseExpm) {
  // Sub-generator: -B for an Erlang-3-ish chain.
  la::Matrix a{{-3.0, 3.0, 0.0}, {0.0, -3.0, 3.0}, {0.0, 0.0, -3.0}};
  la::Vector x{1.0, 0.0, 0.0};
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    la::Matrix at = a;
    at *= t;
    const la::Vector expected = x * la::expm(at);
    const la::Vector got = la::expm_action_left(x, a, t);
    EXPECT_TRUE(la::allclose(got, expected, 1e-9, 1e-11)) << "t = " << t;
  }
}

TEST(ExpmAction, GeneratorPreservesProbability) {
  // A proper generator (zero row sums): mass must be conserved.
  la::Matrix g{{-2.0, 2.0, 0.0}, {1.0, -3.0, 2.0}, {0.5, 0.5, -1.0}};
  la::Vector p{0.2, 0.3, 0.5};
  const la::Vector out = la::expm_action_left(p, g, 4.0);
  EXPECT_NEAR(out.sum(), 1.0, 1e-10);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_GE(out[i], -1e-12);
}

TEST(ExpmAction, TimeZeroIsIdentity) {
  la::Matrix g{{-1.0, 1.0}, {0.0, -1.0}};
  la::Vector p{0.4, 0.6};
  EXPECT_EQ(la::expm_action_left(p, g, 0.0), p);
}

TEST(ExpmAction, NegativeTimeThrows) {
  la::Matrix g{{-1.0}};
  EXPECT_THROW((void)la::expm_action_left(la::Vector{1.0}, g, -1.0),
               std::invalid_argument);
}

TEST(ExpmAction, ZeroGeneratorIsIdentity) {
  la::Matrix g(2, 2, 0.0);
  la::Vector p{0.3, 0.7};
  EXPECT_EQ(la::expm_action_left(p, g, 5.0), p);
}

TEST(ExpmAction, SizeMismatchThrows) {
  EXPECT_THROW((void)la::expm_action_left(la::Vector{1.0}, la::identity(2), 1.0),
               std::invalid_argument);
}

// Semigroup property exp(tA) exp(sA) = exp((t+s)A) through the action.
class ExpmSemigroup : public ::testing::TestWithParam<double> {};

TEST_P(ExpmSemigroup, ActionComposes) {
  const double t = GetParam();
  la::Matrix a{{-2.0, 1.0, 0.5}, {0.3, -1.0, 0.2}, {0.0, 0.4, -0.9}};
  la::Vector p{0.5, 0.25, 0.25};
  const la::Vector two_step =
      la::expm_action_left(la::expm_action_left(p, a, t), a, t);
  const la::Vector one_step = la::expm_action_left(p, a, 2.0 * t);
  EXPECT_TRUE(la::allclose(two_step, one_step, 1e-8, 1e-11)) << "t = " << t;
}

INSTANTIATE_TEST_SUITE_P(Times, ExpmSemigroup,
                         ::testing::Values(0.05, 0.25, 1.0, 2.5, 7.0));
