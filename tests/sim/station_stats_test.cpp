// Tests for the simulator's per-station utilization and queue-length
// tallies, cross-checked against product-form values in the steady-heavy
// regime.

#include <gtest/gtest.h>

#include "cluster/builders.h"
#include "pf/product_form.h"
#include "sim/simulator.h"

namespace sim = finwork::sim;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace pf = finwork::pf;
namespace cluster = finwork::cluster;

TEST(StationStats, SingleSaturatedServerIsFullyBusy) {
  std::vector<net::Station> st{{"S", ph::PhaseType::exponential(1.0), 1}};
  const net::NetworkSpec spec(std::move(st), la::Vector{1.0},
                              la::Matrix(1, 1, 0.0), la::Vector{1.0});
  const sim::NetworkSimulator simulator(spec, 3);
  finwork::rng::Xoshiro256 rng(1);
  std::vector<sim::StationTally> tallies;
  (void)simulator.run_once(50, rng, &tallies);
  ASSERT_EQ(tallies.size(), 1u);
  // The single server is busy from t=0 to the final departure.
  EXPECT_NEAR(tallies[0].utilization, 1.0, 1e-12);
  // 3 admitted until the drain; queue length averages just under 3.
  EXPECT_GT(tallies[0].mean_queue_length, 2.5);
  EXPECT_LE(tallies[0].mean_queue_length, 3.0);
}

TEST(StationStats, TalliesOptional) {
  cluster::ApplicationModel app;
  const sim::NetworkSimulator simulator(cluster::central_cluster(3, app), 3);
  finwork::rng::Xoshiro256 rng(2);
  // Null tallies pointer must be safe (and is the default).
  EXPECT_EQ(simulator.run_once(10, rng).size(), 10u);
}

TEST(StationStats, QueueLengthsSumToPopulationWhileSaturated) {
  // With a huge workload the system stays at population K almost all the
  // time, so station queue lengths must sum to ~K.
  cluster::ApplicationModel app;
  const sim::NetworkSimulator simulator(cluster::central_cluster(4, app), 4);
  sim::SimulationOptions opts;
  opts.replications = 50;
  const sim::SimulationResult r = simulator.run(400, opts);
  double total = 0.0;
  for (const auto& q : r.queue_length) total += q.mean();
  EXPECT_NEAR(total, 4.0, 0.05);
}

TEST(StationStats, UtilizationMatchesProductFormSteadyState) {
  // Long exponential run: time-averaged utilizations approach the closed
  // Jackson network's values.
  cluster::ApplicationModel app;
  const net::NetworkSpec spec = cluster::central_cluster(5, app);
  const pf::ClosedNetworkResult expected = pf::convolution(spec, 5);

  const sim::NetworkSimulator simulator(spec, 5);
  sim::SimulationOptions opts;
  opts.replications = 60;
  const sim::SimulationResult r = simulator.run(600, opts);
  for (std::size_t j = 0; j < spec.num_stations(); ++j) {
    EXPECT_NEAR(r.utilization[j].mean(), expected.utilization[j],
                0.04 + 5.0 * r.utilization[j].std_error())
        << spec.station(j).name;
  }
}

TEST(StationStats, BottleneckIdentifiable) {
  // Crank the remote share until the central disk dominates: its measured
  // utilization must be the highest of the shared devices.
  cluster::ApplicationModel app;
  app.remote_time = 2.6;
  app.local_time = 12.0 - 1.25 * app.remote_time;
  const net::NetworkSpec spec = cluster::central_cluster(5, app);
  const sim::NetworkSimulator simulator(spec, 5);
  sim::SimulationOptions opts;
  opts.replications = 40;
  const sim::SimulationResult r = simulator.run(300, opts);
  EXPECT_GT(r.utilization[3].mean(), r.utilization[2].mean());  // disk > comm
  EXPECT_GT(r.utilization[3].mean(), 0.8);
}
