// Tests for the discrete-event simulator: structural properties,
// determinism, closed-form agreement.

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/builders.h"
#include "ph/fitting.h"

namespace sim = finwork::sim;
namespace net = finwork::net;
namespace ph = finwork::ph;
namespace la = finwork::la;
namespace rng = finwork::rng;
namespace cluster = finwork::cluster;

namespace {

net::NetworkSpec single_station(ph::PhaseType svc, std::size_t mult) {
  std::vector<net::Station> st{{"S", std::move(svc), mult}};
  return net::NetworkSpec(std::move(st), la::Vector{1.0}, la::Matrix(1, 1, 0.0),
                          la::Vector{1.0});
}

}  // namespace

TEST(Simulator, DeparturesAreSortedAndComplete) {
  cluster::ApplicationModel app;
  const sim::NetworkSimulator s(cluster::central_cluster(4, app), 4);
  rng::Xoshiro256 g(1);
  const std::vector<double> dep = s.run_once(25, g);
  ASSERT_EQ(dep.size(), 25u);
  EXPECT_TRUE(std::is_sorted(dep.begin(), dep.end()));
  EXPECT_GT(dep.front(), 0.0);
}

TEST(Simulator, DeterministicGivenSeed) {
  cluster::ApplicationModel app;
  const sim::NetworkSimulator s(cluster::central_cluster(3, app), 3);
  rng::Xoshiro256 a(7), b(7);
  EXPECT_EQ(s.run_once(10, a), s.run_once(10, b));
}

TEST(Simulator, DifferentSeedsDiffer) {
  cluster::ApplicationModel app;
  const sim::NetworkSimulator s(cluster::central_cluster(3, app), 3);
  rng::Xoshiro256 a(7), b(8);
  EXPECT_NE(s.run_once(10, a), s.run_once(10, b));
}

TEST(Simulator, SingleServerRenewalMean) {
  // K = 1 on a single exponential station: E(T) = N / rate.
  const sim::NetworkSimulator s(single_station(ph::PhaseType::exponential(2.0), 1), 1);
  sim::SimulationOptions opts;
  opts.replications = 4000;
  const sim::SimulationResult r = s.run(10, opts);
  EXPECT_NEAR(r.makespan.mean(), 5.0, 4.0 * r.makespan.ci_half_width());
}

TEST(Simulator, ForkJoinHarmonicMakespan) {
  // N = K = 5 on private exponential servers: E = H_5 / lambda.
  const sim::NetworkSimulator s(single_station(ph::PhaseType::exponential(1.0), 5), 5);
  sim::SimulationOptions opts;
  opts.replications = 8000;
  const sim::SimulationResult r = s.run(5, opts);
  const double h5 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25 + 0.2;
  EXPECT_NEAR(r.makespan.mean(), h5, 4.0 * r.makespan.ci_half_width());
}

TEST(Simulator, SharedFcfsPhStation) {
  // Two tasks on one shared H2 server: makespan = 2 * mean.
  const ph::PhaseType h2 = ph::hyperexponential_balanced(1.0, 9.0);
  const sim::NetworkSimulator s(single_station(h2, 1), 2);
  sim::SimulationOptions opts;
  opts.replications = 20000;
  const sim::SimulationResult r = s.run(2, opts);
  EXPECT_NEAR(r.makespan.mean(), 2.0, 5.0 * r.makespan.ci_half_width());
}

TEST(Simulator, ParallelAndSerialRunsAgreeStatistically) {
  cluster::ApplicationModel app;
  const sim::NetworkSimulator s(cluster::central_cluster(3, app), 3);
  sim::SimulationOptions par_opts;
  par_opts.replications = 500;
  par_opts.parallel = true;
  sim::SimulationOptions ser_opts = par_opts;
  ser_opts.parallel = false;
  const auto rp = s.run(15, par_opts);
  const auto rs = s.run(15, ser_opts);
  // Same seeds, same streams: identical counts and near-identical means
  // (merge order may differ in floating point).
  EXPECT_EQ(rp.makespan.count(), rs.makespan.count());
  EXPECT_NEAR(rp.makespan.mean(), rs.makespan.mean(), 1e-9);
}

TEST(Simulator, InterdepartureStatsConsistent) {
  cluster::ApplicationModel app;
  const sim::NetworkSimulator s(cluster::central_cluster(4, app), 4);
  sim::SimulationOptions opts;
  opts.replications = 300;
  const auto r = s.run(20, opts);
  ASSERT_EQ(r.interdeparture.size(), 20u);
  ASSERT_EQ(r.departure_time.size(), 20u);
  // Sum of mean inter-departure gaps equals the mean makespan.
  double total = 0.0;
  for (const auto& st : r.interdeparture) total += st.mean();
  EXPECT_NEAR(total, r.makespan.mean(), 1e-9);
  // Departure times increase in the mean.
  for (std::size_t i = 1; i < 20; ++i) {
    EXPECT_GT(r.departure_time[i].mean(), r.departure_time[i - 1].mean());
  }
}

TEST(Simulator, MultiServerPhStationSupported) {
  // The simulator handles configurations the analytic space rejects:
  // 2-server H2 station.  Just verify it runs and produces sane output.
  const ph::PhaseType h2 = ph::hyperexponential_balanced(1.0, 4.0);
  const sim::NetworkSimulator s(single_station(h2, 2), 4);
  rng::Xoshiro256 g(3);
  const auto dep = s.run_once(12, g);
  EXPECT_EQ(dep.size(), 12u);
  EXPECT_TRUE(std::is_sorted(dep.begin(), dep.end()));
}

TEST(Simulator, GuardsBadArguments) {
  cluster::ApplicationModel app;
  EXPECT_THROW((void)sim::NetworkSimulator(cluster::central_cluster(2, app), 0),
               std::invalid_argument);
  const sim::NetworkSimulator s(cluster::central_cluster(2, app), 2);
  rng::Xoshiro256 g(1);
  EXPECT_THROW((void)s.run_once(0, g), std::invalid_argument);
}

TEST(Simulator, ErlangServiceUsesPhases) {
  // Erlang-4 service, one task: mean = 1 but variance = 1/4; check the
  // sample mean and that spread is visibly sub-exponential.
  const sim::NetworkSimulator s(single_station(ph::PhaseType::erlang(4, 1.0), 1), 1);
  sim::SimulationOptions opts;
  opts.replications = 20000;
  const auto r = s.run(1, opts);
  EXPECT_NEAR(r.makespan.mean(), 1.0, 4.0 * r.makespan.ci_half_width());
  const double scv =
      r.makespan.variance() / (r.makespan.mean() * r.makespan.mean());
  EXPECT_NEAR(scv, 0.25, 0.05);
}
