// Tests for the JSON parser.

#include "io/json.h"

#include <gtest/gtest.h>

namespace io = finwork::io;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(io::JsonValue::parse("null").is_null());
  EXPECT_TRUE(io::JsonValue::parse("true").as_bool());
  EXPECT_FALSE(io::JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(io::JsonValue::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(io::JsonValue::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(io::JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainers) {
  const auto v = io::JsonValue::parse(R"([1, "two", [3], {"four": 4}])");
  const auto& arr = v.as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
  EXPECT_EQ(arr[1].as_string(), "two");
  EXPECT_DOUBLE_EQ(arr[2].as_array()[0].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(arr[3].at("four").as_number(), 4.0);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(io::JsonValue::parse("{}").as_object().empty());
  EXPECT_TRUE(io::JsonValue::parse("[]").as_array().empty());
}

TEST(Json, WhitespaceTolerant) {
  const auto v = io::JsonValue::parse(" {\n\t\"a\" :\r 1 ,\n \"b\": [ 2 ] }\n");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("b").as_array()[0].as_number(), 2.0);
}

TEST(Json, StringEscapes) {
  const auto v = io::JsonValue::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapeUtf8) {
  // \\u escapes are decoded to UTF-8 (1-, 2- and 3-byte forms).
  EXPECT_EQ(io::JsonValue::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(io::JsonValue::parse(R"("\u00e9")").as_string(), "\xC3\xA9");
  EXPECT_EQ(io::JsonValue::parse(R"("\u20ac")").as_string(), "\xE2\x82\xAC");
  EXPECT_THROW((void)io::JsonValue::parse(R"("\u00g9")"), io::JsonError);
  EXPECT_THROW((void)io::JsonValue::parse(R"("\u00)"), io::JsonError);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01x", "\"unterminated",
        "[1] extra", "{\"a\": nul}", "-", "\"bad\\escape\"", "nan"}) {
    EXPECT_THROW((void)io::JsonValue::parse(bad), io::JsonError) << bad;
  }
}

TEST(Json, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)io::JsonValue::parse(deep), io::JsonError);
}

TEST(Json, TypeMismatchesThrow) {
  const auto v = io::JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW((void)v.as_array(), io::JsonError);
  EXPECT_THROW((void)v.as_number(), io::JsonError);
  EXPECT_THROW((void)v.at("a").as_string(), io::JsonError);
  EXPECT_THROW((void)v.at("missing"), io::JsonError);
}

TEST(Json, DefaultedAccessors) {
  const auto v = io::JsonValue::parse(R"({"x": 5, "s": "hi", "b": true})");
  EXPECT_DOUBLE_EQ(v.number_or("x", 9.0), 5.0);
  EXPECT_DOUBLE_EQ(v.number_or("y", 9.0), 9.0);
  EXPECT_EQ(v.string_or("s", "d"), "hi");
  EXPECT_EQ(v.string_or("t", "d"), "d");
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("c", false));
  EXPECT_TRUE(v.contains("x"));
  EXPECT_FALSE(v.contains("z"));
}

TEST(Json, DuplicateKeysLastWins) {
  const auto v = io::JsonValue::parse(R"({"a": 1, "a": 2})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 2.0);
}

TEST(Json, LargeRealisticConfig) {
  const auto v = io::JsonValue::parse(R"({
    "architecture": "central",
    "workstations": 5,
    "tasks": 30,
    "shapes": {"remote_disk": {"type": "hyperexponential", "scv": 10}},
    "outputs": ["summary", "timeline"]
  })");
  EXPECT_EQ(v.at("architecture").as_string(), "central");
  EXPECT_DOUBLE_EQ(
      v.at("shapes").at("remote_disk").at("scv").as_number(), 10.0);
  EXPECT_EQ(v.at("outputs").as_array().size(), 2u);
}
