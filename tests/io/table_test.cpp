// Tests for the benchmark table writer.

#include "io/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace io = finwork::io;

TEST(Table, RequiresColumns) {
  EXPECT_THROW((void)io::Table({}), std::invalid_argument);
}

TEST(Table, AddAndAccessRows) {
  io::Table t({"x", "y"});
  t.add_row({1.0, 2.0});
  t.add_row({3.0, 4.0});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2.0);
}

TEST(Table, RowWidthMismatchThrows) {
  io::Table t({"x", "y"});
  EXPECT_THROW((void)t.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW((void)t.add_row({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Table, AtOutOfRangeThrows) {
  io::Table t({"x"});
  t.add_row({1.0});
  EXPECT_THROW((void)t.at(1, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 1), std::out_of_range);
}

TEST(Table, PrintAlignsHeaders) {
  io::Table t({"longheader", "y"});
  t.add_row({1.0, 2.0});
  std::ostringstream ss;
  t.print(ss, 2);
  const std::string out = ss.str();
  EXPECT_NE(out.find("longheader"), std::string::npos);
  EXPECT_NE(out.find("1.00"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(Table, CsvRoundTripsValues) {
  io::Table t({"a", "b"});
  t.add_row({0.1234567890123, 42.0});
  std::ostringstream ss;
  t.print_csv(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("a,b"), std::string::npos);
  EXPECT_NE(out.find("0.1234567890123"), std::string::npos);
}

TEST(Table, WriteCsvCreatesFile) {
  io::Table t({"v"});
  t.add_row({7.0});
  const std::string path = ::testing::TempDir() + "/finwork_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "v");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  io::Table t({"v"});
  EXPECT_THROW((void)t.write_csv("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

TEST(PrintSection, EmitsTitle) {
  std::ostringstream ss;
  io::print_section(ss, "Figure 3");
  EXPECT_NE(ss.str().find("Figure 3"), std::string::npos);
}
