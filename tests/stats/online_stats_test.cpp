// Tests for the Welford accumulator and confidence intervals.

#include "stats/online_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace stats = finwork::stats;

TEST(OnlineStats, EmptyState) {
  stats::OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  stats::OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  stats::OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NumericallyStableWithLargeOffset) {
  stats::OnlineStats s;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(OnlineStats, MergeEqualsSequential) {
  std::mt19937 gen(5);
  std::normal_distribution<double> dist(3.0, 2.0);
  stats::OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(gen);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  stats::OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(OnlineStats, StdErrorShrinksWithSamples) {
  stats::OnlineStats small, big;
  std::mt19937 gen(9);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 10; ++i) small.add(dist(gen));
  for (int i = 0; i < 1000; ++i) big.add(dist(gen));
  EXPECT_GT(small.std_error(), big.std_error());
}

TEST(OnlineStats, CiWidensWithConfidence) {
  stats::OnlineStats s;
  std::mt19937 gen(11);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (int i = 0; i < 50; ++i) s.add(dist(gen));
  EXPECT_LT(s.ci_half_width(0.90), s.ci_half_width(0.95));
  EXPECT_LT(s.ci_half_width(0.95), s.ci_half_width(0.99));
}

TEST(OnlineStats, CiCoversTrueMeanUsually) {
  // 200 experiments of 30 normal samples each; the 95% CI should cover the
  // true mean in roughly 190 of them.  Allow generous slack.
  std::mt19937 gen(13);
  std::normal_distribution<double> dist(10.0, 4.0);
  int covered = 0;
  for (int e = 0; e < 200; ++e) {
    stats::OnlineStats s;
    for (int i = 0; i < 30; ++i) s.add(dist(gen));
    if (std::abs(s.mean() - 10.0) <= s.ci_half_width(0.95)) ++covered;
  }
  EXPECT_GE(covered, 175);
  EXPECT_LE(covered, 200);
}

TEST(SquaredCv, KnownValues) {
  // Exponential: E[X] = m, E[X^2] = 2 m^2 -> C^2 = 1.
  EXPECT_DOUBLE_EQ(stats::squared_cv(2.0, 8.0), 1.0);
  // Deterministic: E[X^2] = m^2 -> C^2 = 0.
  EXPECT_DOUBLE_EQ(stats::squared_cv(3.0, 9.0), 0.0);
  // Zero mean guard.
  EXPECT_DOUBLE_EQ(stats::squared_cv(0.0, 1.0), 0.0);
}
