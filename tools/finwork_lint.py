#!/usr/bin/env python3
"""Repo-local lint rules for finwork.

Rules (all scoped to keep the core library clean; tools/, examples/ and
bench/ are allowed to print):

  R1  no `#include <Eigen/...>` anywhere — the project has its own linalg
      layer and must not silently grow an Eigen dependency
  R2  every header under src/ starts with `#pragma once` (first
      non-comment, non-blank line)
  R3  no `std::cout` / `std::cerr` / `printf` in src/ — libraries report
      through return values and exceptions, not stdout.  The one exception
      is src/obs/: it is the designated reporting layer (trace export,
      perf records, text summaries), so it may talk to streams
  R4  no raw `new` / `delete` in src/ — containers and smart pointers only

Usage:
  python3 tools/finwork_lint.py [paths...]

With no arguments, lints src/, tests/, tools/, bench/ and examples/ under
the repository root (the directory containing this script's parent).
Exits 1 and prints `file:line: [rule] message` for each violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".h", ".hpp", ".cpp", ".cc", ".cxx"}
HEADER_SUFFIXES = {".h", ".hpp"}

EIGEN_RE = re.compile(r'#\s*include\s*[<"]Eigen/')
STDOUT_RE = re.compile(r"\bstd::(cout|cerr)\b|\bprintf\s*\(")
# `new` as an allocation expression and `delete` as a deallocation
# statement; `delete` in `= delete` declarations is explicitly allowed.
RAW_NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_:<]")
RAW_DELETE_RE = re.compile(r"(?<![=\w])\s*\bdelete\b(\s*\[\s*\])?\s+[A-Za-z_]")
DELETED_FN_RE = re.compile(r"=\s*delete\b")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def lint_file(path: Path, repo_root: Path) -> list[str]:
    rel = path.relative_to(repo_root)
    in_src = rel.parts[0] == "src"
    # src/obs/ is the observability sink — the only src/ code allowed to
    # address stdout/stderr directly (R3 exception; all other rules apply).
    in_obs = in_src and len(rel.parts) > 1 and rel.parts[1] == "obs"
    try:
        raw = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [f"{rel}:0: [io] unreadable: {exc}"]
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    problems: list[str] = []

    for lineno, line in enumerate(code_lines, start=1):
        if EIGEN_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: [eigen-include] Eigen must not leak in; "
                "use the finwork linalg layer")
        if in_src and not in_obs and STDOUT_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: [no-stdout] std::cout/std::cerr/printf "
                "is not allowed in src/ outside src/obs/ (tools/ and "
                "examples/ may print)")
        if in_src and RAW_NEW_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: [raw-new] raw `new` in src/; use "
                "containers or std::make_unique/make_shared")
        if in_src and not DELETED_FN_RE.search(line) \
                and RAW_DELETE_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: [raw-delete] raw `delete` in src/; use "
                "RAII owners instead")

    if in_src and path.suffix in HEADER_SUFFIXES:
        first = next((ln.strip() for ln in code_lines if ln.strip()), "")
        if not first.startswith("#pragma once"):
            problems.append(
                f"{rel}:1: [pragma-once] headers in src/ must start with "
                "`#pragma once`")
    return problems


def collect_files(roots: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            if root.suffix in CXX_SUFFIXES:
                files.append(root)
        elif root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*"))
                if p.suffix in CXX_SUFFIXES and p.is_file()
                and not any(part.startswith("build") for part in p.parts))
    return files


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        roots = [Path(a).resolve() for a in argv]
        missing = [r for r in roots if not r.exists()]
        if missing:
            for r in missing:
                print(f"finwork_lint: no such path: {r}", file=sys.stderr)
            return 2
    else:
        roots = [repo_root / d
                 for d in ("src", "tests", "tools", "bench", "examples")]
    problems: list[str] = []
    checked = 0
    for path in collect_files(roots):
        checked += 1
        problems.extend(lint_file(path, repo_root))
    for p in problems:
        print(p)
    print(f"finwork_lint: {checked} files checked, "
          f"{len(problems)} problem(s)", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
