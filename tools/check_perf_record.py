#!/usr/bin/env python3
"""Validate a finwork perf-record JSON file (schema finwork-perf-record/1).

Used by the perf-smoke CI job — and handy locally — to fail fast when a
benchmark binary emits a malformed or empty record:

  python3 tools/check_perf_record.py BENCH_solver.json

Checks: the file parses, the schema tag matches, metadata fields are
strings, at least one benchmark entry exists, and every entry carries a
name, finite non-negative real_seconds, positive iterations, and numeric
metrics.  Exits 0 when valid, 1 with a diagnostic otherwise.

Regression mode compares per-iteration real time against a committed
baseline record on every benchmark name the two files share:

  python3 tools/check_perf_record.py --compare BENCH_solver.json \
      --max-regression 50 new_record.json

Exits 1 when any shared benchmark is more than --max-regression percent
slower than the baseline (names only in one file are reported, not
failed — machines differ, so CI runs this warn-only against the
committed baseline).
"""

from __future__ import annotations

import argparse
import json
import math
import sys

SCHEMA = "finwork-perf-record/1"
REQUIRED_STRINGS = ("tool", "git_sha", "build_type", "sanitize")


def fail(msg: str) -> int:
    print(f"check_perf_record: FAIL: {msg}", file=sys.stderr)
    return 1


def is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"{path}: cannot parse: {exc}")

    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        return fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in REQUIRED_STRINGS:
        if not isinstance(doc.get(key), str) or not doc[key]:
            return fail(f"{path}: missing or empty string field {key!r}")

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(f"{path}: 'benchmarks' must be a non-empty array")
    for i, entry in enumerate(benchmarks):
        where = f"{path}: benchmarks[{i}]"
        if not isinstance(entry, dict):
            return fail(f"{where}: not an object")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            return fail(f"{where}: missing benchmark name")
        rs = entry.get("real_seconds")
        if not is_number(rs) or not math.isfinite(rs) or rs < 0:
            return fail(f"{where}: bad real_seconds {rs!r}")
        it = entry.get("iterations")
        if not isinstance(it, int) or isinstance(it, bool) or it <= 0:
            return fail(f"{where}: bad iterations {it!r}")
        metrics = entry.get("metrics", {})
        if not isinstance(metrics, dict):
            return fail(f"{where}: metrics is not an object")
        for k, v in metrics.items():
            if v is not None and not is_number(v):
                return fail(f"{where}: metric {k!r} is not numeric: {v!r}")

    counters = doc.get("counters")
    if counters is not None and not isinstance(counters, dict):
        return fail(f"{path}: 'counters' must be an object when present")

    print(f"check_perf_record: OK: {path} "
          f"({len(benchmarks)} benchmark entr{'y' if len(benchmarks) == 1 else 'ies'}, "
          f"tool={doc['tool']}, git_sha={doc['git_sha']})")
    return 0


def per_iteration_seconds(doc: dict) -> dict[str, float]:
    """Map benchmark name -> real seconds per iteration."""
    out: dict[str, float] = {}
    for entry in doc["benchmarks"]:
        iters = entry["iterations"]
        if iters > 0:
            out[entry["name"]] = entry["real_seconds"] / iters
    return out


def compare(path: str, baseline_path: str, max_regression_pct: float) -> int:
    """Fail when a shared benchmark regressed beyond the threshold."""
    for p in (baseline_path, path):
        if check(p) != 0:
            return 1
    with open(baseline_path, encoding="utf-8") as f:
        base = per_iteration_seconds(json.load(f))
    with open(path, encoding="utf-8") as f:
        new = per_iteration_seconds(json.load(f))

    shared = sorted(base.keys() & new.keys())
    only_base = sorted(base.keys() - new.keys())
    only_new = sorted(new.keys() - base.keys())
    for name in only_base:
        print(f"check_perf_record: note: {name!r} only in baseline")
    for name in only_new:
        print(f"check_perf_record: note: {name!r} only in {path}")
    if not shared:
        return fail(f"{path}: no benchmark names shared with {baseline_path}")

    status = 0
    for name in shared:
        old_s, new_s = base[name], new[name]
        if old_s <= 0.0:
            print(f"check_perf_record: note: {name}: zero-time baseline, skipped")
            continue
        delta_pct = 100.0 * (new_s - old_s) / old_s
        verdict = "ok"
        if delta_pct > max_regression_pct:
            verdict = f"REGRESSION (> {max_regression_pct:g}%)"
            status = 1
        print(f"check_perf_record: {name}: {old_s:.6g}s -> {new_s:.6g}s "
              f"per iteration ({delta_pct:+.1f}%) {verdict}")
    if status:
        return fail(f"{path}: regression beyond {max_regression_pct:g}% "
                    f"vs {baseline_path}")
    print(f"check_perf_record: OK: {path} within {max_regression_pct:g}% "
          f"of {baseline_path} on {len(shared)} shared benchmark(s)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Validate finwork perf records; optionally compare "
                    "against a baseline record.")
    parser.add_argument("files", nargs="+", help="perf-record JSON file(s)")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="baseline record to compare each file against")
    parser.add_argument("--max-regression", metavar="PCT", type=float,
                        default=25.0,
                        help="allowed per-iteration slowdown in percent "
                             "(default 25)")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        if args.compare is not None:
            status = max(status, compare(path, args.compare,
                                         args.max_regression))
        else:
            status = max(status, check(path))
    return status


if __name__ == "__main__":
    sys.exit(main(argv=sys.argv[1:]))
