#!/usr/bin/env python3
"""Validate a finwork perf-record JSON file (schema finwork-perf-record/1).

Used by the perf-smoke CI job — and handy locally — to fail fast when a
benchmark binary emits a malformed or empty record:

  python3 tools/check_perf_record.py BENCH_solver.json

Checks: the file parses, the schema tag matches, metadata fields are
strings, at least one benchmark entry exists, and every entry carries a
name, finite non-negative real_seconds, positive iterations, and numeric
metrics.  Exits 0 when valid, 1 with a diagnostic otherwise.
"""

from __future__ import annotations

import json
import math
import sys

SCHEMA = "finwork-perf-record/1"
REQUIRED_STRINGS = ("tool", "git_sha", "build_type", "sanitize")


def fail(msg: str) -> int:
    print(f"check_perf_record: FAIL: {msg}", file=sys.stderr)
    return 1


def is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"{path}: cannot parse: {exc}")

    if not isinstance(doc, dict):
        return fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        return fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in REQUIRED_STRINGS:
        if not isinstance(doc.get(key), str) or not doc[key]:
            return fail(f"{path}: missing or empty string field {key!r}")

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(f"{path}: 'benchmarks' must be a non-empty array")
    for i, entry in enumerate(benchmarks):
        where = f"{path}: benchmarks[{i}]"
        if not isinstance(entry, dict):
            return fail(f"{where}: not an object")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            return fail(f"{where}: missing benchmark name")
        rs = entry.get("real_seconds")
        if not is_number(rs) or not math.isfinite(rs) or rs < 0:
            return fail(f"{where}: bad real_seconds {rs!r}")
        it = entry.get("iterations")
        if not isinstance(it, int) or isinstance(it, bool) or it <= 0:
            return fail(f"{where}: bad iterations {it!r}")
        metrics = entry.get("metrics", {})
        if not isinstance(metrics, dict):
            return fail(f"{where}: metrics is not an object")
        for k, v in metrics.items():
            if v is not None and not is_number(v):
                return fail(f"{where}: metric {k!r} is not numeric: {v!r}")

    counters = doc.get("counters")
    if counters is not None and not isinstance(counters, dict):
        return fail(f"{path}: 'counters' must be an object when present")

    print(f"check_perf_record: OK: {path} "
          f"({len(benchmarks)} benchmark entr{'y' if len(benchmarks) == 1 else 'ies'}, "
          f"tool={doc['tool']}, git_sha={doc['git_sha']})")
    return 0


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_perf_record.py FILE...", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        status = max(status, check(path))
    return status


if __name__ == "__main__":
    sys.exit(main(argv=sys.argv[1:]))
