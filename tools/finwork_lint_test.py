#!/usr/bin/env python3
"""Self-test for tools/finwork_lint.py.

Builds a throwaway tree with one known violation per rule plus the cases
that must NOT fire (src/obs/ stream access, `= delete` declarations,
prints under tools/), runs the linter in-process, and checks that exactly
the expected rule tags fire on the expected files.

Run directly or via ctest (registered as `lint_selftest`).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import finwork_lint  # noqa: E402


FIXTURES = {
    # R3: stream access in plain src/ code must fire ...
    "src/core/bad_print.cpp": (
        "#include <iostream>\n"
        "void report() { std::cerr << \"oops\\n\"; }\n"
        "void log2() { printf(\"%d\", 1); }\n"
    ),
    # ... but src/obs/ is whitelisted for R3 (and only R3).
    "src/obs/good_sink.cpp": (
        "#include <iostream>\n"
        "void drain() { std::cout << \"spans\\n\"; std::cerr << \"x\\n\"; }\n"
    ),
    # tools/ may always print.
    "tools/good_tool.cpp": (
        "#include <cstdio>\n"
        "int main() { printf(\"hello\\n\"); }\n"
    ),
    # R2: header without #pragma once.
    "src/core/bad_header.h": (
        "// missing the pragma\n"
        "struct S {};\n"
    ),
    # R2 negative: comment then pragma is fine.
    "src/core/good_header.h": (
        "// leading comment is allowed\n"
        "#pragma once\n"
        "struct T {};\n"
    ),
    # R1: Eigen include anywhere.
    "src/linalg/bad_eigen.cpp": (
        "#include <Eigen/Dense>\n"
    ),
    # R4: raw new/delete; `= delete` and comments must not fire.
    "src/core/bad_alloc.cpp": (
        "struct P { P(const P&) = delete; };\n"
        "// new Thing() in a comment is fine\n"
        "int* leak() { return new int(7); }\n"
        "void free2(int* p) { delete p; }\n"
    ),
}

# (substring of the fixture path, rule tag) pairs that must each appear
# exactly once in the linter output.
EXPECTED = [
    ("src/core/bad_print.cpp:2", "[no-stdout]"),
    ("src/core/bad_print.cpp:3", "[no-stdout]"),
    ("src/core/bad_header.h:1", "[pragma-once]"),
    ("src/linalg/bad_eigen.cpp:1", "[eigen-include]"),
    ("src/core/bad_alloc.cpp:3", "[raw-new]"),
    ("src/core/bad_alloc.cpp:4", "[raw-delete]"),
]

# Files that must produce no findings at all.
CLEAN = [
    "src/obs/good_sink.cpp",
    "tools/good_tool.cpp",
    "src/core/good_header.h",
]


def main() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="finwork_lint_test_") as tmp:
        root = Path(tmp)
        for rel, text in FIXTURES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")

        problems: list[str] = []
        for path in finwork_lint.collect_files([root / "src", root / "tools"]):
            problems.extend(finwork_lint.lint_file(path, root))

        for prefix, tag in EXPECTED:
            hits = [p for p in problems if prefix in p and tag in p]
            if len(hits) != 1:
                failures.append(
                    f"expected exactly one {tag} at {prefix}, got {hits}")
        for rel in CLEAN:
            hits = [p for p in problems if rel in p]
            if hits:
                failures.append(f"expected no findings for {rel}, got {hits}")
        expected_total = len(EXPECTED)
        if len(problems) != expected_total:
            failures.append(
                f"expected {expected_total} findings total, got "
                f"{len(problems)}: {problems}")

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print("finwork_lint_test: all checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
