// finwork_cli — run a transient-model experiment from a JSON config.
//
// Usage:
//   finwork_cli [--trace-out=FILE] [--stats] [--strict]
//               [--max-condition=X] <config.json>
//   finwork_cli --example          # print an annotated example config
//
// Observability (docs/OBSERVABILITY.md):
//   --trace-out=FILE   write a Chrome trace-event JSON of the run
//                      (open in chrome://tracing or ui.perfetto.dev)
//   --stats            print the span summary and counter registry
//
// Robustness (docs/ROBUSTNESS.md):
//   --strict           fail fast on any numerical degradation instead of
//                      walking the fallback ladder
//   --max-condition=X  treat any level whose condition estimate exceeds X
//                      as degraded (refine in default mode, fatal under
//                      --strict); 0 = unlimited
//
// Outputs (select via the config's "outputs" array; default: summary,
// timeline, steady_state):
//   "summary"        makespan, speedup, per-task time, regions
//   "timeline"       per-epoch mean inter-departure times
//   "steady_state"   t_ss and throughput from the Y_K R_K fixed point
//   "moments"        makespan variance (absorbing-chain extension)
//   "distribution"   P(T <= t) around the mean (uniformized CDF)
//   "occupancy"      time-stationary per-station queue/utilization
//   "prediction_error"  error of the exponential assumption
//   "approximate"    the steady-state approximation and its error
//   "simulate"       DES cross-check with confidence interval
//   "product_form"   Buzen/MVA steady-state baselines (exponentialized)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "core/approximation.h"
#include "core/metrics.h"
#include "core/model_cache.h"
#include "core/transient_solver.h"
#include "linalg/solver_error.h"
#include "obs/trace.h"
#include "pf/product_form.h"
#include "sim/simulator.h"

namespace {

constexpr const char* kExample = R"({
  "architecture": "central",
  "workstations": 5,
  "tasks": 30,
  "application": {"local_time": 10.5, "cpu_fraction": 0.5,
                  "remote_time": 1.2, "comm_factor": 0.25,
                  "mean_cycles": 20, "remote_share": 0.4},
  "shapes": {"remote_disk": {"type": "hyperexponential", "scv": 10}},
  "contention": "shared",
  "outputs": ["summary", "timeline", "steady_state", "moments",
              "prediction_error", "simulate"],
  "simulate": {"replications": 2000, "seed": 7}
})";

bool wants(const finwork::cluster::ExperimentSpec& spec,
           const std::string& output) {
  if (spec.outputs.empty()) {
    return output == "summary" || output == "timeline" ||
           output == "steady_state";
  }
  for (const std::string& o : spec.outputs) {
    if (o == output) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace finwork;
  std::string trace_out;
  bool stats = false;
  core::SolverOptions solver_options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--example") {
      std::cout << kExample << '\n';
      return 0;
    }
    if (arg == "--stats") {
      stats = true;
    } else if (arg == "--strict") {
      solver_options.strict = true;
    } else if (arg.rfind("--max-condition=", 0) == 0) {
      try {
        solver_options.max_condition = std::stod(arg.substr(16));
      } catch (const std::exception&) {
        std::cerr << "bad --max-condition value: " << arg.substr(16) << '\n';
        return 2;
      }
      if (solver_options.max_condition < 0.0) {
        std::cerr << "--max-condition must be >= 0\n";
        return 2;
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1 || (!trace_out.empty() && trace_out[0] == '-')) {
    std::cerr << "usage: finwork_cli [--trace-out=FILE] [--stats] [--strict] "
                 "[--max-condition=X] <config.json> | finwork_cli --example\n";
    return 2;
  }
  const std::string& config_path = positional[0];

  // Flush observability output even on early returns / exceptions.
  struct ObsFlush {
    const std::string& trace_out;
    bool stats;
    ~ObsFlush() {
      if (!trace_out.empty()) {
        std::ofstream trace(trace_out);
        if (trace) {
          obs::write_chrome_trace(trace);
        } else {
          std::cerr << "cannot write trace to " << trace_out << '\n';
        }
      }
      if (stats) {
        obs::write_text_summary(std::cout);
        const core::ModelCacheStats mc = core::ModelCache::global().stats();
        std::cout << "model cache: " << mc.hits << " hits, " << mc.misses
                  << " misses, " << mc.evictions << " evictions, " << mc.size
                  << '/' << mc.capacity << " resident\n";
      }
    }
  } obs_flush{trace_out, stats};

  try {
    std::ifstream in(config_path);
    if (!in) {
      std::cerr << "cannot open " << config_path << '\n';
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const io::JsonValue doc = io::JsonValue::parse(buffer.str());
    const cluster::ExperimentSpec spec = cluster::parse_experiment(doc);

    if (!spec.sweep_parameter.empty()) {
      const io::Table table = cluster::run_sweep(spec);
      std::cout << "sweep over " << spec.sweep_parameter << ":\n";
      table.print(std::cout, 4);
      return 0;
    }

    const net::NetworkSpec network = spec.build();
    const core::TransientSolver solver(
        core::ModelCache::global().acquire(network, spec.workstations,
                                           solver_options),
        solver_options);
    const core::DepartureTimeline tl = solver.solve(spec.tasks);
    const core::SteadyStateResult& ss = solver.steady_state();

    if (wants(spec, "summary")) {
      const auto view = network.single_customer();
      std::cout << "single-task mean time: " << view.mean_task_time << '\n'
                << "state space at level K: "
                << solver.space().dimension(spec.workstations) << " states\n"
                << "makespan E(T): " << tl.makespan << '\n'
                << "speedup: "
                << core::speedup(spec.tasks, view.mean_task_time, tl.makespan)
                << " (of " << spec.workstations << ")\n";
      const auto regions = core::classify_regions(tl, ss.interdeparture);
      std::cout << "regions: " << 100.0 * regions.transient_fraction
                << "% transient, " << 100.0 * regions.steady_fraction
                << "% steady, " << 100.0 * regions.draining_fraction
                << "% draining\n";
    }
    if (wants(spec, "steady_state")) {
      std::cout << "steady-state inter-departure: " << ss.interdeparture
                << " (throughput " << ss.throughput << ")\n";
    }
    if (wants(spec, "timeline")) {
      std::cout << "epoch times:";
      for (std::size_t i = 0; i < tl.epoch_times.size(); ++i) {
        std::cout << (i % 8 == 0 ? "\n  " : " ") << tl.epoch_times[i];
      }
      std::cout << '\n';
    }
    if (wants(spec, "moments")) {
      const core::MakespanMoments mm = solver.makespan_moments(spec.tasks);
      std::cout << "makespan std-dev: " << mm.std_dev
                << " (C^2 = " << mm.scv << ")\n";
    }
    if (wants(spec, "distribution")) {
      const core::MakespanMoments mm = solver.makespan_moments(spec.tasks);
      std::cout << "makespan distribution:\n";
      for (double frac : {0.8, 0.9, 1.0, 1.1, 1.25, 1.5}) {
        const double at = frac * mm.mean;
        std::cout << "  P(T <= " << at
                  << ") = " << solver.makespan_cdf(spec.tasks, at) << '\n';
      }
    }
    if (wants(spec, "occupancy")) {
      const auto occ = solver.station_occupancy(
          spec.workstations, solver.time_stationary_distribution());
      std::cout << "time-stationary occupancy (saturated system):\n";
      for (std::size_t j = 0; j < occ.size(); ++j) {
        std::cout << "  " << network.station(j).name << ": E[n] = "
                  << occ[j].mean_customers
                  << ", utilization = " << occ[j].utilization << '\n';
      }
    }
    if (wants(spec, "prediction_error")) {
      const core::TransientSolver expo(
          core::ModelCache::global().acquire(network.exponentialized(),
                                             spec.workstations,
                                             solver_options),
          solver_options);
      std::cout << "exponential-assumption error: "
                << core::prediction_error_percent(tl.makespan,
                                                  expo.makespan(spec.tasks))
                << "%\n";
    }
    if (wants(spec, "approximate")) {
      const auto approx = core::approximate_makespan(solver, spec.tasks);
      std::cout << "steady-state approximation: " << approx.makespan
                << " (error "
                << 100.0 * (approx.makespan - tl.makespan) / tl.makespan
                << "%)\n";
    }
    if (wants(spec, "product_form")) {
      const auto conv =
          pf::convolution(network.exponentialized(), spec.workstations);
      std::cout << "product-form cycle time (exponentialized): "
                << conv.cycle_time << '\n';
    }
    if (wants(spec, "simulate")) {
      const sim::NetworkSimulator simulator(network, spec.workstations);
      sim::SimulationOptions opts;
      opts.replications = spec.replications;
      opts.seed = spec.seed;
      const sim::SimulationResult sr = simulator.run(spec.tasks, opts);
      std::cout << "simulated makespan: " << sr.makespan.mean() << " +- "
                << sr.makespan.ci_half_width() << " (95% CI, "
                << spec.replications << " reps; analytic " << tl.makespan
                << ")\n";
    }
    return 0;
  } catch (const SolverError& e) {
    std::cerr << "solver error [" << solver_error_kind_name(e.kind()) << '/'
              << solver_stage_name(e.stage()) << "]: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
